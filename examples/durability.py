#!/usr/bin/env python
"""Durability walkthrough: write-ahead logging, group commit, crashes.

Demonstrates the engine's redo log: committed-and-flushed transactions
survive a crash, unflushed ones vanish, and one log flush makes a whole
batch of commits durable (group commit — the effect that lets the
paper's Figure 6.2 throughput scale with MPL despite a 10 ms disk).

Run:  python examples/durability.py
"""

from repro import Database, EngineConfig
from repro.wal.log import WriteAheadLog


def transfer(db, src, dst, amount):
    txn = db.begin("ssi")
    txn.write("accounts", src, txn.read("accounts", src) - amount)
    txn.write("accounts", dst, txn.read("accounts", dst) + amount)
    txn.commit()


def main():
    wal = WriteAheadLog()
    # wal_flush_on_commit=False: commits become durable only at explicit
    # flush points, like a disk with write-back caching.
    db = Database(EngineConfig(wal_flush_on_commit=False), wal=wal)
    db.create_table("accounts")
    db.load("accounts", [("alice", 100), ("bob", 100), ("carol", 100)])

    transfer(db, "alice", "bob", 30)
    transfer(db, "bob", "carol", 10)
    wal.flush()  # one flush covers both commits (group commit)
    print(f"flushed after 2 transfers: {wal.stats['flushes']} flush, "
          f"{wal.stats['appends']} log records")

    transfer(db, "carol", "alice", 50)  # committed but never flushed
    live = db.begin("si")
    print("live state:      ", dict(live.scan("accounts")))
    live.commit()

    lost = wal.crash()
    print(f"CRASH! ({lost} unflushed log records lost)")

    # Recovery = the loaded snapshot (bulk loads are not logged) plus a
    # redo pass over the durable log prefix.
    from repro.wal.recovery import replay

    base = Database(EngineConfig())
    base.create_table("accounts")
    base.load("accounts", [("alice", 100), ("bob", 100), ("carol", 100)])
    recovered = replay(wal, base=base)

    check = recovered.begin("si")
    print("recovered state: ", dict(check.scan("accounts")))
    check.commit()
    print("(the first two transfers survived; the unflushed third did not)")


if __name__ == "__main__":
    main()
