#!/usr/bin/env python
"""TPC-C++'s Credit Check anomaly (paper Example 5, Section 5.3.3).

A customer near their credit limit places an order, pays most of it off,
and orders again — while a background Credit Check runs concurrently.
Under snapshot isolation the check computes the outstanding balance from
a stale snapshot and commits a "bad credit" verdict the customer never
sees until after placing another order marked "good credit": an outcome
impossible in any serial order.  Under Serializable SI one participant
aborts.

Run:  python examples/credit_check.py
"""

from repro import Database, EngineConfig, TransactionAbortedError

CREDIT_LIMIT = 1000.0


def setup(level):
    db = Database(EngineConfig(record_history=True))
    # Column-partitioned customer record (the paper notes the spec allows
    # partitioning — it is what exposes the anomaly at row granularity).
    db.create_table("cust_balance")   # unpaid, delivered orders
    db.create_table("cust_credit")    # GC / BC flag
    db.create_table("new_orders")     # undelivered order amounts
    db.load("cust_balance", [("c1", 900.0)])
    db.load("cust_credit", [("c1", "GC")])
    return db


def run_scenario(level):
    db = setup(level)
    log = []

    def new_order(order_id, amount):
        txn = db.begin(level)
        credit = txn.read("cust_credit", "c1")
        txn.insert("new_orders", order_id, amount)
        txn.commit()
        log.append(f"new order {order_id} (${amount:.0f}) -> customer shown {credit}")
        return credit

    try:
        # Order 1 pushes the outstanding total over the limit ($1100).
        new_order("o1", 200.0)

        # The background credit check begins here: its snapshot sees
        # balance=900 and order o1.
        ccheck = db.begin(level)
        balance = db.read(ccheck, "cust_balance", "c1")

        # Payment reduces the balance to $400 and commits.
        pay = db.begin(level)
        db.write(pay, "cust_balance", "c1",
                 db.read(pay, "cust_balance", "c1") - 500.0)
        db.commit(pay)
        log.append("payment of $500 committed")

        # Order 2 ($100): outstanding = 400 + 200 + 100 = 700 < limit.
        new_order("o2", 100.0)

        # The stale credit check now totals 900 + 200 = 1100 > limit.
        pending = db.scan(ccheck, "new_orders")
        outstanding = balance + sum(amount for _key, amount in pending)
        verdict = "BC" if outstanding > CREDIT_LIMIT else "GC"
        db.write(ccheck, "cust_credit", "c1", verdict)
        db.commit(ccheck)
        log.append(f"credit check committed {verdict} "
                   f"(computed outstanding ${outstanding:.0f})")

        # Order 3: what does the customer see *after* the check?
        shown = new_order("o3", 150.0)
        anomaly = (verdict == "BC" and shown == "BC" and
                   "payment" in log[1])
    except TransactionAbortedError as error:
        log.append(f"engine aborted a participant: {error.reason}")

    return log


def main():
    for level, label in (("si", "snapshot isolation"),
                         ("ssi", "Serializable SI")):
        print(f"== {label} ==")
        for line in run_scenario(level):
            print("  ", line)
        print()


if __name__ == "__main__":
    main()
