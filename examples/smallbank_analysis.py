#!/usr/bin/env python
"""SmallBank end to end: static analysis, anomaly, runtime prevention.

1. Derives the static dependency graph of SmallBank (paper Fig 2.9),
   showing the pivot (WriteCheck) that makes the mix non-serializable at
   SI, and verifies that all four Section 2.8.5 application-level fixes
   remove it.
2. Runs the workload in the discrete-event simulator at SI, Serializable
   SI and S2PL, printing throughput and abort mixes — a miniature of the
   paper's Figure 6.1 experiment.

Run:  python examples/smallbank_analysis.py
"""

from repro.analysis import build_sdg, smallbank_specs
from repro.bench.harness import Experiment, run_experiment
from repro.bench.report import summarize
from repro.engine.config import EngineConfig
from repro.sim.scheduler import SimConfig
from repro.workloads.smallbank import make_smallbank


def static_analysis():
    print("== static dependency graph analysis (paper Section 2.8) ==")
    sdg = build_sdg(smallbank_specs())
    print("vulnerable edges:",
          ", ".join(f"{e.src}->{e.dst}" for e in sdg.vulnerable_edges()))
    print("dangerous structures:", sdg.dangerous_structures())
    print("pivots:", sdg.pivots(), "-> not serializable under SI\n")

    for variant in ("materialize_wt", "promote_wt", "materialize_bw", "promote_bw"):
        fixed = build_sdg(smallbank_specs(variant))
        verdict = "serializable" if fixed.is_serializable_under_si() else "STILL UNSAFE"
        print(f"  fix {variant:<15} -> pivots={fixed.pivots() or 'none':<10} {verdict}")
    print()

    from repro.analysis import suggest_fixes

    print("automated fix advisor (Section 2.6.4-style), ranked:")
    for candidate in suggest_fixes(smallbank_specs()):
        print("  ", candidate.describe())
    print()
    print("Graphviz of the plain SDG (paste into dot):")
    print(build_sdg(smallbank_specs()).to_dot())
    print()


def runtime_comparison():
    print("== runtime comparison (miniature Fig 6.1) ==")
    experiment = Experiment(
        exp_id="example",
        title="SmallBank, page-level Berkeley DB-style engine, no log flush",
        workload_factory=lambda: make_smallbank(customers=800),
        engine_config_factory=lambda: EngineConfig.berkeleydb_style(page_size=8),
        # Long enough to span several 0.5 s deadlock-detection sweeps —
        # S2PL stalls between sweeps, which is the paper's Fig 6.1 story.
        sim_config=SimConfig(duration=1.0, warmup=0.05),
        expectation="SI ~ SSI >> S2PL under contention",
    )
    outcome = run_experiment(experiment, mpls=[1, 5, 20])
    print(summarize(outcome))


def main():
    static_analysis()
    runtime_comparison()


if __name__ == "__main__":
    main()
