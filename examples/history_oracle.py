#!/usr/bin/env python
"""The serializability oracle: after-the-fact execution analysis.

The paper's authors first considered a tool that inspects execution
traces for serializability violations (Section 3.1.1) before settling on
the runtime algorithm.  This engine ships that tool: with history
recording enabled, every operation is logged, and the multiversion
serialization graph (MVSG) can be rebuilt and checked for cycles.

This example produces a write-skew execution at snapshot isolation,
prints the oracle's verdict and the offending cycle, and emits a
Graphviz rendering of the MVSG (paste into `dot -Tpng`).

Run:  python examples/history_oracle.py
"""

from repro import Database, EngineConfig
from repro.sgt import build_mvsg, check_serializable


def produce_write_skew():
    db = Database(EngineConfig(record_history=True))
    db.create_table("acct")
    db.load("acct", [("x", 50), ("y", 50)])

    t1 = db.begin("si")
    t2 = db.begin("si")
    t1.write("acct", "x", t1.read("acct", "x") - (t1.read("acct", "y") + 20))
    t2.write("acct", "y", t2.read("acct", "y") - (t2.read("acct", "x") + 30))
    t1.commit()
    t2.commit()
    return db


def main():
    db = produce_write_skew()
    report = check_serializable(db.history)
    print("oracle verdict:")
    print(" ", report.describe().replace("\n", "\n  "))
    print()

    graph = build_mvsg(db.history)
    print(f"MVSG: {len(graph.nodes)} committed transactions, "
          f"{len(graph.edges)} dependencies, "
          f"{len(graph.rw_edges())} rw-antidependencies")
    print("pivots realised in the cycle:", graph.pivots_in_cycle())
    print()
    print(graph.to_dot())


if __name__ == "__main__":
    main()
