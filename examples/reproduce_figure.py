#!/usr/bin/env python
"""Reproduce any figure of the paper's Chapter 6 from the command line.

Usage:
    python examples/reproduce_figure.py fig6.1
    python examples/reproduce_figure.py fig6.8 --mpls 1,5,20 --duration 0.5
    python examples/reproduce_figure.py --list
"""

import argparse
import sys

from repro.bench.experiments import FIGURES
from repro.bench.harness import run_experiment
from repro.bench.report import summarize


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figure", nargs="?", help="figure id, e.g. fig6.1")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--mpls", default="1,5,10,20",
                        help="comma-separated MPL sweep")
    parser.add_argument("--duration", type=float, default=None,
                        help="override simulated seconds per point")
    parser.add_argument("--levels", default=None,
                        help="comma-separated isolation levels (si,ssi,s2pl,sgt)")
    args = parser.parse_args(argv)

    if args.list or not args.figure:
        for exp_id, factory in sorted(FIGURES.items()):
            print(f"{exp_id:<10} {factory().title}")
        return 0

    if args.figure not in FIGURES:
        print(f"unknown figure {args.figure!r}; use --list", file=sys.stderr)
        return 1

    experiment = FIGURES[args.figure]()
    if args.duration:
        experiment.sim_config.duration = args.duration
    mpls = [int(part) for part in args.mpls.split(",")]
    levels = args.levels.split(",") if args.levels else None
    outcome = run_experiment(experiment, mpls=mpls, levels=levels)
    print(summarize(outcome))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
