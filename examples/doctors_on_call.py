#!/usr/bin/env python
"""The paper's Example 1: doctors going off duty.

A hospital requires at least one doctor on duty per shift.  Each
transaction moves one doctor to "reserve" *after checking* that another
doctor remains on duty — a check that is correct in isolation but, under
snapshot isolation, is evaluated against a stale snapshot: two such
transactions can interleave so that both pass the check and the shift
ends up unstaffed.  Serializable SI aborts one of them.

Run:  python examples/doctors_on_call.py
"""

from repro import Database, TransactionAbortedError


def go_on_reserve(db, doctor, shift, level):
    """The parametrized application program from Example 1."""
    txn = db.begin(level)
    try:
        status = txn.get("duties", (shift, doctor))
        if status != "on duty":
            txn.abort()
            return "not on duty"
        txn.write("duties", (shift, doctor), "reserve")
        still_on_duty = [
            key for key, value in txn.scan("duties", (shift, ""), (shift, "~"))
            if value == "on duty"
        ]
        if not still_on_duty:
            txn.abort()
            return "rolled back: would leave shift empty"
        txn.commit()
        return "committed"
    except TransactionAbortedError as error:
        return f"aborted by engine ({error.reason})"


def interleaved_run(level):
    """Run the two doctors' requests concurrently (interleaved)."""
    db = Database()
    db.create_table("duties")
    db.load("duties", [(("night", "dr_jekyll"), "on duty"),
                       (("night", "dr_hyde"), "on duty")])

    t1 = db.begin(level)
    t2 = db.begin(level)
    outcomes = []
    verdicts = {}
    # Interleaved execution: both updates first, then both checks —
    # each check runs against its own (stale) snapshot.
    for txn, doctor in ((t1, "dr_jekyll"), (t2, "dr_hyde")):
        try:
            txn.write("duties", ("night", doctor), "reserve")
        except TransactionAbortedError as error:
            outcomes.append(f"{doctor}: aborted by engine ({error.reason})")
    for txn, doctor in ((t1, "dr_jekyll"), (t2, "dr_hyde")):
        if not txn.is_active:
            continue
        try:
            on_duty = [
                key for key, value in txn.scan("duties")
                if value == "on duty"
            ]
            verdicts[doctor] = len(on_duty)
            if not on_duty:
                txn.abort()
                outcomes.append(f"{doctor}: rolled back (no cover)")
        except TransactionAbortedError as error:
            outcomes.append(f"{doctor}: aborted by engine ({error.reason})")
    for txn, doctor in ((t1, "dr_jekyll"), (t2, "dr_hyde")):
        if not txn.is_active:
            continue
        try:
            txn.commit()
            outcomes.append(
                f"{doctor}: committed (check saw {verdicts[doctor]} still on duty)"
            )
        except TransactionAbortedError as error:
            outcomes.append(f"{doctor}: aborted by engine ({error.reason})")

    check = db.begin("si")
    remaining = [key for key, value in check.scan("duties") if value == "on duty"]
    check.commit()
    return outcomes, remaining


def main():
    for level, label in (("si", "snapshot isolation"),
                         ("ssi", "Serializable SI")):
        outcomes, remaining = interleaved_run(level)
        print(f"== {label} ==")
        for outcome in outcomes:
            print("  ", outcome)
        status = "OK" if remaining else "VIOLATED — nobody on duty!"
        print(f"   invariant (>=1 on duty): {status}\n")


if __name__ == "__main__":
    main()
