#!/usr/bin/env python
"""Quickstart: the engine in two minutes.

Creates a database, runs transactions at the three isolation levels the
paper compares, and shows the headline behaviour: snapshot isolation
permits write skew, Serializable SI detects and aborts it, and reads
never block writers at either level.

Run:  python examples/quickstart.py
"""

from repro import Database, IsolationLevel, UnsafeError, TransactionAbortedError


def basics(db: Database) -> None:
    print("== basic transactions ==")
    txn = db.begin(IsolationLevel.SERIALIZABLE_SSI)
    txn.write("accounts", "carol", 75)
    txn.commit()

    with db.begin("ssi") as txn:  # context manager commits on success
        print("alice ->", txn.read("accounts", "alice"))
        print("range  ->", txn.scan("accounts", "a", "c"))


def snapshot_reads_never_block(db: Database) -> None:
    print("\n== readers never block writers (and vice versa) ==")
    writer = db.begin("ssi")
    writer.write("accounts", "alice", 10)  # exclusive lock held

    reader = db.begin("ssi")
    value = reader.read("accounts", "alice")  # no blocking: snapshot read
    print("reader sees pre-write value:", value)
    reader.commit()
    writer.commit()


def write_skew(db: Database) -> None:
    print("\n== write skew: the anomaly Serializable SI removes ==")
    print("invariant: alice + bob >= 0")

    for level in ("si", "ssi"):
        db2 = Database()
        db2.create_table("accounts")
        db2.load("accounts", [("alice", 50), ("bob", 50)])
        t1, t2 = db2.begin(level), db2.begin(level)
        outcomes = []
        # Interleaved: both transactions check the constraint on their own
        # snapshot (both see 100), then both withdraw 70 from different
        # accounts, then both try to commit.
        for txn, account in ((t1, "alice"), (t2, "bob")):
            try:
                total = txn.read("accounts", "alice") + txn.read("accounts", "bob")
                if total - 70 >= 0:
                    txn.write("accounts", account,
                              txn.read("accounts", account) - 70)
            except TransactionAbortedError as error:
                outcomes.append(f"aborted ({error.reason})")
        for txn in (t1, t2):
            if not txn.is_active:
                continue
            try:
                txn.commit()
                outcomes.append("committed")
            except TransactionAbortedError as error:
                outcomes.append(f"aborted ({error.reason})")
        check = db2.begin(level)
        total = check.read("accounts", "alice") + check.read("accounts", "bob")
        check.commit()
        print(f"  {level:>4}: {outcomes}   final total = {total}"
              + ("   <-- constraint violated!" if total < 0 else ""))


def main() -> None:
    db = Database()
    db.create_table("accounts")
    db.load("accounts", [("alice", 50), ("bob", 50)])
    basics(db)
    snapshot_reads_never_block(db)
    write_skew(db)
    print("\ndone.")


if __name__ == "__main__":
    main()
