"""Victim selection for unsafe-conflict aborts (paper Section 3.7.2).

When a dangerous pattern is detected, correctness allows aborting either
transaction involved; the choice is a policy.  The paper's prototypes
"prefer to abort the pivot (the transaction with both incoming and
outgoing edges) unless the pivot has already committed"; it also suggests
aborting the younger transaction to let complex transactions finish.
"""

from __future__ import annotations

from typing import Callable, Sequence

#: A policy maps the abortable candidates (active transactions that
#: currently carry both an incoming and an outgoing conflict) plus the
#: two parties of the edge just marked, to the transaction to abort.
VictimPolicy = Callable[[Sequence, object, object], object]


def pivot_first(candidates: Sequence, reader: object, writer: object) -> object:
    """Abort the first detected pivot (the paper's default).

    ``candidates`` holds the active transactions that became pivots from
    this conflict; the edge's reader is preferred when both did, matching
    the prototypes' behaviour of aborting at the point of detection.
    """
    return candidates[0]


def _age(txn) -> float:
    """Begin order: snapshot timestamps can tie (no commit in between),
    so the begin sequence number breaks ties."""
    return getattr(txn, "begin_seq", None) or txn.begin_ts or 0


def youngest_first(candidates: Sequence, reader: object, writer: object) -> object:
    """Abort the youngest candidate (latest to begin).

    Prioritises long-running (complex) transactions, reducing starvation
    of expensive work (Section 3.7.2's suggested alternative).
    """
    return max(candidates, key=_age)


def oldest_first(candidates: Sequence, reader: object, writer: object) -> object:
    """Abort the oldest candidate — included for ablation comparison."""
    return min(candidates, key=_age)


POLICIES: dict[str, VictimPolicy] = {
    "pivot": pivot_first,
    "youngest": youngest_first,
    "oldest": oldest_first,
}


def policy_name(policy: VictimPolicy) -> str:
    """The registry name of a policy, for telemetry/trace payloads."""
    for name, candidate in POLICIES.items():
        if candidate is policy:
            return name
    return getattr(policy, "__name__", repr(policy))
