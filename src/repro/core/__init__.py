"""The paper's primary contribution: Serializable Snapshot Isolation.

This package holds the conflict bookkeeping added on top of plain SI:

* :mod:`repro.core.conflicts` — the ``markConflict`` logic and commit-time
  unsafe check, in both the *basic* boolean-flag form (Figs 3.2-3.5) and
  the *enhanced* transaction-reference form that is less prone to false
  positives (Figs 3.9-3.10);
* :mod:`repro.core.victim` — victim-selection policies (Section 3.7.2).

The engine (:mod:`repro.engine`) wires these into the read/write/scan/
commit paths.
"""

from repro.core.conflicts import (
    BasicConflictTracker,
    ConflictTracker,
    EnhancedConflictTracker,
    make_tracker,
)
from repro.core.victim import VictimPolicy, pivot_first, youngest_first

__all__ = [
    "ConflictTracker",
    "BasicConflictTracker",
    "EnhancedConflictTracker",
    "make_tracker",
    "VictimPolicy",
    "pivot_first",
    "youngest_first",
]
