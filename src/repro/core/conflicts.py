"""Conflict tracking for Serializable Snapshot Isolation.

The algorithm detects a potentially non-serializable execution whenever a
transaction accumulates *both* an incoming and an outgoing
rw-antidependency with concurrent transactions — the pivot of a dangerous
structure (Theorem 2 / Fig 2.2).  Two trackers implement the bookkeeping:

* :class:`BasicConflictTracker` — one boolean per direction, exactly the
  pseudocode of Figs 3.2-3.5.  Conservative: aborts every pivot.
* :class:`EnhancedConflictTracker` — per-direction *transaction
  references* (Figs 3.9-3.10).  A pivot is allowed to commit when the
  recorded commit order proves the outgoing transaction did not commit
  first, eliminating the Fig 3.8 class of false positives.

Both implement ``markConflict(reader, writer)``: record the
rw-dependency reader -> writer, and return the transaction that must abort
(or None).  The engine translates the returned victim into either an
immediate :class:`~repro.errors.UnsafeError` (when the victim is the
transaction executing the operation) or a *doom* flag delivered at the
victim's next operation.

Transactions passed in must expose: ``id``, ``begin_ts``, ``commit_ts``
(None until committed), ``is_committed``, ``is_active``, ``in_conflict``,
``out_conflict``.  For the basic tracker the conflict attributes hold
booleans; for the enhanced tracker they hold ``None`` / a transaction /
the sentinel semantics of a self-reference.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.victim import POLICIES, VictimPolicy, pivot_first
from repro.obs.registry import CounterGroup


def conflict_ref_id(ref, txn) -> int | str | None:
    """Render a conflict slot for telemetry.

    ``None``/``False`` -> no conflict recorded; the transaction itself ->
    ``"multiple"`` (self-reference, order lost); ``True`` (basic boolean
    tracker) -> ``"unknown"``; otherwise the peer's id.
    """
    if ref is None or ref is False:
        return None
    if ref is True:
        return "unknown"
    if ref is txn:
        return "multiple"
    return ref.id


def pivot_triple(pivot) -> tuple:
    """The dangerous structure around ``pivot``:
    ``(t_in, pivot_id, t_out)`` ids, from its conflict slots."""
    return (
        conflict_ref_id(pivot.in_conflict, pivot),
        pivot.id,
        conflict_ref_id(pivot.out_conflict, pivot),
    )


class ConflictTracker:
    """Interface shared by the basic and enhanced trackers."""

    __slots__ = ("victim_policy", "stats")

    #: set by subclasses: value stored in fresh transactions' conflict slots
    empty_value: object = None

    def __init__(self, victim_policy: VictimPolicy | str = "pivot"):
        if isinstance(victim_policy, str):
            victim_policy = POLICIES[victim_policy]
        self.victim_policy: VictimPolicy = victim_policy
        #: statistics for the evaluation: how many times each path fired.
        #: A CounterGroup so the engine's MetricsRegistry can adopt it.
        self.stats = CounterGroup(
            {"marked": 0, "unsafe_at_mark": 0, "unsafe_at_commit": 0,
             "excused": 0, "prepared_wins": 0}
        )

    def init_transaction(self, txn) -> None:
        """Fig 3.1: establish the conflict slots at begin(T)."""
        txn.in_conflict = self.empty_value
        txn.out_conflict = self.empty_value

    def mark_conflict(self, reader, writer) -> Optional[object]:
        """Record rw-dependency reader -> writer; return victim or None."""
        raise NotImplementedError

    def check_commit(self, txn) -> bool:
        """Return True if ``txn`` must abort instead of committing
        (the Fig 3.2 / Fig 3.10 unsafe test).  Does not mutate."""
        raise NotImplementedError

    def after_commit(self, txn) -> None:
        """Post-commit slot maintenance (no-op for the basic tracker)."""

    # ------------------------------------------------------------ helpers

    def _abort_early_victim(self, reader, writer) -> Optional[object]:
        """Section 3.7.1: abort an active transaction as soon as it holds
        both conflicts, rather than waiting for its commit."""
        candidates = [
            txn
            for txn in (reader, writer)
            if txn.is_active and self._has_in(txn) and self._has_out(txn)
        ]
        if not candidates:
            return None
        return self._choose_victim(candidates, reader, writer)

    def _choose_victim(self, candidates, reader, writer) -> Optional[object]:
        """Prepared-transaction-wins: a transaction that has voted yes in
        a two-phase commit can no longer be aborted locally — its fate
        belongs to the coordinator.  When every dangerous candidate is
        prepared, the edge's other (still-unprepared) party aborts
        instead; the victim-restore in mark_conflict then removes the
        edge that endangered the prepared pivot."""
        eligible = [
            txn for txn in candidates if not getattr(txn, "prepared", False)
        ]
        if eligible:
            self.stats["unsafe_at_mark"] += 1
            return self.victim_policy(eligible, reader, writer)
        # New edges always originate from an operation of an unprepared
        # transaction, so the counterparty of a prepared candidate is
        # the other endpoint of (reader, writer).
        counterparty = writer if candidates[0] is reader else reader
        if counterparty.is_active and not getattr(counterparty, "prepared", False):
            self.stats["unsafe_at_mark"] += 1
            self.stats["prepared_wins"] += 1
            return counterparty
        return None

    @staticmethod
    def _has_in(txn) -> bool:
        return bool(txn.in_conflict)

    @staticmethod
    def _has_out(txn) -> bool:
        return bool(txn.out_conflict)


class BasicConflictTracker(ConflictTracker):
    """Boolean in/out flags — the algorithm of Section 3.2.

    ``markConflict`` (Fig 3.3): if the writer has committed with an
    outgoing conflict already recorded, the reader closes a potential
    cycle and must abort; symmetrically for a committed reader with an
    incoming conflict.  Otherwise both flags are set and, with abort-early
    enabled, any active transaction that just became a pivot is aborted.
    """

    __slots__ = ("abort_early",)

    empty_value = False

    def __init__(
        self,
        victim_policy: VictimPolicy | str = "pivot",
        abort_early: bool = True,
    ):
        super().__init__(victim_policy)
        self.abort_early = abort_early

    def mark_conflict(self, reader, writer) -> Optional[object]:
        if reader.id == writer.id:
            return None
        self.stats["marked"] += 1
        if writer.is_committed and writer.out_conflict:
            self.stats["unsafe_at_mark"] += 1
            return reader
        if reader.is_committed and reader.in_conflict:
            self.stats["unsafe_at_mark"] += 1
            return writer
        prior_reader_out = reader.out_conflict
        prior_writer_in = writer.in_conflict
        reader.out_conflict = True
        writer.in_conflict = True
        if not self.abort_early:
            return None
        victim = self._abort_early_victim(reader, writer)
        # The edge dies with its victim: restore the survivor's flag if
        # this edge is what set it ("conflicts are not recorded against
        # transactions ... that will abort", Section 3.7.1).
        if victim is reader:
            writer.in_conflict = prior_writer_in
        elif victim is writer:
            reader.out_conflict = prior_reader_out
        return victim

    def check_commit(self, txn) -> bool:
        unsafe = bool(txn.in_conflict and txn.out_conflict)
        if unsafe:
            self.stats["unsafe_at_commit"] += 1
        return unsafe


#: Sentinel commit-time bounds used when a reference cannot prove order.
_NEG_INF = -math.inf
_POS_INF = math.inf


class EnhancedConflictTracker(ConflictTracker):
    """Transaction-reference conflict slots — Section 3.6 (Figs 3.9/3.10).

    Slots hold ``None`` (no conflict), a transaction reference (exactly one
    conflict in that direction), or the transaction itself (self-reference:
    more than one conflict, equivalent to the basic boolean).

    The unsafe test compares commit times: a dangerous structure only
    matters when the outgoing transaction committed first (Theorem 2), so
    a pivot whose unique outgoing transaction has not committed — or
    committed after the incoming one — may commit safely.

    The danger test (:meth:`_is_dangerous`) encodes Theorem 2's "Tout is
    the first to commit":

    * out slot is a *single uncommitted* reference — the outgoing
      transaction will commit after this one, so it cannot have committed
      first: **safe**, regardless of the in slot;
    * out slot is a *self-reference* (several outgoing conflicts, order
      lost) — assume the worst: **dangerous** whenever the in slot is set;
    * out slot committed at ``out_ts`` — dangerous unless the in slot is a
      single committed reference with ``in_ts < out_ts`` (the Fig 3.8
      false positive this tracker eliminates).
    """

    __slots__ = ()

    empty_value = None

    def mark_conflict(self, reader, writer) -> Optional[object]:
        if reader.id == writer.id:
            return None
        self.stats["marked"] += 1
        # Fig 3.9 lines 3-7: the reader closes a cycle with a committed
        # pivot whose outgoing transaction committed first (or whose
        # outgoing order is unknown — a self-reference).
        if writer.is_committed and writer.out_conflict is not None:
            out_bound = self._out_bound(writer)
            if out_bound is not None and out_bound <= writer.commit_ts:
                self.stats["unsafe_at_mark"] += 1
                return reader
        # A repeat of the same edge keeps the precise reference; only a
        # conflict with a *different* transaction degrades the slot to the
        # self-reference ("multiple conflicts, order unknown").
        prior_reader_out = reader.out_conflict
        prior_writer_in = writer.in_conflict
        if reader.out_conflict is None:
            reader.out_conflict = writer
        elif reader.out_conflict is not writer:
            reader.out_conflict = reader
        if writer.in_conflict is None:
            writer.in_conflict = reader
        elif writer.in_conflict is not reader:
            writer.in_conflict = writer
        victim = self._abort_early_victim_enhanced(reader, writer)
        # The edge dies with its victim: undo the survivor's slot change.
        if victim is reader:
            writer.in_conflict = prior_writer_in
        elif victim is writer:
            reader.out_conflict = prior_reader_out
        return victim

    def check_commit(self, txn) -> bool:
        unsafe = self._is_dangerous(txn)
        if unsafe:
            self.stats["unsafe_at_commit"] += 1
        return unsafe

    def after_commit(self, txn) -> None:
        """Fig 3.10 lines 9-12: committed references become self-references
        so suspended transactions never point at cleaned-up ones."""
        if txn.in_conflict is not None and txn.in_conflict is not txn:
            if txn.in_conflict.is_committed:
                txn.in_conflict = txn
        if txn.out_conflict is not None and txn.out_conflict is not txn:
            if txn.out_conflict.is_committed:
                txn.out_conflict = txn

    # ------------------------------------------------------------ helpers

    def _is_dangerous(self, txn) -> bool:
        """True when ``txn``'s recorded conflicts may form a dangerous
        structure in which the outgoing transaction committed first."""
        if txn.in_conflict is None or txn.out_conflict is None:
            return False
        out_bound = self._out_bound(txn)
        if out_bound is None:
            # Single outgoing reference, not yet committed: it will commit
            # after txn, so it is provably not the first committer.
            return False
        if out_bound > self._in_bound(txn):
            return False
        # The structure is dangerous by commit order; give the pivot's CC
        # policy a veto (e.g. the read-only optimization, which excuses a
        # structure whose read-only T_in took its snapshot before T_out
        # committed).  The precise slot references this tracker keeps are
        # exactly what such excuses need.
        policy = getattr(txn, "policy", None)
        if policy is not None and policy.excuses_unsafe(txn):
            self.stats["excused"] += 1
            return False
        return True

    def _abort_early_victim_enhanced(self, reader, writer) -> Optional[object]:
        """Abort-early for the enhanced tracker: only abort an active
        transaction whose recorded commit order is (or may be) dangerous."""
        candidates = [
            txn
            for txn in (reader, writer)
            if txn.is_active and self._is_dangerous(txn)
        ]
        if not candidates:
            return None
        return self._choose_victim(candidates, reader, writer)

    @staticmethod
    def _out_bound(txn) -> float | None:
        """Earliest possible commit time of the outgoing side, or None when
        the single outgoing reference has provably not committed yet."""
        ref = txn.out_conflict
        if ref is txn:
            return _NEG_INF
        if not ref.is_committed:
            return None
        return ref.commit_ts

    @staticmethod
    def _in_bound(txn) -> float:
        """Latest possible commit time of the incoming side."""
        ref = txn.in_conflict
        if ref is txn or not ref.is_committed:
            return _POS_INF
        return ref.commit_ts

    def _has_in(self, txn) -> bool:
        return txn.in_conflict is not None

    def _has_out(self, txn) -> bool:
        return txn.out_conflict is not None


class SafeSnapshotMonitor:
    """Tracks when a read-only transaction's snapshot becomes *safe* —
    Ports & Grittner's safe-snapshot optimization (§2.4 of *Serializable
    Snapshot Isolation in PostgreSQL*).

    A declared read-only transaction ``T_ro`` can only participate in a
    dangerous structure as ``T_in``: ``T_ro --rw--> pivot --rw--> T_out``
    with ``T_out.commit_ts <= T_ro.read_ts``.  Any such pivot read under
    a snapshot taken no later than ``T_ro``'s (a pivot that began after
    ``T_ro``'s snapshot cannot be concurrent with a ``T_out`` that
    committed before it).  So the monitor watches exactly the read/write
    transactions active at registration whose snapshots are at most
    ``T_ro``'s:

    * when a watched transaction **aborts**, it is simply removed;
    * when one **commits**, its out-conflict slot decides: no outgoing
      rw edge (or an edge to a transaction that cannot have committed
      before ``T_ro``'s snapshot) removes it, anything else — a
      self-reference, a boolean ``True`` from the basic tracker, or an
      edge to an old committed ``T_out`` — marks the snapshot
      permanently *unsafe* (a dangerous structure it can complete now
      exists);
    * when the watch set drains with no unsafe verdict, the snapshot is
      **safe**: ``T_ro`` drops its SIREAD locks immediately, skips all
      further read-side detection, and retains nothing at commit.

    Every transition runs under the engine's tracker latch (the caller's
    context for commit/abort hooks; :meth:`register` takes it itself),
    so the monitor needs no latch of its own.
    """

    __slots__ = ("db", "family", "stats", "_watching", "_watchers")

    def __init__(self, db, family: type, stats=None):
        self.db = db
        #: the policy class whose conflict slots the monitor can read
        #: (the SSI family); other certifying policies are watched too,
        #: but their commits are conservatively treated as dangerous.
        self.family = family
        self.stats = stats if stats is not None else CounterGroup({
            "registered": 0, "safe": 0, "safe_immediate": 0, "unsafe": 0,
        })
        #: ro txn -> set of watched concurrent read/write transactions
        self._watching: dict = {}
        #: watched rw txn -> list of ro txns watching it (reverse index)
        self._watchers: dict = {}

    # --------------------------------------------------------- lifecycle

    def register(self, ro) -> None:
        """Start watching a read-only transaction that just took its
        snapshot.  Called with no engine latch held (from
        ``_assign_snapshot``)."""
        db = self.db
        read_ts = ro.snapshot.read_ts
        with db._txn_latch:
            candidates = [
                txn
                for txn in db._active.values()
                if txn is not ro
                and not txn.read_only
                and txn.read_ts is not None
                and txn.read_ts <= read_ts
                and (isinstance(txn.policy, self.family) or txn.policy.certifies)
            ]
        with db._tracker_latch:
            self.stats["registered"] += 1
            watched = set()
            unsafe = False
            for txn in candidates:
                if txn.is_active:
                    watched.add(txn)
                elif txn.is_committed and self._dangerous_commit(ro, txn):
                    # Committed between collection and here; its slots may
                    # already be munged to self-references, which the
                    # danger test treats conservatively.
                    unsafe = True
            if unsafe:
                self._verdict_unsafe(ro)
                return
            if not watched:
                self.stats["safe_immediate"] += 1
                self._mark_safe(ro)
                return
            ro.snapshot_safe = False
            self._watching[ro] = watched
            for txn in watched:
                self._watchers.setdefault(txn, []).append(ro)

    def on_commit(self, txn) -> None:
        """Tracker-latched, called *before* the enhanced tracker munges
        committed conflict references to self-references."""
        self._discard_registration(txn)
        watchers = self._watchers.pop(txn, None)  # latch-ok: caller holds tracker
        if not watchers:
            return
        dangerous = None  # evaluated lazily, shared across watchers
        for ro in watchers:
            watched = self._watching.get(ro)
            if watched is None:
                continue
            watched.discard(txn)
            if dangerous is None:
                dangerous = self._dangerous_commit(ro, txn)
            if dangerous:
                self._verdict_unsafe(ro)
            elif not watched:
                self._mark_safe(ro)
                del self._watching[ro]  # latch-ok: caller holds tracker

    def on_abort(self, txn) -> None:
        """Tracker-latched: an aborted transaction threatens nobody."""
        self._discard_registration(txn)
        watchers = self._watchers.pop(txn, None)  # latch-ok: caller holds tracker
        if not watchers:
            return
        for ro in watchers:
            watched = self._watching.get(ro)
            if watched is None:
                continue
            watched.discard(txn)
            if not watched:
                self._mark_safe(ro)
                del self._watching[ro]  # latch-ok: caller holds tracker

    # ----------------------------------------------------------- helpers

    def _dangerous_commit(self, ro, rw) -> bool:
        """Can ``rw``'s commit complete a dangerous structure with ``ro``
        as T_in?  Decided from ``rw``'s out-conflict slot."""
        if not isinstance(rw.policy, self.family):
            # A certifying non-SSI transaction (SGT level): its conflict
            # bookkeeping lives elsewhere — assume the worst.
            return True
        ref = rw.out_conflict
        if not ref:
            return False  # no outgoing edge: rw cannot be the pivot
        if ref is True or ref is rw:
            return True  # order unknown (boolean / self-reference)
        if not ref.is_committed:
            # T_out will commit after now > ro.read_ts: never "first".
            return False
        return ref.commit_ts is not None and ref.commit_ts <= ro.read_ts

    def _verdict_unsafe(self, ro) -> None:
        self.stats["unsafe"] += 1
        watched = self._watching.pop(ro, None)  # latch-ok: caller holds tracker
        if watched:
            for txn in watched:
                watchers = self._watchers.get(txn)
                if watchers is not None and ro in watchers:
                    watchers.remove(ro)
                    if not watchers:
                        del self._watchers[txn]  # latch-ok: caller holds tracker
        ro.snapshot_safe = False
        event = ro._safe_event
        if event is not None:
            event.set()

    def _mark_safe(self, ro) -> None:
        """The snapshot can never join a dangerous structure: drop the
        SIREAD state it accumulated and stop all further detection for
        it.  Caller holds the tracker latch (rank 20), so the lock
        manager's latches (50+) nest legally."""
        self.stats["safe"] += 1
        ro.snapshot_safe = True
        self.db.locks.drop_siread_locks(ro)
        event = ro._safe_event
        if event is not None:
            event.set()

    def _discard_registration(self, txn) -> None:
        """A registered read-only transaction retiring (commit or abort)
        stops watching."""
        watched = self._watching.pop(txn, None)  # latch-ok: caller holds tracker
        if watched is None:
            return
        for rw in watched:
            watchers = self._watchers.get(rw)
            if watchers is not None and txn in watchers:
                watchers.remove(txn)
                if not watchers:
                    del self._watchers[rw]  # latch-ok: caller holds tracker


def make_tracker(
    precise: bool = True,
    victim_policy: VictimPolicy | str = "pivot",
    abort_early: bool = True,
) -> ConflictTracker:
    """Build the tracker matching an engine configuration.

    ``precise=True`` selects the enhanced reference-based tracker (the
    InnoDB prototype's configuration); ``False`` the basic boolean one
    (the Berkeley DB prototype's configuration).
    """
    if precise:
        return EnhancedConflictTracker(victim_policy)
    return BasicConflictTracker(victim_policy, abort_early=abort_early)
