"""Isolation levels.

The engine runs any mix of levels concurrently against shared data — the
paper stresses that mixed-level execution must be supported (Section
2.6.3), and Section 3.8 specifically analyses SI queries mixed with
Serializable SI updates.
"""

from __future__ import annotations

import enum


class IsolationLevel(enum.Enum):
    """Per-transaction concurrency control discipline.

    * ``SERIALIZABLE_2PL`` — strict two-phase locking with next-key
      locking for phantoms: shared locks on reads held to commit.
    * ``SNAPSHOT`` — plain snapshot isolation with first-updater-wins
      write locking.  Permits write skew and phantom anomalies.
    * ``SERIALIZABLE_SSI`` — the paper's contribution: SI plus SIREAD
      locks and dangerous-structure detection.  Serializable, reads never
      block writers nor vice versa.
    * ``SGT`` — SI plus a full online serialization-graph certifier; the
      precise-but-expensive baseline of Section 2.7.
    """

    SERIALIZABLE_2PL = "s2pl"
    SNAPSHOT = "si"
    SERIALIZABLE_SSI = "ssi"
    SGT = "sgt"

    @property
    def uses_snapshots(self) -> bool:
        return self is not IsolationLevel.SERIALIZABLE_2PL

    @property
    def takes_read_locks(self) -> bool:
        """Does a read acquire a lock at all (blocking or not)?"""
        return self in (
            IsolationLevel.SERIALIZABLE_2PL,
            IsolationLevel.SERIALIZABLE_SSI,
            IsolationLevel.SGT,
        )

    @property
    def detects_rw_conflicts(self) -> bool:
        """SSI and SGT both track rw-antidependencies at runtime."""
        return self in (IsolationLevel.SERIALIZABLE_SSI, IsolationLevel.SGT)

    @classmethod
    def parse(cls, value: "IsolationLevel | str") -> "IsolationLevel":
        if isinstance(value, cls):
            return value
        for level in cls:
            if level.value == value or level.name == value:
                return level
        raise ValueError(f"unknown isolation level: {value!r}")
