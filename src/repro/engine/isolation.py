"""Isolation levels.

The engine runs any mix of levels concurrently against shared data — the
paper stresses that mixed-level execution must be supported (Section
2.6.3), and Section 3.8 specifically analyses SI queries mixed with
Serializable SI updates.

Each level is implemented by a :class:`~repro.cc.policy.CCPolicy`
registered in :mod:`repro.cc.registry`; the enum itself only names the
discipline and answers coarse capability questions for tooling.
"""

from __future__ import annotations

import enum
import re


def _normalize(name: str) -> str:
    """Case-fold and collapse separator runs so SQL-style spellings
    (``"REPEATABLE READ"``, ``"repeatable_read"``) compare equal."""
    return re.sub(r"[\s_-]+", " ", name.strip().casefold())


class IsolationLevel(enum.Enum):
    """Per-transaction concurrency control discipline.

    * ``SERIALIZABLE_2PL`` — strict two-phase locking with next-key
      locking for phantoms: shared locks on reads held to commit.
    * ``SNAPSHOT`` — plain snapshot isolation with first-updater-wins
      write locking.  Permits write skew and phantom anomalies.
    * ``SERIALIZABLE_SSI`` — the paper's contribution: SI plus SIREAD
      locks and dangerous-structure detection.  Serializable, reads never
      block writers nor vice versa.
    * ``SERIALIZABLE_SSI_RO`` — Serializable SI plus the Ports & Grittner
      read-only optimization (VLDB 2012): a dangerous structure whose
      incoming transaction is read-only is only unsafe when the outgoing
      transaction committed before the incoming one's snapshot.
    * ``SGT`` — SI plus a full online serialization-graph certifier; the
      precise-but-expensive baseline of Section 2.7.
    """

    SERIALIZABLE_2PL = "s2pl"
    SNAPSHOT = "si"
    SERIALIZABLE_SSI = "ssi"
    SERIALIZABLE_SSI_RO = "ssi-ro"
    SGT = "sgt"

    @property
    def uses_snapshots(self) -> bool:
        return self is not IsolationLevel.SERIALIZABLE_2PL

    @property
    def takes_read_locks(self) -> bool:
        """Does a read acquire a lock at all (blocking or not)?"""
        return self is not IsolationLevel.SNAPSHOT

    @property
    def detects_rw_conflicts(self) -> bool:
        """Does the level track rw-antidependencies at runtime?"""
        return self in (
            IsolationLevel.SERIALIZABLE_SSI,
            IsolationLevel.SERIALIZABLE_SSI_RO,
            IsolationLevel.SGT,
        )

    @classmethod
    def parse(cls, value: "IsolationLevel | str") -> "IsolationLevel":
        """Resolve a level from its enum value, member name, or a SQL-style
        alias.  Matching is case-insensitive and tolerant of ``_``/``-``/
        whitespace separator differences: ``"SSI"``, ``"Serializable"``,
        ``"REPEATABLE READ"`` and ``"snapshot"`` all resolve.
        """
        if isinstance(value, cls):
            return value
        # Memoized on the raw string: the engine parses the level on every
        # begin(), and the regex normalization was ~a quarter of the
        # point-read path before caching.  Unknown spellings keep raising
        # (and are not cached).
        cached = _PARSE_CACHE.get(value)
        if cached is not None:
            return cached
        wanted = _normalize(value)
        for level in cls:
            if wanted in (_normalize(level.value), _normalize(level.name)):
                _PARSE_CACHE[value] = level
                return level
        alias = _ALIASES.get(wanted)
        if alias is not None:
            _PARSE_CACHE[value] = alias
            return alias
        raise ValueError(f"unknown isolation level: {value!r}")


#: SQL-standard spellings mapped onto the engine's disciplines: a request
#: for SERIALIZABLE gets the paper's algorithm, and the levels that SI
#: historically shipped under (PostgreSQL's pre-9.1 SERIALIZABLE was
#: really SI; Oracle calls it SERIALIZABLE too) map to plain snapshots.
_ALIASES: dict[str, IsolationLevel] = {
    "serializable": IsolationLevel.SERIALIZABLE_SSI,
    "repeatable read": IsolationLevel.SNAPSHOT,
    "snapshot": IsolationLevel.SNAPSHOT,
    "snapshot isolation": IsolationLevel.SNAPSHOT,
    "serializable read only optimized": IsolationLevel.SERIALIZABLE_SSI_RO,
}

#: raw spelling -> resolved level, filled lazily by :meth:`IsolationLevel.parse`.
_PARSE_CACHE: dict[str, IsolationLevel] = {}
