"""Completion primitives for the wait/notify spine.

A :class:`Completion` is the engine's one-shot "this wait is over"
object: resolvers call :meth:`set` exactly once, waiters either park a
thread on :meth:`wait` (the classic blocking client) or subscribe a
callback via :meth:`on_fire` (the session scheduler, the asyncio
bridge).  Subscription and firing are serialised by a per-completion
lock so a callback registered concurrently with :meth:`set` fires
exactly once — the same contract :class:`repro.locking.manager.LockRequest`
gives its resolve callbacks.

Callbacks run on the *firing* thread, which may hold engine latches
(e.g. the tracker latch inside ``SafeSnapshotMonitor`` verdicts), so a
callback must only hand work off — set an event, enqueue a session —
never re-enter the engine.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["Completion"]


class Completion:
    """A one-shot, thread-safe completion with callback subscription.

    Exposes the ``set()`` interface of :class:`threading.Event` (the
    engine's safe-snapshot monitor fires verdicts through exactly that
    method) plus :meth:`on_fire` subscription for executors that must
    not block a thread.
    """

    __slots__ = ("_lock", "_fired", "_callbacks", "_event")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._fired = False
        self._callbacks: list[Callable[["Completion"], Any]] = []
        self._event: threading.Event | None = None

    @property
    def fired(self) -> bool:
        return self._fired

    def set(self) -> bool:
        """Fire the completion.  Idempotent: only the first call runs the
        subscribed callbacks; later calls are no-ops.  Returns True when
        this call was the one that fired it."""
        with self._lock:
            if self._fired:
                return False
            self._fired = True
            callbacks, self._callbacks = self._callbacks, []
            event = self._event
        if event is not None:
            event.set()
        for callback in callbacks:
            callback(self)
        return True

    def on_fire(self, callback: Callable[["Completion"], Any]) -> None:
        """Subscribe; fires immediately (on the calling thread) when the
        completion has already been set."""
        with self._lock:
            if not self._fired:
                self._callbacks.append(callback)
                return
        callback(self)

    def wait(self, timeout: float | None = None) -> bool:
        """Block the calling thread until fired (thin thread adapter:
        a lazily-created :class:`threading.Event` registered once)."""
        with self._lock:
            if self._fired:
                return True
            if self._event is None:
                self._event = threading.Event()
            event = self._event
        return event.wait(timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Completion(fired={self._fired})"
