"""Group commit: batched certification and group WAL flush (PR 9).

Per-commit cost in this engine has three tiers — the Fig 3.4 dangerous-
structure check under the tracker latch, version installation under the
commit latch, and (with a write-ahead log attached) a flush per commit.
PostgreSQL's production SSI pays the same three and amortizes them with
group commit (Ports & Grittner, VLDB'12); this module is that layer.

A committer calls :meth:`CommitBatcher.submit`, which enqueues a
*ticket* and elects the first enqueuer with no active leader as the
batch **leader**.  The leader holds a short collect window open
(``group_commit_wait_us``) so concurrently-arriving committers can join,
then runs the whole group in one pass:

1. **Group certification** — tracker and commit latches are taken once
   for the batch.  Members are certified *in arrival order*, which is
   also the deterministic intra-batch victim rule: member k is checked
   against a world in which members 0..k-1 have already committed,
   exactly as if the serial certifier had been fed the same arrival
   order — so group certification admits precisely the histories the
   one-at-a-time path does, and a dangerous structure completed inside
   the batch aborts the *later* arrival.  Failed members take the abort
   decision (tracker phase) inline; their lock release happens after
   the latches drop.
2. **Group WAL flush** — redo records for every committed member are
   appended outside all latches, in commit order, then one
   ``flush()`` covers the batch.  Locks are still held (finalize runs
   after the flush), preserving the paper's flush-before-release
   ordering for every member, and recovery can never see a torn group:
   either the single flush happened (all members durable) or it did
   not (none are).
3. **Finalize** — the leader finalizes every member (release locks,
   suspend retained records) and only then resolves the tickets, so a
   resumed waiter observes its transaction fully retired.

Followers never block a latch holder: they wait on the ticket's
:class:`~repro.engine.waits.Completion` (threads park on ``wait()``;
sessions suspend via :class:`~repro.errors.GroupCommitWaitRequired` and
ride the group without occupying a scheduler worker).

Leader election is submit-time and gap-free: the leader flag is only
cleared under the batcher mutex when the queue is empty, so every
queued ticket always has an active leader responsible for it.
"""

from __future__ import annotations

import threading
import time

from repro.engine.config import LockGranularity
from repro.engine.waits import Completion
from repro.errors import TransactionStateError

__all__ = ["CommitBatcher"]


class _Ticket:
    """One queued commit: the transaction, the completion its waiter
    parks on, and the batch outcome (``error`` set when group
    certification aborted this member).  ``resolved`` distinguishes the
    leader's verdict from a spurious completion fire (``interrupt()``
    wakes suspended sessions through the same completion)."""

    __slots__ = ("txn", "done", "error", "abort_bucket", "resolved")

    def __init__(self, txn) -> None:
        self.txn = txn
        self.done = Completion()
        self.error: BaseException | None = None
        self.abort_bucket: str | None = None
        self.resolved = False


class CommitBatcher:
    """Collects concurrently-arriving committers into leader-run groups.

    Owned by a :class:`~repro.engine.database.Database` when
    ``EngineConfig.group_commit`` is set; drive it only through
    ``Database.commit``.
    """

    def __init__(self, db, max_batch: int, wait_us: int) -> None:
        if max_batch < 1:
            raise ValueError("group_commit_max must be >= 1")
        self.db = db
        self.max_batch = max_batch
        self.wait_s = max(0, wait_us) / 1_000_000.0
        # The batcher's own mutex/condition is *not* an engine latch: it
        # is never held across engine calls (the queue drain and the
        # batch run are disjoint critical sections).
        self._cv = threading.Condition()
        self._queue: list[_Ticket] = []
        self._leader_active = False
        self.stats = db.metrics.group("group_commit", {
            "batches": 0,
            "batched_txns": 0,
            "batch_aborts": 0,
        })
        self._h_batch_size = db.metrics.histogram(
            "group_commit_batch_size", edges=(1, 2, 4, 8, 16, 32, 64)
        )
        #: leader-pass phase timings (seconds, cumulative) — the
        #: commit-path profiler's attribution source.  Written only by
        #: the single active leader, read opportunistically.
        self.timings = {
            "collect_s": 0.0, "certify_s": 0.0,
            "wal_s": 0.0, "finalize_s": 0.0,
        }

    # ----------------------------------------------------------- enqueue

    def submit(self, txn) -> tuple[_Ticket, bool]:
        """Queue ``txn`` for the next group.  Returns ``(ticket,
        is_leader)``; a True leader flag obliges the caller to run
        :meth:`lead` (with no latches held) before waiting."""
        ticket = _Ticket(txn)
        with self._cv:
            self._queue.append(ticket)
            self._cv.notify()
            if self._leader_active:
                return ticket, False
            self._leader_active = True
            return ticket, True

    # ------------------------------------------------------------- leader

    def lead(self) -> None:
        """Run batches until the queue drains.  The collect window stays
        open up to ``group_commit_wait_us`` or until ``max_batch``
        committers have queued, whichever comes first; the leader only
        steps down (under the mutex) when nothing is queued, so no
        ticket can be stranded leaderless."""
        while True:
            started = time.monotonic()
            deadline = started + self.wait_s
            with self._cv:
                if self.wait_s > 0:
                    while len(self._queue) < self.max_batch:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cv.wait(remaining)
                batch = self._queue[: self.max_batch]
                del self._queue[: self.max_batch]
            self.timings["collect_s"] += time.monotonic() - started
            if batch:
                self._run_batch(batch)
            with self._cv:
                if not self._queue:
                    self._leader_active = False
                    return

    def _run_batch(self, tickets: list[_Ticket]) -> None:
        """One leader pass over a group (see the module docstring)."""
        db = self.db
        page_mode = db.config.granularity is LockGranularity.PAGE
        committed: list[_Ticket] = []
        aborted: list[_Ticket] = []

        certify_started = time.monotonic()
        # One latched section per batch: both latches are taken once, in
        # hierarchy order; _logical_commit and _abort_tracker_phase
        # re-enter them (engine latches are re-entrant).
        with db._tracker_latch, db._commit_latch:
            for ticket in tickets:
                txn = ticket.txn
                if not txn.is_active:
                    ticket.error = TransactionStateError(
                        f"transaction {txn.id} is {txn.status.value}"
                    )
                    continue
                error = txn.doom_error
                if error is None and txn.policy.certifies:
                    error = txn.policy.before_commit(txn)
                    if error is None and db._prepared:
                        error = db._endangering_prepared(txn)
                if error is None:
                    db._logical_commit(txn, page_mode)
                    if txn.policy.certifies:
                        if db.safe_snapshots is not None:
                            # Before after_commit: the enhanced tracker
                            # munges committed references there and the
                            # monitor needs the real T_out.
                            db.safe_snapshots.on_commit(txn)
                        txn.policy.after_commit(txn)
                    committed.append(ticket)
                else:
                    # The abort decision (tracker phase) happens inside
                    # the batch's latched section so later members certify
                    # against it; lock release and WAL I/O wait below.
                    ticket.error = error
                    ticket.abort_bucket = db._abort_tracker_phase(
                        txn, error.reason
                    )
                    aborted.append(ticket)
        now = time.monotonic()
        self.timings["certify_s"] += now - certify_started

        # Group WAL flush: all redo records in commit order, one flush
        # for the whole batch.  No latch is held; every member's locks
        # are (flush-before-release ordering, per member).
        wal_started = now
        if db.wal is not None:
            from repro.mvcc.version import TOMBSTONE

            logged = False
            for ticket in committed:
                txn = ticket.txn
                if not txn.write_set:
                    continue
                for (table_name, key), value in txn.write_set.items():
                    db.wal.log_write(
                        txn.id, table_name, key,
                        None if value is TOMBSTONE else value,
                        tombstone=value is TOMBSTONE,
                        kind=txn.write_kinds.get((table_name, key), "write"),
                    )
                db.wal.log_commit(txn.id, txn.commit_ts)
                logged = True
            if logged and db.config.wal_flush_on_commit:
                db.wal.flush()
        now = time.monotonic()
        self.timings["wal_s"] += now - wal_started

        finalize_started = now
        if committed:
            db.stats.inc("commits", len(committed))
        from repro.obs.trace import EventType

        for ticket in committed:
            txn = ticket.txn
            if db.history is not None:
                db.history.on_commit(txn.id, txn.commit_ts)
            if db.trace is not None:
                db.trace.emit(
                    EventType.COMMIT, txn.id, commit_ts=txn.commit_ts
                )
            # The leader finalizes followers too: locks must release
            # only after the group flush, and a resumed waiter must find
            # its transaction fully retired.
            db.finalize_commit(txn)
        for ticket in aborted:
            if ticket.abort_bucket is not None:
                db._abort_release_phase(ticket.txn, ticket.abort_bucket)
        self.timings["finalize_s"] += time.monotonic() - finalize_started

        self.stats.inc("batches")
        self.stats.inc("batched_txns", len(tickets))
        if aborted:
            self.stats.inc("batch_aborts", len(aborted))
        self._h_batch_size.observe(len(tickets))

        # Resolve last: after this, waiters may observe and reuse
        # anything about the transaction.
        for ticket in tickets:
            ticket.resolved = True
            ticket.done.set()
