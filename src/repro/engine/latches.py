"""The engine's latch hierarchy.

PR 5 replaces the single global "kernel mutex" (the InnoDB Section 4.4
simplification) with fine-grained latches, the direction Ports & Grittner
(VLDB 2012) took when the coarse SSI manager lock became PostgreSQL's
dominant scalability bottleneck.  Every latch has a *rank*; a thread may
only acquire a latch whose rank is greater than (or equal to, for the
same latch — all latches are re-entrant) every latch it already holds.
Any execution respecting the rank order is deadlock-free.

The documented order (low rank acquired first)::

    txn(10) < tracker(20) < commit(30) < table(40)
            < lock-queue(50) < lock-stripe(60) < lock-owner(70)
            < obs(80) < wal(90)

What each level protects:

``txn``
    Transaction registry/active/suspended sets, schema dicts, id counter.
``tracker``
    Conflict-tracker / certifier state and every policy hook that mutates
    it; the commit decision (``before_commit`` .. status flip) runs under
    it so a concurrent ``mark_conflict`` can never slip between the
    unsafe check and the commit.
``commit``
    Commit-timestamp allocation + version installation + the status flip,
    so a snapshot taken under the same latch never observes a commit
    timestamp whose versions are still being installed.
``table``
    One latch per :class:`~repro.storage.table.Table`: B+-tree structure,
    version-chain install/prune, and the scan-vs-insert gap-locking
    critical sections.  Two *different* table latches may not be held at
    once (they share a rank), which the engine never needs.
``lock-queue`` / ``lock-stripe`` / ``lock-owner``
    The striped lock manager (see :mod:`repro.locking.manager`): stripes
    partition the resource->head map; the queue latch serialises every
    wait-queue/waits-for mutation and is the licence to hold *multiple*
    stripe latches; the owner latch guards the per-owner indexes and the
    manager counters.
``obs``
    The leaf latch of :mod:`repro.obs`: metric increments via
    ``CounterGroup.inc``, histogram observation, trace emission,
    registry snapshots.  Nothing may be acquired under it.
``wal``
    Internal to :class:`~repro.wal.log.WriteAheadLog` consumers: commit
    record append + flush are serialised by it *after* every engine latch
    has been released, so log file I/O never happens under a latch.

Production latches are plain ``threading.RLock`` objects — zero wrapper
overhead on the hot paths.  Setting the environment variable
``REPRO_LATCH_DEBUG=1`` (read per :func:`make_latch` call, so tests can
flip it with ``monkeypatch``) swaps in :class:`CheckedLatch`, which
tracks a per-thread stack of held latches and raises
:class:`LatchOrderError` on any rank-order violation.  The engine's
blocking executor additionally asserts via :func:`held_latches` that no
checked latch is held across a lock wait.

A note on the GIL: under stock CPython the striped latches do not buy
parallel *speed* — they buy correctness under preemptive thread switches
(the GIL is released every few bytecodes, so unprotected multi-step
mutations do tear) and they are the groundwork for free-threaded
(PEP 703) builds, where each stripe becomes a genuine parallelism unit.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable

#: Canonical rank table (the documented latch order).
RANKS = {
    "txn": 10,
    "tracker": 20,
    "commit": 30,
    "table": 40,
    "lock-queue": 50,
    "lock-stripe": 60,
    "lock-owner": 70,
    "obs": 80,
    "wal": 90,
}

#: Rank whose possession licences holding several same-rank latches at
#: once (multiple lock-manager stripes under the queue latch).
MULTI_ACQUIRE_LICENCE = {RANKS["lock-stripe"]: RANKS["lock-queue"]}


class LatchOrderError(RuntimeError):
    """A latch was acquired against the documented rank order."""


_held = threading.local()


def _held_stack() -> list:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


def held_latches() -> list["CheckedLatch"]:
    """Checked latches held by the calling thread, acquisition order.

    Production (unchecked) latches are invisible here: the function
    exists for assertions in debug-latch test runs, where it must be
    empty at every blocking point."""
    return [latch for latch, _count in _held_stack()]


class CheckedLatch:
    """An RLock that enforces the rank order (debug builds only)."""

    __slots__ = ("name", "rank", "_lock")

    def __init__(self, name: str, rank: int):
        self.name = name
        self.rank = rank
        self._lock = threading.RLock()

    def __enter__(self) -> "CheckedLatch":
        stack = _held_stack()
        if stack:
            top, _count = stack[-1]
            held_ranks = [latch.rank for latch, _n in stack]
            maximum = max(held_ranks)
            if self.rank < maximum and not any(
                latch is self for latch, _n in stack
            ):
                raise LatchOrderError(
                    f"acquiring {self.name}(rank {self.rank}) while holding "
                    f"{top.name}(rank {top.rank}) violates the latch order"
                )
            if self.rank == maximum and not any(
                latch is self for latch, _n in stack
            ):
                licence = MULTI_ACQUIRE_LICENCE.get(self.rank)
                if licence is None or licence not in held_ranks:
                    raise LatchOrderError(
                        f"acquiring {self.name}(rank {self.rank}) while "
                        f"already holding a rank-{self.rank} latch requires "
                        f"the licensing latch (rank {licence})"
                    )
        self._lock.acquire()
        for index, (latch, count) in enumerate(stack):
            if latch is self:
                stack[index] = (latch, count + 1)
                break
        else:
            stack.append((self, 1))
        return self

    def __exit__(self, *exc_info) -> None:
        stack = _held_stack()
        for index in range(len(stack) - 1, -1, -1):
            latch, count = stack[index]
            if latch is self:
                if count == 1:
                    del stack[index]
                else:
                    stack[index] = (latch, count - 1)
                break
        self._lock.release()

    # RLock-compatible aliases for code that acquires imperatively.
    def acquire(self) -> bool:
        self.__enter__()
        return True

    def release(self) -> None:
        self.__exit__()

    def __repr__(self) -> str:
        return f"CheckedLatch({self.name!r}, rank={self.rank})"


def debug_enabled() -> bool:
    return os.environ.get("REPRO_LATCH_DEBUG", "") not in ("", "0")


def make_latch(name: str, rank: int | None = None):
    """A latch named after a rank-table entry (or an explicit rank).

    Returns a raw ``threading.RLock`` in production; a
    :class:`CheckedLatch` when ``REPRO_LATCH_DEBUG`` is set."""
    if rank is None:
        base = name.split("[", 1)[0]
        rank = RANKS[base]
    if debug_enabled():
        return CheckedLatch(name, rank)
    return threading.RLock()


def make_stripe_latches(count: int) -> list:
    """The lock manager's stripe latches (all share the stripe rank)."""
    return [make_latch(f"lock-stripe[{i}]", RANKS["lock-stripe"]) for i in range(count)]


def assert_no_latches_held(context: str) -> None:
    """Debug assertion: the calling thread holds no checked latch.

    Used at blocking points (``threading.Event.wait`` in the transaction
    executor): sleeping while holding a latch would stall every other
    client on it.  Free in production (no checked latches exist, the
    stack is empty)."""
    stack = getattr(_held, "stack", None)
    if stack:
        names = ", ".join(latch.name for latch, _count in stack)
        raise LatchOrderError(
            f"{context} would block while holding latch(es): {names}"
        )


def latch_names(latches: Iterable) -> list[str]:
    """Names of checked latches (debug introspection helper)."""
    return [
        getattr(latch, "name", "<unchecked>") for latch in latches
    ]
