"""The database engine.

Wires together the MVCC substrate, the lock manager and the Serializable
SI conflict tracker into the transactional API of the paper's prototypes:

* plain snapshot isolation with first-updater-wins write locking and the
  deferred read-view optimisation (Sections 2.5, 4.5);
* strict two-phase locking with next-key locking for phantoms (2.2.1,
  2.5.2);
* Serializable SI: SIREAD locks, newer-version checks, dangerous-structure
  detection at mark and commit time, suspended committed transactions and
  their cleanup (Chapter 3);
* an SGT-certifier level as the precise baseline (2.7).

Threading model (PR-5): the engine is internally latched rather than
serialised by one kernel mutex.  Shared state is partitioned along the
latch hierarchy of :mod:`repro.engine.latches` —

* ``txn`` latch: transaction-id allocation, the registry/active/suspended
  maps, and schema changes;
* ``tracker`` latch: every CC-policy hook (conflict slots, the SGT
  certifier graph, rw-edge dispatch) and the commit/abort decision;
* ``commit`` latch: commit-timestamp allocation + version installation,
  and snapshot assignment — so a read view can never observe a commit's
  versions torn (every in-flight install carries a ``commit_ts`` newer
  than any snapshot handed out before it finished);
* per-table latches (B+-tree structure), lock-manager stripes, the obs
  latch and the WAL latch live further down the hierarchy.

Lock *waits* never happen while holding any latch: an operation that must
wait raises :class:`~repro.errors.LockWaitRequired` after fully unwinding
and is re-invoked after the grant; lock acquisition is idempotent, and
operations perform no side effects before their lock acquisitions, so
re-invocation is safe.  WAL appends/flushes and trace/history reporting
run outside every engine latch.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Hashable, Iterable, Optional

from repro.cc import build_policies
from repro.cc.policy import CCPolicy
from repro.engine.config import DeadlockMode, EngineConfig, LockGranularity
from repro.engine.indexes import IndexDef, KeyFunc
from repro.engine.groupcommit import CommitBatcher
from repro.engine.isolation import IsolationLevel
from repro.engine.latches import make_latch
from repro.engine.transaction import Transaction, TransactionStatus
from repro.engine.waits import Completion
from repro.errors import (
    ABORT_REASONS,
    DeadlockError,
    DuplicateKeyError,
    GroupCommitWaitRequired,
    KeyNotFoundError,
    LockTimeoutError,
    LockWaitRequired,
    SafeSnapshotWaitRequired,
    TableError,
    TransactionAbortedError,
    TransactionStateError,
    UnsafeError,
    UpdateConflictError,
)
from repro.locking.deadlock import DeadlockDetector
from repro.locking.manager import (
    AcquireResult,
    AcquireStatus,
    LockManager,
    LockRequest,
    RequestState,
    Resource,
    gap_resource,
    page_resource,
    record_resource,
    table_resource,
)
from repro.locking.modes import LockMode
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.timestamps import LogicalClock
from repro.mvcc.version import TOMBSTONE, Version
from repro.obs.explain import AbortExplanation, explain_abort as _explain_abort
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import EventTrace, EventType
from repro.sgt.history import HistoryRecorder
from repro.storage.btree import SUPREMUM
from repro.storage.table import Table

#: PREPARE summary of a transaction with clean conflict slots (also the
#: whole summary for non-certifying levels: SI/S2PL export no rw state).
_EMPTY_SUMMARY = {"in": False, "out": False,
                  "in_partner": None, "out_partner": None}


class Database:
    """A multi-table, multi-version transactional database.

    Args:
        config: engine tunables; defaults to the InnoDB-style
            configuration (record locks, enhanced conflict tracker).
    """

    #: real-time polling interval used by blocked threads to drive the
    #: periodic deadlock sweep (threaded mode only).
    wait_poll_interval = 0.02

    def __init__(self, config: EngineConfig | None = None, wal=None):
        self.config = config or EngineConfig()
        #: optional write-ahead log (repro.wal.WriteAheadLog); commits
        #: append redo records and, with wal_flush_on_commit, flush before
        #: locks are released.
        self.wal = wal
        self.clock = LogicalClock()
        # The latch hierarchy replaces the old single kernel mutex (see
        # the module docstring and repro.engine.latches for ranks).
        self._txn_latch = make_latch("txn")
        self._tracker_latch = make_latch("tracker")
        self._commit_latch = make_latch("commit")
        self._tables: dict[str, Table] = {}
        self._next_txn_id = 1

        handler = None
        if self.config.deadlock_mode is DeadlockMode.IMMEDIATE:
            handler = self._on_deadlock
        self.locks = LockManager(
            deadlock_handler=handler, siread_upgrade=self.config.siread_upgrade
        )
        self.deadlock_detector = DeadlockDetector()
        #: True when blocked threads must keep a poll tick alive to drive
        #: the periodic deadlock sweep; with immediate detection, lock
        #: waits are pure push wakeups (no timeout polling at all).
        self.needs_wait_polling = (
            self.config.deadlock_mode is DeadlockMode.PERIODIC
        )
        #: single-escalator guard for SIREAD granularity escalation; a
        #: plain (unranked) lock taken with blocking=False only — at most
        #: one thread escalates while the rest carry on.
        self._escalation_guard = threading.Lock()
        #: safe-snapshot monitor (Ports & Grittner §2.4), published by
        #: SSIPolicy.install when the SSI family is available.
        self.safe_snapshots = None

        #: transactions findable by id: active, plus committed-suspended
        self._registry: dict[int, Transaction] = {}
        self._active: dict[int, Transaction] = {}
        #: committed transactions retained for conflict detection, in
        #: commit order (Section 3.3)
        self._suspended: list[Transaction] = []
        #: committed writers kept *findable* (in the registry) but not
        #: suspended: they hold no SIREADs and cannot become pivots, yet
        #: Fig 3.4's newer-version branch must still resolve
        #: reader -> writer edges by creator id while a concurrent
        #: snapshot could ignore their versions.  Swept with the same
        #: horizon as the suspended list.
        self._retired_writers: list[Transaction] = []
        #: two-phase-commit participants: transactions that passed local
        #: certification via prepare_for_commit() and now await the
        #: coordinator's verdict.  Guarded by the tracker latch (the
        #: prepared flag is part of victim selection).
        self._prepared: set[Transaction] = set()
        #: PAGE granularity: last commit timestamp per (table, page) —
        #: Berkeley DB versions whole pages, so first-committer-wins
        #: fires on page conflicts between unrelated rows (Section 4.2).
        #: Written under the commit latch; read optimistically (point
        #: ``dict.get``).
        self._page_commit_ts: dict[tuple[str, int], int] = {}
        #: secondary indexes, by name and by base table
        self._indexes: dict[str, IndexDef] = {}
        self._indexes_by_table: dict[str, list[IndexDef]] = {}

        self.history: HistoryRecorder | None = (
            HistoryRecorder() if self.config.record_history else None
        )

        #: unified observability: one registry absorbs the engine, lock
        #: manager, tracker and certifier counters behind a deep-copy
        #: snapshot API (``db.metrics.snapshot()``).
        self.metrics = MetricsRegistry()
        #: engine counters — a CounterGroup (dict subclass), so hot-path
        #: increments keep native dict speed.  Each key has one
        #: consistent guard: begins/suspended_peak/cleaned under the txn
        #: latch, aborts/mixed_edges_dropped under the tracker latch,
        #: commits/reads/writes/scans via ``CounterGroup.inc`` (obs latch).
        self.stats = self.metrics.group("engine", {
            "begins": 0,
            "commits": 0,
            "aborts": {reason: 0 for reason in ABORT_REASONS},
            "reads": 0,
            "writes": 0,
            "scans": 0,
            "suspended_peak": 0,
            "cleaned": 0,
            "mixed_edges_dropped": 0,
            "vacuum_pause_events": 0,
        })
        # The lock manager (and the policy-owned tracker/certifier, below)
        # keep their counters in CounterGroups; adopting them (same
        # object, no copy) folds every stats dict into one surface.
        self.metrics.register_group("locks", self.locks.stats)
        # Instantaneous lock-table telemetry: the gauges the SIREAD
        # budget is judged against (counters can't answer "how big is the
        # lock table right now").
        self.metrics.register_gauge("lock_table_size", self.locks.table_size)
        self.metrics.register_gauge(
            "siread_locks", self.locks.siread_lock_count
        )
        self.metrics.register_gauge(
            "escalated_locks", self.locks.escalated_lock_count
        )
        #: one CCPolicy instance per isolation level.  Policies that own
        #: engine subsystems publish them during install (SSIPolicy sets
        #: ``self.tracker``, SGTPolicy sets ``self.certifier``) and adopt
        #: their metrics groups into the registry.
        self._policies = build_policies(self)
        #: the subset of policies that actually override
        #: ``on_transaction_retired`` — _retire runs on every retired
        #: transaction, and calling three no-op hooks per retirement is
        #: measurable under eager cleanup.
        self._retiring_policies = [
            policy
            for policy in self._policies.values()
            if type(policy).on_transaction_retired
            is not CCPolicy.on_transaction_retired
        ]
        self._h_lock_wait = self.metrics.histogram("lock_wait_time")
        self._h_chain_length = self.metrics.histogram(
            "version_chain_length", edges=(1, 2, 4, 8, 16, 32, 64)
        )
        self._h_siread_retention = self.metrics.histogram(
            "siread_retention", edges=(1, 4, 16, 64, 256, 1024, 4096)
        )
        self._h_suspended = self.metrics.histogram(
            "suspended_transactions", edges=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        #: event-trace layer — off (None) by default; every emission site
        #: below is guarded by a single ``is not None`` test.
        self.trace: EventTrace | None = None
        #: group commit (PR 9): when enabled, Database.commit routes
        #: through one leader-run batched certification + group WAL
        #: flush instead of the per-transaction path.
        self._batcher: CommitBatcher | None = (
            CommitBatcher(
                self,
                self.config.group_commit_max,
                self.config.group_commit_wait_us,
            )
            if self.config.group_commit
            else None
        )

    # ------------------------------------------------------ observability

    def enable_tracing(self, *sinks, capacity: int = 8192) -> EventTrace:
        """Turn on the event-trace layer.

        ``sinks`` are objects with an ``emit(event)`` method (e.g.
        :class:`~repro.obs.trace.JsonlFileSink`); with none given, a
        bounded in-memory ring buffer of ``capacity`` events is attached.
        Returns the :class:`~repro.obs.trace.EventTrace` for querying.
        """
        with self._txn_latch:
            trace = EventTrace(*sinks, clock=self.clock.now, capacity=capacity)
            self.trace = trace
            self.locks.trace = trace
            return trace

    def disable_tracing(self) -> None:
        """Detach and close the trace layer (no-op when already off)."""
        with self._txn_latch:
            trace, self.trace = self.trace, None
            self.locks.trace = None
            if trace is not None:
                trace.close()

    def explain_abort(self, txn_id: int) -> AbortExplanation:
        """Reconstruct why transaction ``txn_id`` was doomed, from the
        trace: abort reason, the rw-antidependencies it participated in,
        and — for a dangerous-structure abort — the pivot triple
        T_in -> pivot -> T_out.  Requires :meth:`enable_tracing`."""
        if self.trace is None:
            raise TransactionStateError(
                "explain_abort needs the event trace; call enable_tracing() first"
            )
        return _explain_abort(self.trace, txn_id)

    # ------------------------------------------------------------- schema

    def create_table(self, name: str, page_size: int | None = None) -> Table:
        """Create a table; ``page_size`` overrides the engine default."""
        with self._txn_latch:
            if name in self._tables:
                raise TableError(f"table {name!r} already exists")
            table = Table(name, page_size=page_size or self.config.page_size)
            self._tables[name] = table
            return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableError(f"no such table: {name!r}") from None

    def create_index(
        self,
        name: str,
        table: str,
        key_func: KeyFunc,
        unique: bool = False,
    ) -> IndexDef:
        """Create a secondary index over ``table``.

        The index is an ordinary ordered table maintained inside every
        transaction that writes the base table, so index range scans are
        phantom-safe predicate reads and unique indexes are transactional
        unique constraints.  Existing committed rows are indexed
        immediately.
        """
        with self._txn_latch:
            base = self.table(table)  # validates
            self.create_table(name)
            definition = IndexDef(name=name, table=table, key_func=key_func,
                                  unique=unique)
            self._indexes[name] = definition
            self._indexes_by_table.setdefault(table, []).append(definition)
            rows = []
            for key, chain in base.scan_chains(None, None):
                version = chain.latest()
                if version is None or version.is_tombstone:
                    continue
                entry = definition.entry_for(key, version.value)
                if entry is not None:
                    rows.append((entry, key))
            self.load(name, rows)
            return definition

    def index(self, name: str) -> IndexDef:
        try:
            return self._indexes[name]
        except KeyError:
            raise TableError(f"no such index: {name!r}") from None

    def load(self, name: str, rows: Iterable[tuple[Hashable, Any]]) -> None:
        """Bulk-load initial data, visible to every transaction.
        Registered secondary indexes are populated alongside."""
        table = self.table(name)
        definitions = self._indexes_by_table.get(name, ())
        with self._txn_latch:
            for key, value in rows:
                table.load(key, value)
                for definition in definitions:
                    entry = definition.entry_for(key, value)
                    if entry is not None:
                        self.table(definition.name).load(entry, key)

    # ------------------------------------------------------------ lifecycle

    def begin(
        self,
        isolation: IsolationLevel | str = IsolationLevel.SERIALIZABLE_SSI,
        read_only: bool = False,
        deferrable: bool = False,
        *,
        wait: bool = True,
        global_id: int | None = None,
    ) -> Transaction:
        """Start a transaction at the given isolation level (Fig 3.1).

        ``read_only=True`` declares the transaction will never write
        (writes raise :class:`TransactionStateError`); under the SSI
        family the safe-snapshot monitor then watches for the moment its
        snapshot can no longer join a dangerous structure and releases
        its SIREAD locks early (Ports & Grittner §2.4).
        ``deferrable=True`` (implies read-only) waits here until a safe
        snapshot is available, then runs with zero SIREAD retention —
        PostgreSQL's SERIALIZABLE READ ONLY DEFERRABLE.

        ``wait=False`` makes a deferrable begin non-blocking: instead of
        parking the calling thread it raises
        :class:`~repro.errors.SafeSnapshotWaitRequired` carrying the
        already-created transaction and a subscribable completion; the
        executor suspends and later calls :meth:`resume_deferrable`.
        """
        isolation = IsolationLevel.parse(isolation)
        # The single level -> behavior lookup: everything downstream
        # dispatches through txn.policy.
        policy = self._policies[isolation]
        if deferrable:
            read_only = True
        with self._txn_latch:
            txn = Transaction(
                self, self._next_txn_id, isolation, self.clock.next(),
                policy=policy,
            )
            txn.read_only = read_only
            txn.global_id = global_id
            self._next_txn_id += 1
            self._registry[txn.id] = txn
            self._active[txn.id] = txn
            self.stats["begins"] += 1
        if policy.tracks_begin:
            with self._tracker_latch:
                policy.on_begin(txn)
        if self.trace is not None:
            self.trace.emit(EventType.BEGIN, txn.id, isolation=isolation.value)
        if policy.uses_snapshots and deferrable:
            if wait:
                self._wait_safe_snapshot(txn)
            else:
                completion = self._deferrable_attempt(txn)
                if completion is not None:
                    if self.history is not None:
                        self.history.on_begin(txn.id)
                    raise SafeSnapshotWaitRequired(txn, completion)
        elif policy.uses_snapshots and not self.config.deferred_snapshot:
            self._assign_snapshot(txn)
        if self.history is not None:
            self.history.on_begin(txn.id)
        return txn

    def _deferrable_attempt(self, txn: Transaction) -> Completion | None:
        """Take one candidate snapshot for a deferrable begin.

        Returns None when the snapshot is already safe (the begin is
        complete) or a :class:`Completion` the safe-snapshot monitor will
        fire with its verdict — safe, or unsafe (permanent for this
        snapshot, so the next attempt needs a fresh one)."""
        completion = Completion()
        txn._safe_event = completion
        self._assign_snapshot(txn)
        if txn.snapshot_safe:
            txn._safe_event = None
            return None
        if self.safe_snapshots is None or txn.snapshot_safe is None:
            # No monitor watches this level: nothing retains SIREADs
            # here, so every snapshot is trivially safe.
            txn.snapshot_safe = True
            txn._safe_event = None
            return None
        return completion

    def resume_deferrable(self, txn: Transaction) -> Transaction:
        """Drive a non-blocking deferrable begin after its completion
        fired.  A safe verdict finishes the begin; an unsafe verdict is
        permanent for that snapshot, so a fresh one is taken — possibly
        raising :class:`SafeSnapshotWaitRequired` again."""
        if txn.snapshot_safe:
            txn._safe_event = None
            return txn
        # Unsafe verdict: a concurrent writer committed a pivot edge
        # this snapshot can still complete.  Take a fresh snapshot.
        txn.snapshot = None
        txn.snapshot_safe = None
        completion = self._deferrable_attempt(txn)
        if completion is not None:
            raise SafeSnapshotWaitRequired(txn, completion)
        return txn

    def _wait_safe_snapshot(self, txn: Transaction) -> None:
        """Thread-blocking adapter over the deferrable completion path:
        park on each candidate's completion until a safe verdict."""
        completion = self._deferrable_attempt(txn)
        while completion is not None:
            completion.wait()
            try:
                self.resume_deferrable(txn)
            except SafeSnapshotWaitRequired as retry:
                completion = retry.completion
            else:
                completion = None
        txn._safe_event = None

    def commit(self, txn: Transaction, *, wait: bool = True) -> None:
        """Commit: unsafe check, version install, lock release, suspension
        and cleanup (Fig 3.2 / Fig 3.10).

        With group commit enabled the transaction rides a
        :class:`~repro.engine.groupcommit.CommitBatcher` group instead:
        the submitting caller either becomes the batch leader (running
        the group inline) or waits for the leader's verdict —
        ``wait=False`` turns that wait into
        :class:`~repro.errors.GroupCommitWaitRequired` so a session can
        suspend on the ticket's completion and re-invoke this method,
        which consumes the resolved ticket.  Re-invocation with a
        pending ticket never re-submits.
        """
        batcher = self._batcher
        if batcher is None or (not txn.policy.certifies and not txn.write_set):
            # No batching configured — or nothing a group amortizes: a
            # non-certifying read-only commit takes no tracker latch and
            # writes no WAL, so the serial path is already minimal.
            self.prepare_commit(txn)
            self.finalize_commit(txn)
            return
        ticket = txn._commit_ticket
        if ticket is None:
            self._check_doom(txn)
            if not txn.is_active:
                raise TransactionStateError(
                    f"transaction {txn.id} is {txn.status.value}"
                )
            ticket, is_leader = batcher.submit(txn)
            txn._commit_ticket = ticket
            if is_leader:
                batcher.lead()
        if not ticket.resolved:
            if not wait:
                raise GroupCommitWaitRequired(txn, ticket.done)
            ticket.done.wait()
            while not ticket.resolved:
                # A spurious completion fire (session interrupt) can wake
                # a waiter before the leader publishes the verdict; the
                # leader resolves within its current pass.
                time.sleep(0.0001)
        txn._commit_ticket = None
        if ticket.error is not None:
            raise ticket.error

    def prepare_commit(self, txn: Transaction) -> None:
        """The atomic logical commit: checks, commit timestamp, version
        installation.  After this the transaction is durably committed but
        still holds its locks; :meth:`finalize_commit` releases them.

        Split from finalize so the simulator can charge the log-flush I/O
        while locks are still held — the ordering the paper enforces in
        InnoDB (Section 4.4, "locks are not released until after the log
        has been flushed").
        """
        self._check_doom(txn)
        if not txn.is_active:
            raise TransactionStateError(f"transaction {txn.id} is {txn.status.value}")
        page_mode = self.config.granularity is LockGranularity.PAGE
        if txn.policy.certifies:
            # The commit decision — certification through status flip — is
            # one tracker-latch critical section, so no rw edge can land
            # between a clean unsafe check and the transaction turning
            # COMMITTED without being serialised before the check.
            with self._tracker_latch:
                error = txn.policy.before_commit(txn)
                if error is None and self._prepared:
                    # Committing now must not complete a dangerous
                    # structure around a prepared pivot: the pivot can no
                    # longer abort locally, so this transaction yields.
                    error = self._endangering_prepared(txn)
                if error is None:
                    self._logical_commit(txn, page_mode)
                    if self.safe_snapshots is not None:
                        # Before after_commit: the enhanced tracker munges
                        # committed conflict references to self-references
                        # there, and the monitor needs the real T_out.
                        self.safe_snapshots.on_commit(txn)
                    txn.policy.after_commit(txn)
        else:
            # No certification hooks (plain SI, S2PL): nothing for the
            # tracker latch to order against.
            error = None
            self._logical_commit(txn, page_mode)
        if error is not None:
            self._abort_internal(txn, error.reason)
            raise error
        self.stats.inc("commits")
        # Log I/O and reporting run outside every latch.  Locks are still
        # held (finalize_commit releases them), so the flush-then-release
        # ordering above is preserved.
        if self.wal is not None and txn.write_set:
            for (table_name, key), value in txn.write_set.items():
                self.wal.log_write(
                    txn.id, table_name, key,
                    None if value is TOMBSTONE else value,
                    tombstone=value is TOMBSTONE,
                    kind=txn.write_kinds.get((table_name, key), "write"),
                )
            self.wal.log_commit(txn.id, txn.commit_ts)
            if self.config.wal_flush_on_commit:
                self.wal.flush()
        if self.history is not None:
            self.history.on_commit(txn.id, txn.commit_ts)
        if self.trace is not None:
            self.trace.emit(EventType.COMMIT, txn.id, commit_ts=txn.commit_ts)

    # --------------------------------------------- two-phase commit seam

    def prepare_for_commit(self, txn: Transaction) -> dict:
        """First phase of a coordinator-driven two-phase commit.

        Runs local certification (the same unsafe check a plain commit
        would run) but installs nothing: the transaction stays ACTIVE,
        keeps its write locks (first-committer-wins still fires against
        it) and is marked *prepared* — from here on it cannot be chosen
        as an SSI or deadlock victim (prepared-transaction-wins; see
        :meth:`doom` and the trackers' ``_choose_victim``), and any
        local transaction whose commit would complete a dangerous
        structure around it aborts instead
        (:meth:`_endangering_prepared`).

        Returns the shard's rw-antidependency summary for the PREPARE
        response::

            {"in": bool, "out": bool,
             "in_partner": gtid | "unknown" | None,
             "out_partner": gtid | "unknown" | None}

        ``in``/``out`` are the transaction's conflict-slot states at
        prepare time (SIREAD-vs-write conflicts discovered here are
        already folded in — marking happens at operation time, under the
        same tracker latch this check takes).  Partners are rendered as
        coordinator global ids when known; ``"unknown"`` covers boolean
        flags, self-references (order lost) and partners without a
        global id.  A failed certification aborts the transaction and
        raises, exactly like :meth:`prepare_commit`.
        """
        self._check_doom(txn)
        if not txn.is_active:
            raise TransactionStateError(f"transaction {txn.id} is {txn.status.value}")
        summary = _EMPTY_SUMMARY.copy()
        if txn.policy.certifies:
            with self._tracker_latch:
                error = txn.policy.before_commit(txn)
                if error is None and self._prepared:
                    error = self._endangering_prepared(txn)
                if error is None:
                    txn.prepared = True
                    self._prepared.add(txn)
                    summary = self._conflict_summary(txn)
        else:
            error = None
            with self._tracker_latch:
                txn.prepared = True
                self._prepared.add(txn)
        if error is not None:
            self._abort_internal(txn, error.reason)
            raise error
        if self.trace is not None:
            self.trace.emit(EventType.PREPARE, txn.id, **summary)
        return summary

    def commit_prepared(
        self, txn: Transaction, *, import_in: bool = False,
        import_out: bool = False,
    ) -> None:
        """Second phase: commit a prepared transaction unconditionally.

        The coordinator's verdict is final — atomicity across shards
        forbids re-certification here, so unlike :meth:`prepare_commit`
        this never runs ``before_commit``.  Soundness is preserved by
        three rules that bracketed the window since prepare: new edges
        abort the unprepared counterparty (prepared-transaction-wins),
        a local committer that would endanger a prepared pivot aborts
        itself (:meth:`_endangering_prepared`), and the merged
        cross-shard flags are imported here so post-commit edges against
        this transaction see the global dangerous structure (Ports &
        Grittner: the flags travel with the commit record).

        ``import_in``/``import_out`` fold the coordinator's *merged*
        conflict flags into slots this shard saw empty; the conservative
        self-reference/boolean encoding makes later local checks treat
        the partner as uncommitted-order-unknown.  Callers still run
        :meth:`finalize_commit` afterwards.
        """
        if not txn.is_active:
            raise TransactionStateError(f"transaction {txn.id} is {txn.status.value}")
        if not txn.prepared:
            raise TransactionStateError(
                f"commit_prepared of transaction {txn.id} before prepare"
            )
        page_mode = self.config.granularity is LockGranularity.PAGE
        if txn.policy.certifies:
            with self._tracker_latch:
                self._prepared.discard(txn)
                txn.prepared = False
                # Merged flags land in slots this shard saw empty, as the
                # most conservative encoding the slot type admits: True
                # for the boolean tracker (empty value False), a
                # self-reference (order lost, bounds pinned open) for the
                # reference tracker (empty value None).
                if import_in and not txn.in_conflict:
                    txn.in_conflict = True if txn.in_conflict is False else txn
                if import_out and not txn.out_conflict:
                    txn.out_conflict = True if txn.out_conflict is False else txn
                self._logical_commit(txn, page_mode)
                if self.safe_snapshots is not None:
                    self.safe_snapshots.on_commit(txn)
                txn.policy.after_commit(txn)
        else:
            with self._tracker_latch:
                self._prepared.discard(txn)
                txn.prepared = False
            self._logical_commit(txn, page_mode)
        self.stats.inc("commits")
        if self.wal is not None and txn.write_set:
            for (table_name, key), value in txn.write_set.items():
                self.wal.log_write(
                    txn.id, table_name, key,
                    None if value is TOMBSTONE else value,
                    tombstone=value is TOMBSTONE,
                    kind=txn.write_kinds.get((table_name, key), "write"),
                )
            self.wal.log_commit(txn.id, txn.commit_ts)
            if self.config.wal_flush_on_commit:
                self.wal.flush()
        if self.history is not None:
            self.history.on_commit(txn.id, txn.commit_ts)
        if self.trace is not None:
            self.trace.emit(EventType.COMMIT, txn.id, commit_ts=txn.commit_ts)

    def _endangering_prepared(
        self, txn: Transaction
    ) -> TransactionAbortedError | None:
        """Tracker-latched: would committing ``txn`` now complete a
        dangerous structure around a prepared pivot?

        A prepared pivot P with both slots occupied is unsafe once its
        outgoing side commits no later than its incoming side (the
        enhanced tracker's bound test).  P itself can no longer abort,
        so if ``txn`` *is* (or may be) P's outgoing side and P's
        incoming bound is still open (+inf: uncommitted or order lost),
        ``txn`` must yield.  Conservative for boolean trackers (any
        ``True`` flag counts)."""
        for pivot in self._prepared:
            if pivot is txn or not pivot.is_active:
                continue
            out_ref = pivot.out_conflict
            in_ref = pivot.in_conflict
            if not out_ref or not in_ref:
                continue
            if not (out_ref is txn or out_ref is pivot or out_ref is True):
                continue
            if (
                in_ref is not True
                and in_ref is not pivot
                and getattr(in_ref, "is_committed", False)
            ):
                # in-bound = partner's commit_ts, strictly before txn's
                # prospective commit_ts -> out_bound > in_bound -> safe.
                continue
            return UnsafeError(
                f"commit of {txn.id} would endanger prepared pivot {pivot.id}",
                txn_id=txn.id,
            )
        return None

    @staticmethod
    def _conflict_summary(txn: Transaction) -> dict:
        """Render the conflict slots JSON-safe for a PREPARE response."""
        def render(ref):
            if ref is None or ref is False:
                return False, None
            if ref is True or ref is txn:
                return True, "unknown"
            if getattr(ref, "is_aborted", False):
                # The edge died with its victim (Fig 3.10's restore rule);
                # an aborted partner must not vote a flag at PREPARE.
                return False, None
            gid = getattr(ref, "global_id", None)
            return True, gid if gid is not None else "unknown"

        has_in, in_partner = render(txn.in_conflict)
        has_out, out_partner = render(txn.out_conflict)
        return {"in": has_in, "out": has_out,
                "in_partner": in_partner, "out_partner": out_partner}

    def _logical_commit(self, txn: Transaction, page_mode: bool) -> None:
        """Allocate the commit timestamp, flip the status, install the
        write set.  A read-only transaction installs nothing, so it skips
        the commit latch entirely — the latch exists to keep snapshot
        assignment atomic against version installation, and there is
        nothing to install (the clock is internally synchronised)."""
        if not txn.write_set:
            txn.commit_ts = self.clock.next()
            txn.status = TransactionStatus.COMMITTED
            return
        with self._commit_latch:
            txn.commit_ts = self.clock.next()
            txn.status = TransactionStatus.COMMITTED
            for (table_name, key), value in txn.write_set.items():
                table = self.table(table_name)
                with table.latch:
                    chain, touched = table.ensure_chain(key)
                    if (
                        len(touched) > 1
                        and not page_mode
                        and self.locks.has_escalated_locks()
                    ):
                        # A blind write's key registration split a leaf:
                        # replicate escalated page sentinels onto the new
                        # sibling (commit 30 < queue 50 keeps rank order).
                        self.locks.inherit_siread_locks(
                            page_resource(table_name, touched[0]),
                            page_resource(table_name, touched[1]),
                        )
                    chain_length = chain.install(
                        Version(value=value, commit_ts=txn.commit_ts,
                                creator_id=txn.id)
                    )
                    if page_mode:
                        page_key = (table_name, table.leaf_page_of(key))
                        self._page_commit_ts[page_key] = txn.commit_ts
                self._h_chain_length.observe(chain_length)

    def finalize_commit(self, txn: Transaction) -> None:
        """Release locks, suspend the record if needed, run cleanup."""
        if not txn.is_committed:
            raise TransactionStateError("finalize_commit before prepare_commit")
        lm = self.locks
        if not txn.policy.retains:
            # SI/S2PL: nothing survives the commit — release, unregister.
            lm.release_all(txn)
            with self._txn_latch:
                self._active.pop(txn.id, None)
                self._registry.pop(txn.id, None)
            self._maybe_cleanup()
            return
        suspended_depth = 0
        immediate_retention = None
        with self._txn_latch, self._tracker_latch:
            keep_siread = txn.policy.retain_read_locks(txn)
            retain = txn.policy.retain_record(txn, keep_siread)
            self._active.pop(txn.id, None)
            if (
                retain
                and self.config.eager_cleanup
                and txn.commit_ts <= self._oldest_active_read_ts()
                and txn.policy.may_cleanup(txn)
            ):
                # Immediate cleanup — the serial-commit fast path (eager
                # mode only; lazy mode accrues records to its threshold).
                # No live snapshot overlaps this commit, so the suspended
                # record would be swept by the eager sweep this very
                # commit (same removability predicate).  Retire it here,
                # with the locks dropped under the same latches the sweep
                # would hold, and skip the whole suspend/sweep round
                # trip; counters, histograms and trace events mirror
                # suspend-then-clean so the fast path is observably
                # identical.
                lm.release_all(txn)
                self._retire(txn)
                self._registry.pop(txn.id, None)
                suspended_depth = len(self._suspended) + 1
                if suspended_depth > self.stats["suspended_peak"]:
                    self.stats["suspended_peak"] = suspended_depth
                self.stats["cleaned"] += 1
                immediate_retention = self.clock.now() - txn.commit_ts
                retain = False
            elif retain:
                txn.suspended = True
                self._suspended.append(txn)
                suspended_depth = len(self._suspended)
                if suspended_depth > self.stats["suspended_peak"]:
                    self.stats["suspended_peak"] = suspended_depth
            elif (
                txn.policy.needs_findable_record(txn)
                and txn.commit_ts > self._oldest_active_read_ts()
            ):
                # Not suspended — no SIREADs, no out-conflict — but a
                # concurrent snapshot predates this commit and may later
                # ignore one of its versions; the record must stay
                # findable or that rw edge is silently lost.
                self._retired_writers.append(txn)
            else:
                self._registry.pop(txn.id, None)
        if immediate_retention is not None:
            self._h_suspended.observe(suspended_depth)
            self._h_siread_retention.observe(immediate_retention)
            if self.trace is not None:
                self.trace.emit(
                    EventType.SUSPEND, txn.id, keep_siread=keep_siread
                )
                self.trace.emit(
                    EventType.CLEANUP, txn.id, retention=immediate_retention
                )
            self._maybe_cleanup()
            return
        if keep_siread and not txn.locked_writes:
            # Read-only commit retaining its sentinels.  The transaction
            # never ran a write-side lock path, so a lock it holds can
            # only be a read sentinel — when every sentinel is pure
            # SIREAD, all of them are being kept and the full release
            # walk is skipped.  A SHARED-read retaining policy fails the
            # manager's count check and takes the full path.
            if not lm.retain_all_reads(txn):
                lm.release_all(txn, keep_siread=True)
        else:
            lm.release_all(txn, keep_siread=keep_siread)
        if suspended_depth:
            self._h_suspended.observe(suspended_depth)
            if self.trace is not None:
                self.trace.emit(
                    EventType.SUSPEND, txn.id, keep_siread=keep_siread
                )
        self._maybe_cleanup()

    def abort(self, txn: Transaction, reason: str | None = None) -> None:
        """Roll back: discard writes, release every lock (including
        SIREADs — only committed transactions retain them)."""
        if not txn.is_active:
            return
        self._abort_internal(txn, reason or (txn.doom_error.reason if txn.doom_error else "aborted"))

    # ------------------------------------------------------------- reading

    def read(self, txn: Transaction, table_name: str, key: Hashable) -> Any:
        """Fig 3.4's modified read (plus the S2PL/SI/SGT variants)."""
        self._check_op(txn)
        value, found = self._read_internal(txn, table_name, key, locking=False)
        if not found:
            raise KeyNotFoundError(table_name, key)
        return value

    def get(
        self, txn: Transaction, table_name: str, key: Hashable, default: Any = None
    ) -> Any:
        self._check_op(txn)
        value, found = self._read_internal(txn, table_name, key, locking=False)
        return value if found else default

    def read_for_update(self, txn: Transaction, table_name: str, key: Hashable) -> Any:
        """SELECT ... FOR UPDATE: acquires the EXCLUSIVE lock before the
        snapshot is chosen (Section 4.5), providing Oracle-style promotion
        semantics (Section 2.6.2)."""
        self._check_op(txn)
        self._check_write(txn)
        self._acquire_write_locks(txn, table_name, key, gap=False)
        value, found = self._read_internal(
            txn, table_name, key, locking=True
        )
        if not found:
            raise KeyNotFoundError(table_name, key)
        return value

    def scan(
        self,
        txn: Transaction,
        table_name: str,
        lo: Hashable | None = None,
        hi: Hashable | None = None,
        reverse: bool = False,
        limit: int | None = None,
    ) -> list[tuple[Hashable, Any]]:
        """Predicate read over [lo, hi] with phantom protection
        (Fig 3.6 for SSI; next-key SHARED locks for S2PL).

        ``reverse`` returns rows in descending key order; ``limit`` caps
        the result *after* ordering.  **The whole range is still
        materialised and locked even with ``limit=N``**: the predicate
        the transaction logically evaluated covers [lo, hi], so phantom
        protection must too — a concurrent insert anywhere in the range
        could change which rows are "the first N".  Callers that only
        need a prefix and can accept prefix-only locking (sound because
        the result then only depends on keys up to the cut point) should
        use :meth:`scan_prefix`.

        Execution: with ``config.scan_kernel`` (the default) the chunked
        kernel materialises the key set in leaf-page-sized batches —
        dropping the table latch between chunks — acquires each lock
        round's resources in one stripe-grouped batch, optionally covers
        wide SSI scans with up-front page-granularity SIREADs
        (``config.scan_page_lock_threshold``), and resolves visibility
        batch-at-a-time against the one snapshot.  With it off, the
        original per-row loop runs.  Both arms preserve the same
        pairwise guarantee and keyset re-probe semantics (commentary in
        :meth:`_scan_per_row`).
        """
        self._check_op(txn)
        table = self.table(table_name)
        self._ensure_snapshot(txn)
        self.stats.inc("scans")
        if self.config.scan_kernel:
            results, seen = self._scan_chunked(txn, table, table_name, lo, hi)
        else:
            results, seen = self._scan_per_row(txn, table, table_name, lo, hi)
        # Own uncommitted writes overlay the scan result.
        results = self._overlay_write_set(txn, table_name, lo, hi, results)
        if self.history is not None and txn.read_ts is not None:
            self.history.on_scan(
                txn.id, table_name, (lo, hi), tuple(seen), txn.read_ts
            )
        if reverse:
            results = list(reversed(results))
        if limit is not None:
            results = results[:limit]
        return results

    def _scan_per_row(
        self,
        txn: Transaction,
        table,
        table_name: str,
        lo: Hashable | None,
        hi: Hashable | None,
    ) -> tuple[list[tuple[Hashable, Any]], list[Hashable]]:
        """The pre-kernel scan path (``config.scan_kernel=False``): one
        table-latch hold materialises the whole range, then rows are
        locked and resolved one at a time.  Kept verbatim as the honest
        benchmark baseline and a behavioural reference for the kernel.
        """
        read_mode = txn.policy.read_lock_mode(txn)
        keyset_before = table.keyset_version
        chains = table.scan_chains(lo, hi)
        if read_mode is not None:
            # The whole predicate's read locks — each row's gap + record,
            # plus the boundary gap beyond the range so inserts just past
            # it (or into an empty range) are detected — are acquired in
            # one lock-manager batch: one stripe latch per stripe touched
            # instead of two latch pairs per row.  Locks land *before*
            # any row is resolved, which only strengthens the pairwise
            # guarantee: a writer arriving after this point sees them
            # and reports the edge itself.  Contended SHARED resources
            # come back deferred and go through the normal blocking path.
            #
            # One window remains after materialisation and before the
            # batch lands: a writer whose entire lock lifetime (acquire,
            # commit, finalize-release) fits inside it leaves no lock for
            # the batch acquire to collide with, and its new key is
            # absent from the stale materialised list — the rw edge (or,
            # under S2PL, the row itself) would be silently lost.  So
            # after each batch the table's key-set version (bumped under
            # the table latch on every chain add/remove, sampled before
            # materialisation) is re-probed, and only if it moved is the
            # key set re-materialised and any fresh keys (plus a moved
            # boundary) locked in another round.  The common
            # uncontended scan pays one latch-free int probe, never a
            # second tree walk.  The loop converges: the locks already
            # placed make the window one-shot per key, and
            # ``requested`` only grows.
            cache = (
                txn._siread_cache
                if read_mode is LockMode.SIREAD
                else None
            )
            requested: set = set()
            while True:
                wanted: list = []
                covered: list = []
                for key, _chain in chains:
                    for resource in (
                        self._gap_resource_for(table_name, key),
                        self._rec_resource(table_name, key),
                    ):
                        if resource in requested:
                            continue
                        requested.add(resource)
                        if cache is not None:
                            if resource in cache:
                                continue
                            cache.add(resource)
                            if self._covered_by_coarse(
                                txn, table_name, resource
                            ):
                                # An escalated sentinel of our own covers
                                # this unit: skip the fine acquire, keep
                                # the reader-side detection probe below.
                                covered.append(resource)
                                continue
                        wanted.append(resource)
                boundary = table.successor(hi) if hi is not None else SUPREMUM
                resource = self._gap_resource_for(table_name, boundary)
                if resource not in requested:
                    requested.add(resource)
                    if cache is None or resource not in cache:
                        if cache is not None:
                            cache.add(resource)
                        if cache is not None and self._covered_by_coarse(
                            txn, table_name, resource
                        ):
                            covered.append(resource)
                        else:
                            wanted.append(resource)
                if covered:
                    for resource in covered:
                        for lock in self.locks.probe_detection(
                            txn, resource, read_mode
                        ):
                            self.dispatch_rw_edge(reader=txn, writer=lock.owner)
                if not wanted:
                    # Every resource the current key set needs was
                    # requested before the last materialisation, so any
                    # committed insert since would have collided with a
                    # lock already in the table.
                    break
                conflicts, deferred = self.locks.acquire_read_batch(
                    txn, wanted, read_mode
                )
                for lock in conflicts:
                    self.dispatch_rw_edge(reader=txn, writer=lock.owner)
                for resource in deferred:
                    result = self._acquire(txn, resource, read_mode)
                    for lock in result.detection_conflicts:
                        self.dispatch_rw_edge(reader=txn, writer=lock.owner)
                keyset_now = table.keyset_version
                if keyset_now == keyset_before:
                    # Key set unchanged since before materialisation: a
                    # writer still mid-flight will collide with the locks
                    # now in the table and report its own edge.
                    break
                keyset_before = keyset_now
                chains = table.scan_chains(lo, hi)
            if (
                read_mode is LockMode.SIREAD
                and self.config.siread_budget is not None
            ):
                # The batch above may have pushed the lock table past its
                # budget; escalate with no latch held, before row
                # resolution.
                self._escalate_sireads()
        results: list[tuple[Hashable, Any]] = []
        seen: list[Hashable] = []
        deferred_reads: list | None = [] if txn.policy.tracks_reads else None
        for key, chain in chains:
            value, found = self._visible_value(
                txn, table_name, key, chain, count=False,
                deferred=deferred_reads,
            )
            if found:
                results.append((key, value))
                seen.append(key)
        if chains:
            self.stats.inc("reads", len(chains))
        if deferred_reads:
            # Replay the per-row conflict detection under one tracker
            # section (the SIREAD sentinels are already in the table, so
            # any writer arriving since row resolution reported its edge
            # from the write side).
            with self._tracker_latch:
                on_read = txn.policy.on_read
                for key, chain, version in deferred_reads:
                    on_read(txn, table_name, key, chain, version)
        return results, seen

    def _materialize_chunks(
        self, table, lo: Hashable | None, hi: Hashable | None
    ) -> list:
        """Materialise [lo, hi] through the chunked walk — the table
        latch is held per chunk, not across the whole range."""
        chunk_size = self.config.scan_chunk_size or None
        return [
            pair
            for chunk in table.scan_chunks(lo, hi, chunk_size)
            for pair in chunk
        ]

    def _scan_chunked(
        self,
        txn: Transaction,
        table,
        table_name: str,
        lo: Hashable | None,
        hi: Hashable | None,
    ) -> tuple[list[tuple[Hashable, Any]], list[Hashable]]:
        """The chunked scan kernel: latch-bounded materialisation, one
        batched lock round per key-set generation, batch visibility
        resolution.  Wide SSI scans switch to up-front page-granularity
        SIREADs (:meth:`_scan_lock_pages`)."""
        read_mode = txn.policy.read_lock_mode(txn)
        keyset_before = table.keyset_version
        chains = self._materialize_chunks(table, lo, hi)
        if read_mode is not None:
            threshold = self.config.scan_page_lock_threshold
            if (
                read_mode is LockMode.SIREAD
                and threshold is not None
                and self.config.granularity is LockGranularity.RECORD
                and len(chains) >= threshold
            ):
                chains = self._scan_lock_pages(
                    txn, table, table_name, lo, hi, chains, keyset_before
                )
            else:
                chains = self._scan_lock_records(
                    txn, table, table_name, lo, hi, chains, keyset_before,
                    read_mode,
                )
            if (
                read_mode is LockMode.SIREAD
                and self.config.siread_budget is not None
            ):
                self._escalate_sireads()
        return self._resolve_scan_rows(txn, table_name, chains)

    def _scan_lock_records(
        self,
        txn: Transaction,
        table,
        table_name: str,
        lo: Hashable | None,
        hi: Hashable | None,
        chains: list,
        keyset_before: int,
        read_mode: LockMode,
    ) -> list:
        """Record-granularity lock rounds of the chunked kernel.

        Same protocol and convergence argument as :meth:`_scan_per_row`
        (locks land before resolution; the key-set version is re-probed
        after each batch; ``requested`` only grows), with the per-row
        overheads hoisted: the granularity branch is taken once, RECORD
        resources are built as plain tuples with no table-latch traffic,
        and covered resources are probed through one stripe-grouped
        batch instead of one latch acquisition each."""
        lm = self.locks
        cache = txn._siread_cache if read_mode is LockMode.SIREAD else None
        page_locked = self.config.granularity is LockGranularity.PAGE
        requested: set = set()
        while True:
            candidates: list = []
            if page_locked:
                leaf_page_of = table.leaf_page_of
                for key, _chain in chains:
                    candidates.append(
                        page_resource(table_name, leaf_page_of(key))
                    )
                boundary = table.successor(hi) if hi is not None else SUPREMUM
                candidates.append(
                    page_resource(table_name, leaf_page_of(boundary))
                )
            else:
                for key, _chain in chains:
                    candidates.append(gap_resource(table_name, key))
                    candidates.append(record_resource(table_name, key))
                boundary = table.successor(hi) if hi is not None else SUPREMUM
                candidates.append(gap_resource(table_name, boundary))
            wanted: list = []
            covered: list = []
            for resource in candidates:
                if resource in requested:
                    continue
                requested.add(resource)
                if cache is not None:
                    if resource in cache:
                        continue
                    cache.add(resource)
                    if self._covered_by_coarse(txn, table_name, resource):
                        covered.append(resource)
                        continue
                wanted.append(resource)
            if covered:
                for lock in lm.probe_detection_batch(
                    txn, covered, read_mode
                ):
                    self.dispatch_rw_edge(reader=txn, writer=lock.owner)
            if not wanted:
                break
            conflicts, deferred = lm.acquire_read_batch(
                txn, wanted, read_mode
            )
            for lock in conflicts:
                self.dispatch_rw_edge(reader=txn, writer=lock.owner)
            for resource in deferred:
                result = self._acquire(txn, resource, read_mode)
                for lock in result.detection_conflicts:
                    self.dispatch_rw_edge(reader=txn, writer=lock.owner)
            keyset_now = table.keyset_version
            if keyset_now == keyset_before:
                break
            keyset_before = keyset_now
            chains = self._materialize_chunks(table, lo, hi)
        return chains

    def _scan_lock_pages(
        self,
        txn: Transaction,
        table,
        table_name: str,
        lo: Hashable | None,
        hi: Hashable | None,
        chains: list,
        keyset_before: int,
    ) -> list:
        """Page-granularity SIREADs for a wide SSI scan: one coarse lock
        per covered leaf page instead of a record+gap pair per row, so
        peak lock-table growth is bounded by scan_width / page_size.

        Soundness.  Write side: every leaf from leaf(lo) through the
        leaf holding successor(hi) is covered (:meth:`Table.leaf_pages`)
        — key routing is monotone, so any insert into [lo, hi] or the
        boundary gap lands on a covered leaf, where the writer's coarse
        probe (:meth:`_probe_coarse_sireads`, gated on the weight entry
        :meth:`LockManager.acquire_coarse_sireads` installs before
        granting) reports the rw edge the fine sentinels would have;
        leaf splits replicate the page lock (inherit_siread_locks).
        Read side: a page SIREAD does not collide with a *record*
        EXCLUSIVE at the manager level, so the Fig 3.4 probe against
        already-granted fine writer locks is still owed — each round
        batch-probes the rec+gap resources of the materialised rows
        plus the boundary gap.  A writer fully released inside the
        materialise->lock window is caught exactly as in the record
        path: the key-set re-probe re-materialises, and the snapshot's
        newer-version check in on_read marks committed writers (which
        stay registry-findable).  Convergence mirrors the record path:
        ``requested``/``probed`` only grow, so each extra round needs a
        key-set move plus a fresh resource.
        """
        lm = self.locks
        cache = txn._siread_cache
        coarse = txn.coarse_sireads
        requested_pages: set = set()
        probed: set = set()
        while True:
            wanted_pages: list = []
            for page in table.leaf_pages(lo, hi):
                resource = page_resource(table_name, page)
                if resource in requested_pages:
                    continue
                requested_pages.add(resource)
                if resource in coarse:
                    continue
                wanted_pages.append(resource)
            probe: list = []
            for key, _chain in chains:
                for resource in (
                    gap_resource(table_name, key),
                    record_resource(table_name, key),
                ):
                    if resource in probed:
                        continue
                    probed.add(resource)
                    probe.append(resource)
            boundary = table.successor(hi) if hi is not None else SUPREMUM
            resource = gap_resource(table_name, boundary)
            if resource not in probed:
                probed.add(resource)
                probe.append(resource)
            if wanted_pages:
                for lock in lm.acquire_coarse_sireads(txn, wanted_pages):
                    self.dispatch_rw_edge(reader=txn, writer=lock.owner)
                coarse.update(wanted_pages)
                cache.update(wanted_pages)
            if probe:
                for lock in lm.probe_detection_batch(
                    txn, probe, LockMode.SIREAD
                ):
                    self.dispatch_rw_edge(reader=txn, writer=lock.owner)
            if not wanted_pages and not probe:
                break
            keyset_now = table.keyset_version
            if keyset_now == keyset_before:
                break
            keyset_before = keyset_now
            chains = self._materialize_chunks(table, lo, hi)
        return chains

    def _resolve_scan_rows(
        self, txn: Transaction, table_name: str, chains: list
    ) -> tuple[list[tuple[Hashable, Any]], list[Hashable]]:
        """Batch visibility resolution for a materialised scan.

        One pass with the per-row branches of :meth:`_visible_value`
        hoisted out of the loop: the policy flags, write-set presence,
        history handle and snapshot read_ts are read once, and the
        snapshot's ts-array tail check is inlined (the one-slot memo is
        useless on a scan — every chain is distinct).  Semantics are
        identical to the per-row path: own uncommitted writes
        short-circuit before any detection or history (a tombstone
        skips the row entirely), every other row records its read and
        feeds conflict detection, and the collected (key, chain,
        version) triples replay through on_read under a single
        tracker-latch section."""
        results: list[tuple[Hashable, Any]] = []
        seen: list[Hashable] = []
        policy = txn.policy
        tracks_reads = policy.tracks_reads
        uses_snapshots = policy.uses_snapshots
        write_set = txn.write_set
        history = self.history
        txn_id = txn.id
        deferred: list = [] if tracks_reads else None
        if uses_snapshots:
            read_ts = txn.snapshot.read_ts
        for key, chain in chains:
            if write_set:
                own = write_set.get((table_name, key), _MISSING)
                if own is not _MISSING:
                    if own is not TOMBSTONE:
                        results.append((key, own))
                        seen.append(key)
                    continue
            if uses_snapshots:
                # Inlined tail fast path of Snapshot.visible (latch-free
                # read of the chain's (versions, ts) tuple).
                versions, stamps = chain._data
                length = len(stamps)
                if length and stamps[length - 1] <= read_ts:
                    version = versions[length - 1]
                else:
                    version = chain.visible(read_ts)
            else:
                version = chain.latest()
            if tracks_reads:
                deferred.append((key, chain, version))
            if history is not None:
                history.on_read(
                    txn_id, table_name, key,
                    version.commit_ts if version else None,
                )
            if version is not None and not version.is_tombstone:
                results.append((key, version.value))
                seen.append(key)
        if chains:
            self.stats.inc("reads", len(chains))
        if deferred:
            # Same single tracker-latch replay as the per-row path.
            with self._tracker_latch:
                on_read = policy.on_read
                for key, chain, version in deferred:
                    on_read(txn, table_name, key, chain, version)
        return results, seen

    def scan_prefix(
        self,
        txn: Transaction,
        table_name: str,
        lo: Hashable | None = None,
        hi: Hashable | None = None,
        limit: int | None = None,
    ) -> list[tuple[Hashable, Any]]:
        """Early-terminating prefix scan: the first ``limit`` visible
        rows of [lo, hi] in ascending key order, locking only the
        visited prefix instead of the whole range.

        Sound because the result of this weaker predicate depends only
        on keys up to the cut point: for visited keys k_1..k_n (visible
        or not; k_n is where the limit was reached) the acquired gap
        locks gap(k_i) cover every insertion interval (pred, k_i], so a
        concurrent insert at or below the cut — the only kind that can
        change "the first N visible rows" — collides with a lock and
        reports the rw edge (Fig 3.6/3.7).  Inserts past the cut cannot
        change the answer and need no protection; when the range is
        exhausted before the limit the scan degenerates to a full range
        scan and the boundary gap beyond [lo, hi] is locked as usual.

        Falls back to a full :meth:`scan` when ``limit`` is None or the
        transaction has own pending writes inside [lo, hi] (own-write
        overlay can shift the cut in both directions).
        """
        if limit is None:
            return self.scan(txn, table_name, lo, hi)
        self._check_op(txn)
        table = self.table(table_name)
        self._ensure_snapshot(txn)
        if self.config.granularity is LockGranularity.PAGE:
            # Page resources have no gap/record split to exploit; the
            # full scan's page coverage is already prefix-proportional.
            return self.scan(txn, table_name, lo, hi, limit=limit)
        if any(
            tname == table_name
            and (lo is None or not key < lo)
            and (hi is None or not hi < key)
            for tname, key in txn.write_set
        ):
            return self.scan(txn, table_name, lo, hi, limit=limit)
        if limit <= 0:
            return []
        self.stats.inc("scans")
        read_mode = txn.policy.read_lock_mode(txn)
        chunk_size = self.config.scan_chunk_size or None
        lm = self.locks
        cache = (
            txn._siread_cache if read_mode is LockMode.SIREAD else None
        )
        uses_snapshots = txn.policy.uses_snapshots
        if uses_snapshots:
            snapshot = txn.snapshot
        requested: set = set()

        def lock_batch(resources: list) -> None:
            wanted: list = []
            covered: list = []
            for resource in resources:
                if resource in requested:
                    continue
                requested.add(resource)
                if cache is not None:
                    if resource in cache:
                        continue
                    cache.add(resource)
                    if self._covered_by_coarse(txn, table_name, resource):
                        covered.append(resource)
                        continue
                wanted.append(resource)
            if covered:
                for lock in lm.probe_detection_batch(
                    txn, covered, read_mode
                ):
                    self.dispatch_rw_edge(reader=txn, writer=lock.owner)
            if not wanted:
                return
            nonlocal locked_any
            locked_any = True
            conflicts, deferred = lm.acquire_read_batch(
                txn, wanted, read_mode
            )
            for lock in conflicts:
                self.dispatch_rw_edge(reader=txn, writer=lock.owner)
            for resource in deferred:
                result = self._acquire(txn, resource, read_mode)
                for lock in result.detection_conflicts:
                    self.dispatch_rw_edge(reader=txn, writer=lock.owner)

        # Re-walk rounds close the same materialise->lock window the
        # full scan's keyset re-probe closes: a round that saw the key
        # set move after it acquired something fresh walks again; a
        # round that locked nothing new proves every visited resource
        # was already in the table before the walk, so a mid-flight
        # writer must have collided with one.
        while True:
            keyset_before = table.keyset_version
            locked_any = False
            visited: list = []
            visible = 0
            cut_index = -1
            for chunk in table.scan_chunks(lo, hi, chunk_size):
                index = 0
                while index < len(chunk):
                    # Probe visibility first (side-effect-free), so only
                    # the rows up to the cut are ever locked — locking
                    # whole chunks would protect gaps past the cut and
                    # forfeit the early-termination win.
                    batch: list = []
                    while index < len(chunk):
                        key, chain = chunk[index]
                        index += 1
                        batch.append((key, chain))
                        if uses_snapshots:
                            version = snapshot.visible(chain)
                        else:
                            version = chain.latest()
                        if version is not None and not version.is_tombstone:
                            visible += 1
                            if visible >= limit:
                                break
                    if read_mode is not None:
                        resources: list = []
                        for key, _chain in batch:
                            resources.append(gap_resource(table_name, key))
                            resources.append(
                                record_resource(table_name, key)
                            )
                        lock_batch(resources)
                    visited.extend(batch)
                    if visible < limit:
                        continue
                    if uses_snapshots:
                        # Snapshot visibility is anchored at read_ts:
                        # the probe cannot go stale, the cut stands.
                        cut_index = len(visited) - 1
                        break
                    # latest()-reading policies (S2PL/SGT): a writer may
                    # have flipped a row's liveness between the
                    # latch-free probe and the lock.  Every visited row
                    # is locked now, so this recount is stable; on a
                    # shortfall keep walking (the extra locks are merely
                    # conservative).
                    visible = 0
                    for position, (_key, chain) in enumerate(visited):
                        version = chain.latest()
                        if version is not None and not version.is_tombstone:
                            visible += 1
                            if visible >= limit:
                                cut_index = position
                                break
                    if cut_index >= 0:
                        break
                if cut_index >= 0:
                    break
            if cut_index >= 0:
                del visited[cut_index + 1:]
                cut_key = visited[-1][0]
            else:
                cut_key = _MISSING
            if cut_key is _MISSING and read_mode is not None:
                boundary = (
                    table.successor(hi) if hi is not None else SUPREMUM
                )
                lock_batch([gap_resource(table_name, boundary)])
            if table.keyset_version == keyset_before or not locked_any:
                break
        results, seen = self._resolve_scan_rows(txn, table_name, visited)
        if self.history is not None and txn.read_ts is not None:
            span = (lo, hi if cut_key is _MISSING else cut_key)
            self.history.on_scan(
                txn.id, table_name, span, tuple(seen), txn.read_ts
            )
        return results

    # ------------------------------------------------------------- writing

    def write(self, txn: Transaction, table_name: str, key: Hashable, value: Any) -> None:
        """Fig 3.5's modified write: blind upsert of a single item."""
        self._check_op(txn)
        self._check_write(txn)
        self.table(table_name)  # validate early
        self._acquire_write_locks(txn, table_name, key, gap=False)
        self._ensure_snapshot(txn)
        self._first_committer_check(txn, table_name, key)
        if txn.policy.tracks_writes:
            with self._tracker_latch:
                txn.policy.on_write(txn, table_name, key)
        self._maintain_indexes(txn, table_name, key, value)
        txn.write_set[(table_name, key)] = value
        txn.write_kinds.setdefault((table_name, key), "write")
        self.stats.inc("writes")
        if self.history is not None:
            self.history.on_write(txn.id, table_name, key, kind="write")

    def insert(self, txn: Transaction, table_name: str, key: Hashable, value: Any) -> None:
        """Fig 3.7's insert: gap-locks next(key) against concurrent scans."""
        self._check_op(txn)
        self._check_write(txn)
        table = self.table(table_name)
        locked_succ = self._acquire_write_locks(txn, table_name, key, gap=True)
        self._ensure_snapshot(txn)
        self._first_committer_check(txn, table_name, key)
        value_now, exists = self._visible_value(
            txn, table_name, key, table.chain(key), record=False
        )
        del value_now
        if exists:
            raise DuplicateKeyError(table_name, key)
        if txn.policy.tracks_writes:
            with self._tracker_latch:
                txn.policy.on_write(txn, table_name, key)
        self._maintain_indexes(txn, table_name, key, value)
        page_mode = self.config.granularity is LockGranularity.PAGE
        touched_pages = self._install_key(
            txn, table, table_name, key, page_mode, locked_succ
        )
        if page_mode and touched_pages:
            self._lock_touched_pages(txn, table_name, touched_pages)
        txn.write_set[(table_name, key)] = value
        txn.write_kinds[(table_name, key)] = "insert"
        self.stats.inc("writes")
        if self.history is not None:
            self.history.on_write(txn.id, table_name, key, kind="insert")

    def _install_key(
        self,
        txn: Transaction,
        table: Table,
        table_name: str,
        key: Hashable,
        page_mode: bool,
        locked_succ: Hashable,
    ) -> list[int]:
        """Register ``key`` in the tree (with an empty, invisible chain)
        so gap structure and page layout reflect the insert.

        Next-key locking must target the key's *actual* successor at the
        moment the tree changes: a concurrent insert may have split our
        gap after :meth:`_acquire_write_locks` probed it, in which case
        the gap lock we hold covers the wrong (wider) interval and a
        scanner's SIREAD on the new sub-gap would go undetected.  The
        successor probe, tree insert and SIREAD inheritance are therefore
        one table-latched section, re-verified after any extra gap lock
        (which is acquired latch-free and may raise LockWaitRequired —
        the whole operation is idempotent and retried).
        """
        while True:
            with table.latch:
                succ = table.successor(key)
                if page_mode or succ == locked_succ:
                    _chain, touched_pages = table.ensure_chain(key)
                    if not page_mode and touched_pages:
                        # The insert split gap (prev, succ): scans covering
                        # the old gap must also cover the new sub-gap
                        # (prev, key) — *including the inserter's own*: its
                        # scan predicate still spans the sub-gap, and a
                        # concurrent insert landing there is a phantom it
                        # must detect (self rw edges are filtered at
                        # dispatch, so its own sentinel costs nothing).
                        self.locks.inherit_siread_locks(
                            gap_resource(table_name, succ),
                            gap_resource(table_name, key),
                        )
                        if (
                            len(touched_pages) > 1
                            and self.locks.has_escalated_locks()
                        ):
                            # A leaf split moved keys onto a fresh page:
                            # escalated page sentinels on the old leaf
                            # must cover the new sibling too, or writes
                            # landing there would miss their readers.
                            self.locks.inherit_siread_locks(
                                page_resource(table_name, touched_pages[0]),
                                page_resource(table_name, touched_pages[1]),
                            )
                    return touched_pages
            result = self._acquire(
                txn, gap_resource(table_name, succ), LockMode.INSERT_INTENTION
            )
            if result.detection_conflicts:
                with self._tracker_latch:
                    for lock in result.detection_conflicts:
                        txn.policy.on_write_conflict(writer=txn, reader=lock.owner)
            if (
                self.config.granularity is LockGranularity.RECORD
                and self.locks.has_escalated_locks()
            ):
                self._probe_coarse_sireads(txn, table_name, None)
            locked_succ = succ

    def delete(self, txn: Transaction, table_name: str, key: Hashable) -> None:
        """Fig 3.7's delete: installs a tombstone version at commit."""
        self._check_op(txn)
        self._check_write(txn)
        table = self.table(table_name)
        self._acquire_write_locks(txn, table_name, key, gap=True)
        self._ensure_snapshot(txn)
        self._first_committer_check(txn, table_name, key)
        _value, exists = self._visible_value(
            txn, table_name, key, table.chain(key), record=False
        )
        if not exists:
            raise KeyNotFoundError(table_name, key)
        if txn.policy.tracks_writes:
            with self._tracker_latch:
                txn.policy.on_write(txn, table_name, key)
        self._maintain_indexes(txn, table_name, key, None, deleting=True)
        txn.write_set[(table_name, key)] = TOMBSTONE
        txn.write_kinds[(table_name, key)] = "delete"
        self.stats.inc("writes")
        if self.history is not None:
            self.history.on_write(txn.id, table_name, key, kind="delete")

    # ------------------------------------------------------------ indexes

    def _maintain_indexes(
        self,
        txn: Transaction,
        table_name: str,
        key: Hashable,
        new_value: Any,
        deleting: bool = False,
    ) -> None:
        """Keep secondary indexes in step with a base-table mutation.

        Runs *before* the base write enters the transaction's write set,
        so the old row value is still observable.  Idempotent: an
        operation retried after a lock wait recomputes the same entries
        and skips work its first attempt already recorded.  Called with
        no latch held — the recursive delete/insert calls take their own.
        """
        definitions = self._indexes_by_table.get(table_name)
        if not definitions:
            return
        old_value, old_exists = self._visible_value(
            txn, table_name, key, self.table(table_name).chain(key), record=False
        )
        for definition in definitions:
            old_entry = (
                definition.entry_for(key, old_value) if old_exists else None
            )
            new_entry = (
                definition.entry_for(key, new_value) if not deleting else None
            )
            if old_entry == new_entry:
                continue
            if old_entry is not None:
                _v, entry_exists = self._visible_value(
                    txn, definition.name, old_entry,
                    self.table(definition.name).chain(old_entry), record=False,
                )
                if entry_exists:
                    self.delete(txn, definition.name, old_entry)
            if new_entry is not None:
                owner, entry_exists = self._visible_value(
                    txn, definition.name, new_entry,
                    self.table(definition.name).chain(new_entry), record=False,
                )
                if entry_exists:
                    if definition.unique and owner != key:
                        raise DuplicateKeyError(definition.name, new_entry)
                    continue  # retried op already inserted it
                self.insert(txn, definition.name, new_entry, key)

    def index_scan(
        self,
        txn: Transaction,
        index_name: str,
        lo: Hashable | None = None,
        hi: Hashable | None = None,
    ) -> list[tuple[Hashable, Hashable]]:
        """Phantom-safe range scan over an index: (index_key, primary_key)
        pairs for index keys in [lo, hi], in index order."""
        definition = self.index(index_name)
        if definition.unique:
            rows = self.scan(txn, index_name, lo, hi)
            return [(entry, pk) for entry, pk in rows]
        lo_bound = (lo,) if lo is not None else None
        hi_bound = (hi, SUPREMUM) if hi is not None else None
        rows = self.scan(txn, index_name, lo_bound, hi_bound)
        return [(entry[0], pk) for entry, pk in rows]

    def index_lookup(
        self, txn: Transaction, index_name: str, index_key: Hashable
    ) -> list[Hashable]:
        """Primary keys of rows whose index key equals ``index_key``."""
        return [pk for _entry, pk in self.index_scan(txn, index_name,
                                                     index_key, index_key)]

    # -------------------------------------------------------- maintenance

    def poll_waiters(self) -> None:
        """Called by blocked threads: runs the periodic deadlock sweep."""
        if self.config.deadlock_mode is DeadlockMode.PERIODIC:
            self.sweep_deadlocks()

    def cancel_lock_request(self, request: LockRequest) -> bool:
        """Time out one waiting lock request (Section 4.4's InnoDB-style
        lock wait timeout).  The waiting transaction is doomed and will
        abort when its executor observes the denial."""
        error = LockTimeoutError("lock wait timeout", txn_id=request.owner.id)
        cancelled = self.locks.cancel_request(request, error)
        if cancelled and request.owner.is_active:
            request.owner.doom_error = request.owner.doom_error or error
        return cancelled

    def sweep_deadlocks(self) -> list[Transaction]:
        """One periodic deadlock-detection pass; aborts one victim per
        cycle by dooming it (the victim aborts at its next step)."""
        victims = self.locks.find_deadlock_victims(
            self.deadlock_detector.victim_policy
        )
        for victim in victims:
            if self.trace is not None:
                self.trace.emit(EventType.VICTIM, victim.id, cause="deadlock")
            self.doom(victim, DeadlockError("deadlock victim", txn_id=victim.id))
        return victims

    def cleanup_suspended(self) -> int:
        """Drop suspended committed transactions no active transaction
        overlaps (Sections 4.3.1/4.6.1).  Returns how many were cleaned."""
        # One txn+tracker section for the whole sweep (ranks 10 then 20;
        # drop_siread_locks nests lock-manager latches below them) — the
        # per-entry latch churn of acquiring the tracker twice per
        # suspended transaction dominated eager-cleanup commits.
        with self._txn_latch, self._tracker_latch:
            horizon = self._oldest_active_read_ts()
            kept: list[Transaction] = []
            cleaned = 0
            for txn in self._suspended:
                removable = (
                    txn.commit_ts is not None
                    and txn.commit_ts <= horizon
                    and txn.policy.may_cleanup(txn)
                )
                if removable:
                    self.locks.drop_siread_locks(txn)
                    self._retire(txn)
                    self._registry.pop(txn.id, None)
                    txn.suspended = False
                    cleaned += 1
                    retention = self.clock.now() - txn.commit_ts
                    self._h_siread_retention.observe(retention)
                    if self.trace is not None:
                        self.trace.emit(
                            EventType.CLEANUP, txn.id, retention=retention
                        )
                else:
                    kept.append(txn)
            self._suspended = kept
            self.stats["cleaned"] += cleaned
            if self._retired_writers:
                keep_writers: list[Transaction] = []
                for txn in self._retired_writers:
                    if txn.commit_ts is not None and txn.commit_ts <= horizon:
                        self._retire(txn)
                        self._registry.pop(txn.id, None)
                    else:
                        keep_writers.append(txn)
                self._retired_writers = keep_writers
            return cleaned

    def vacuum(self) -> int:
        """Garbage-collect versions below every active snapshot.

        Runs incrementally (``config.vacuum_chunk_size`` chains per
        table-latch hold) so concurrent scans are not stalled behind a
        full-table pass; each latch drop counts a ``vacuum_pause_events``.
        """
        with self._txn_latch:
            horizon = self._oldest_active_read_ts()
            tables = list(self._tables.values())
        if horizon == float("inf"):
            horizon = self.clock.now()
        # Safe outside the txn latch: the horizon only needs to be a lower
        # bound — any snapshot assigned after it is anchored at a clock
        # value >= every timestamp the prune may reclaim.
        chunk = self.config.vacuum_chunk_size or None
        on_pause = lambda: self.stats.inc("vacuum_pause_events")  # noqa: E731
        return sum(
            table.vacuum(int(horizon), chunk_size=chunk, on_pause=on_pause)
            for table in tables
        )

    def suspended_count(self) -> int:
        return len(self._suspended)

    def active_count(self) -> int:
        return len(self._active)

    def describe(self) -> dict:
        """Introspection snapshot: schema, version counts and the
        concurrency-control state the paper's Section 3.3 worries about
        (suspended transactions, retained locks)."""
        with self._txn_latch:
            return {
                "tables": {
                    name: {
                        "keys": len(table),
                        "versions": sum(
                            len(chain) for _key, chain in table.scan_chains(None, None)
                        ),
                    }
                    for name, table in self._tables.items()
                },
                "indexes": {
                    name: {"table": d.table, "unique": d.unique}
                    for name, d in self._indexes.items()
                },
                "active_transactions": len(self._active),
                "suspended_transactions": len(self._suspended),
                "lock_table_size": self.locks.table_size(),
                "clock": self.clock.now(),
                "stats": {
                    "commits": self.stats["commits"],
                    "aborts": dict(self.stats["aborts"]),
                },
            }

    # =================================================== internal helpers

    def _check_op(self, txn: Transaction) -> None:
        self._check_doom(txn)
        if not txn.is_active:
            raise TransactionStateError(f"transaction {txn.id} is {txn.status.value}")

    def _check_write(self, txn: Transaction) -> None:
        """Reject mutations on declared read-only transactions — the
        declaration is what lets the safe-snapshot machinery trust that
        the transaction can only ever be the T_in of a dangerous
        structure."""
        if txn.read_only:
            raise TransactionStateError(
                f"transaction {txn.id} is read-only"
            )

    def _check_doom(self, txn: Transaction) -> None:
        """A doomed transaction aborts at its next operation (Section 3.2's
        'the conflicting transaction must abort instead')."""
        if txn.doom_error is not None and txn.is_active:
            error = txn.doom_error
            self._abort_internal(txn, error.reason)
            raise error

    def _assign_snapshot(self, txn: Transaction) -> None:
        # Under the commit latch: prepare_commit installs versions while
        # holding it, so a snapshot is anchored either before a commit's
        # timestamp was drawn (and never sees its versions) or after all
        # its versions are in place — never halfway.
        with self._commit_latch:
            txn.snapshot = Snapshot(self.clock.now())
        monitor = self.safe_snapshots
        if (
            monitor is not None
            and txn.read_only
            and isinstance(txn.policy, monitor.family)
        ):
            monitor.register(txn)
        if self.trace is not None:
            self.trace.emit(EventType.SNAPSHOT, txn.id, read_ts=txn.snapshot.read_ts)
        if self.history is not None:
            self.history.on_snapshot(txn.id, txn.snapshot.read_ts)

    def _ensure_snapshot(self, txn: Transaction) -> None:
        if txn.policy.uses_snapshots and txn.snapshot is None:
            self._assign_snapshot(txn)

    def _oldest_active_read_ts(self) -> float:
        """Caller holds the txn latch (iterates the active map)."""
        oldest = float("inf")
        for txn in self._active.values():
            if txn.read_ts is not None:
                oldest = min(oldest, txn.read_ts)
        return oldest

    def _maybe_cleanup(self) -> None:
        # Optimistic emptiness probe (atomic list reads): SI/S2PL commits
        # retain nothing, so their hot path pays no latch here.
        if not self._suspended and not self._retired_writers:
            return
        if self.config.eager_cleanup:
            self.cleanup_suspended()
        elif (
            len(self._suspended) + len(self._retired_writers)
            > self.config.cleanup_threshold
        ):
            self.cleanup_suspended()

    # --------------------------------------------------------- lock paths

    def _rec_resource(self, table_name: str, key: Hashable) -> Resource:
        if self.config.granularity is LockGranularity.PAGE:
            return page_resource(table_name, self.table(table_name).leaf_page_of(key))
        return record_resource(table_name, key)

    def _gap_resource_for(self, table_name: str, gap_key: Hashable) -> Resource:
        if self.config.granularity is LockGranularity.PAGE:
            return page_resource(table_name, self.table(table_name).leaf_page_of(gap_key))
        return gap_resource(table_name, gap_key)

    def _covered_by_coarse(
        self, txn: Transaction, table_name: str, resource: Resource
    ) -> bool:
        """Does an escalated page/table SIREAD of ``txn``'s own already
        cover ``resource``?  Gap resources are only subsumed by the table
        tier — a gap interval can span leaf boundaries, so page coverage
        cannot stand in for it."""
        coarse = txn.coarse_sireads
        if not coarse:
            return False
        if table_resource(table_name) in coarse:
            return True
        if resource.kind == "rec":
            page = self.table(table_name).leaf_page_of(resource.key)
            return page_resource(table_name, page) in coarse
        return False

    def _probe_coarse_sireads(
        self, txn: Transaction, table_name: str, key: Hashable | None
    ) -> None:
        """After a write-side lock grant under RECORD granularity, when
        any SIREAD escalation is live: the readers of this unit may now
        be represented only by coarse page/table sentinels — probe those
        and dispatch the same rw edges the fine acquire would have
        reported.  Probing *after* the EXCLUSIVE/II grant closes the race
        with an escalation completing in between: promotion grants coarse
        before removing fine, so the writer always sees one or the other.
        """
        lm = self.locks
        conflicts = list(
            lm.probe_detection(
                txn, table_resource(table_name), LockMode.EXCLUSIVE
            )
        )
        if key is not None:
            page = self.table(table_name).leaf_page_of(key)
            conflicts.extend(
                lm.probe_detection(
                    txn, page_resource(table_name, page), LockMode.EXCLUSIVE
                )
            )
        if conflicts:
            with self._tracker_latch:
                for lock in conflicts:
                    txn.policy.on_write_conflict(writer=txn, reader=lock.owner)

    def _escalate_sireads(self) -> None:
        """Bring the lock table back under ``siread_budget`` by promoting
        record SIREADs to coarser units (record -> page -> table, Ports &
        Grittner Section 4).  Called with no latch held, after read-lock
        acquisition grew the table.

        Victims are the busiest SIREAD holders.  The page tier groups a
        holder's record sentinels by leaf page; gap sentinels are only
        promoted by the table tier (a gap can span leaf boundaries, so a
        page lock derived from one endpoint would miss inserts landing on
        the neighbouring leaf — an unsound escalation, not merely a
        coarse one).  Escalation therefore only ever *adds* rw-edge
        false positives, never loses an antidependency."""
        budget = self.config.siread_budget
        lm = self.locks
        if budget is None or lm.table_size() <= budget:
            return
        if self.config.granularity is not LockGranularity.RECORD:
            return
        if not self._escalation_guard.acquire(blocking=False):
            return  # another thread is already escalating
        try:
            min_group = self.config.siread_escalation_min_group
            for owner in lm.siread_owners_by_count():
                if lm.table_size() <= budget:
                    return
                groups: dict[tuple[str, int], list[Resource]] = {}
                for resource in lm.siread_resources(owner, kinds=("rec",)):
                    table = self._tables.get(resource.table)
                    if table is None:
                        continue
                    page = table.leaf_page_of(resource.key)
                    groups.setdefault((resource.table, page), []).append(
                        resource
                    )
                for (table_name, page), fine in groups.items():
                    if len(fine) < min_group:
                        continue
                    coarse = page_resource(table_name, page)
                    if lm.promote_sireads(owner, fine, coarse):
                        owner.coarse_sireads.add(coarse)
                    if lm.table_size() <= budget:
                        return
                # Table tier: everything left — records below the page
                # threshold, gaps, and already-escalated page sentinels.
                by_table: dict[str, list[Resource]] = {}
                for resource in lm.siread_resources(
                    owner, kinds=("rec", "gap", "page")
                ):
                    by_table.setdefault(resource.table, []).append(resource)
                for table_name, fine in by_table.items():
                    coarse = table_resource(table_name)
                    if lm.promote_sireads(owner, fine, coarse):
                        owner.coarse_sireads.add(coarse)
                    if lm.table_size() <= budget:
                        return
        finally:
            self._escalation_guard.release()

    def _acquire(self, txn: Transaction, resource: Resource, mode: LockMode) -> AcquireResult:
        """Acquire or raise LockWaitRequired; resolves denied requests."""
        result = self.locks.acquire(txn, resource, mode)
        if result.status is AcquireStatus.GRANTED:
            return result
        request = result.request
        if request.state is RequestState.GRANTED:
            # Granted during immediate deadlock resolution of someone else.
            return self.locks.acquire(txn, resource, mode)
        if request.state is RequestState.DENIED:
            error = request.error or txn.doom_error or DeadlockError(txn_id=txn.id)
            self._abort_internal(txn, getattr(error, "reason", "aborted"))
            raise error
        raise LockWaitRequired(request)

    def _acquire_read_locks(
        self,
        txn: Transaction,
        table_name: str,
        key: Hashable,
        gap: bool,
        mode: LockMode | None = None,
    ) -> None:
        """Read-side locking for one key (record, plus its gap in scans).

        ``mode`` may be passed by callers that already asked the policy
        (the scan loop does, once per row)."""
        if mode is None:
            mode = txn.policy.read_lock_mode(txn)
            if mode is None:
                return
        if gap:
            self._acquire_gap_read_lock(txn, table_name, key, mode)
        resource = self._rec_resource(table_name, key)
        if mode is LockMode.SIREAD and resource in txn._siread_cache:
            # Repeat SIREAD on a re-read: the sentinel is already in the
            # table, and any writer that arrived since then saw it at its
            # own EXCLUSIVE acquire and dispatched the rw edge from the
            # writer side (Fig 3.5) — nothing left to do or report.
            return
        if mode is LockMode.SIREAD and self._covered_by_coarse(
            txn, table_name, resource
        ):
            # An escalated sentinel of our own already covers this unit:
            # writers see it via their coarse probes, so no fine lock is
            # added — but the reader-side Fig 3.4 check against granted
            # EXCLUSIVE holders must still run.
            txn._siread_cache.add(resource)
            for lock in self.locks.probe_detection(txn, resource, mode):
                self.dispatch_rw_edge(reader=txn, writer=lock.owner)
            return
        result = self._acquire(txn, resource, mode)
        if mode is LockMode.SIREAD:
            txn._siread_cache.add(resource)
        for lock in result.detection_conflicts:
            # Fig 3.4 lines 2-4: a concurrent writer holds EXCLUSIVE.
            # (SHARED requests report no detection conflicts, so this
            # loop is empty for lock-based readers.)
            self.dispatch_rw_edge(reader=txn, writer=lock.owner)
        if mode is LockMode.SIREAD and self.config.siread_budget is not None:
            self._escalate_sireads()

    def _acquire_gap_read_lock(
        self,
        txn: Transaction,
        table_name: str,
        gap_key: Hashable,
        mode: LockMode | None = None,
    ) -> None:
        """Fig 3.6 lines 2-4: SIREAD (or SHARED for S2PL) on a gap.

        ``mode`` may be passed by callers that already asked the policy
        (the scan path does, once per row)."""
        if mode is None:
            mode = txn.policy.read_lock_mode(txn)
            if mode is None:
                return
        resource = self._gap_resource_for(table_name, gap_key)
        if mode is LockMode.SIREAD and resource in txn._siread_cache:
            return  # repeat gap SIREAD — see _acquire_read_locks
        if mode is LockMode.SIREAD and self._covered_by_coarse(
            txn, table_name, resource
        ):
            txn._siread_cache.add(resource)
            for lock in self.locks.probe_detection(txn, resource, mode):
                self.dispatch_rw_edge(reader=txn, writer=lock.owner)
            return
        result = self._acquire(txn, resource, mode)
        if mode is LockMode.SIREAD:
            txn._siread_cache.add(resource)
        for lock in result.detection_conflicts:
            self.dispatch_rw_edge(reader=txn, writer=lock.owner)

    def _acquire_write_locks(
        self, txn: Transaction, table_name: str, key: Hashable, gap: bool
    ) -> Hashable | None:
        """Write-side locking: EXCLUSIVE record (+ gap for insert/delete).
        Returns the successor whose gap was locked (None without ``gap``).

        SSI detection (Fig 3.5/3.7): every SIREAD holder that has not
        committed, or committed after this transaction's snapshot, marks a
        rw-dependency holder -> txn.
        """
        # Fail fast on first-committer-wins before queueing behind the
        # lock: if a newer committed version already exists, waiting is
        # futile (Berkeley DB aborts on the dirty-page request, Section
        # 4.2; InnoDB behaves likewise once the read view exists).
        if txn.snapshot is not None:
            self._first_committer_check(txn, table_name, key)
        txn.locked_writes = True
        requests: list[tuple[Resource, LockMode]] = []
        succ = None
        if gap:
            succ = self.table(table_name).successor(key)
            # Record granularity uses insert-intention gap locks (two
            # inserts into one gap never block each other, Section 2.5.2);
            # page granularity locks the covering page exclusively, as
            # Berkeley DB does.
            gap_mode = (
                LockMode.EXCLUSIVE
                if self.config.granularity is LockGranularity.PAGE
                else LockMode.INSERT_INTENTION
            )
            requests.append((self._gap_resource_for(table_name, succ), gap_mode))
        requests.append((self._rec_resource(table_name, key), LockMode.EXCLUSIVE))
        for resource, mode in requests:
            result = self._acquire(txn, resource, mode)
            if result.detection_conflicts:
                # Fig 3.5/3.7: a SIREAD holder signals a potential rw
                # edge holder -> txn; the writer's policy applies its
                # concurrency filter (or drops the edge).
                with self._tracker_latch:
                    for lock in result.detection_conflicts:
                        txn.policy.on_write_conflict(writer=txn, reader=lock.owner)
        if (
            self.config.granularity is LockGranularity.RECORD
            and self.locks.has_escalated_locks()
        ):
            self._probe_coarse_sireads(txn, table_name, key)
        return succ

    def _lock_touched_pages(
        self, txn: Transaction, table_name: str, pages: list[int]
    ) -> None:
        """PAGE granularity: a split updates parent pages too — lock them,
        reproducing the root-page contention of Section 6.1.5."""
        txn.locked_writes = True
        for page_id in pages:
            result = self._acquire(txn, page_resource(table_name, page_id), LockMode.EXCLUSIVE)
            if result.detection_conflicts:
                with self._tracker_latch:
                    for lock in result.detection_conflicts:
                        txn.policy.on_write_conflict(writer=txn, reader=lock.owner)

    # ---------------------------------------------------------- conflicts

    def find_transaction(self, txn_id: int) -> Transaction | None:
        """The transaction with this id, if still findable (active or
        committed-suspended)."""
        return self._registry.get(txn_id)

    def dispatch_rw_edge(self, reader: Transaction, writer: Transaction) -> None:
        """Offer the rw-antidependency reader -> writer to the policies of
        both endpoints, higher ``edge_precedence`` first; the accepting
        policy records it (and applies its victim decision).  An edge
        neither endpoint can track — a mixed-level edge such as an SI
        query against SSI updaters, Section 3.8 — is counted and dropped.
        """
        if reader.id == writer.id:
            return
        with self._tracker_latch:
            if reader.is_aborted or writer.is_aborted:
                return
            if reader.doom_error is not None or writer.doom_error is not None:
                return
            first, second = reader.policy, writer.policy
            if second.edge_precedence > first.edge_precedence:
                first, second = second, first
            for policy in (first, second):
                if policy.handles_rw_edge(reader, writer):
                    policy.on_rw_edge(reader, writer)
                    return
            self.count_dropped_mixed_edge(reader=reader, writer=writer)

    def count_dropped_mixed_edge(
        self, reader: Transaction, writer: Transaction
    ) -> None:
        """Telemetry for rw edges no policy could record: without it,
        Section 3.8 mixed-workload runs silently lose their cross-level
        dependencies and cannot be audited."""
        if reader.id == writer.id:
            return
        with self._tracker_latch:
            self.stats["mixed_edges_dropped"] += 1
        if self.trace is not None:
            self.trace.emit(
                EventType.MIXED_EDGE, reader.id, peer=writer.id,
                reader_level=reader.isolation.value,
                writer_level=writer.isolation.value,
            )

    def _retire(self, txn: Transaction) -> None:
        """Tell every policy ``txn`` is leaving the system (cross-level
        edges mean one policy's bookkeeping can reference another level's
        transactions).  Caller holds the tracker latch."""
        for policy in self._retiring_policies:
            policy.on_transaction_retired(txn)

    def doom(self, victim: Transaction, error: TransactionAbortedError) -> None:
        """Mark a transaction for abort and wake it if it is blocked.

        Takes no engine latch: it is called from the immediate deadlock
        handler while lock-manager latches are held, and ``doom_error``
        is a single reference store the victim's own thread observes at
        its next operation."""
        if not victim.is_active or victim.doom_error is not None:
            return
        if victim.prepared:
            # Prepared-transaction-wins: a two-phase-commit participant
            # that voted yes cannot be unilaterally aborted — only its
            # coordinator decides.  (It also holds no waits to cancel:
            # prepared transactions run no further operations.)
            return
        victim.doom_error = error
        self.locks.cancel_waits(victim, error)

    def _on_deadlock(self, cycle: list[Transaction], request: LockRequest):
        """Immediate deadlock handler (InnoDB style)."""
        if self.config.deadlock_victim == "youngest":
            victim = max(cycle, key=lambda txn: txn.begin_seq)
        else:
            victim = request.owner
        if self.trace is not None:
            self.trace.emit(
                EventType.VICTIM, victim.id, cause="deadlock",
                policy=self.config.deadlock_victim,
                cycle=[txn.id for txn in cycle],
            )
        self.doom(victim, DeadlockError("deadlock victim", txn_id=victim.id))
        return victim

    # ------------------------------------------------------------- reads

    def _read_internal(
        self, txn: Transaction, table_name: str, key: Hashable, locking: bool
    ) -> tuple[Any, bool]:
        """Shared read path.  ``locking=True`` means the caller already
        acquired EXCLUSIVE (read_for_update)."""
        table = self.table(table_name)
        if not locking:
            self._acquire_read_locks(txn, table_name, key, gap=False)
        self._ensure_snapshot(txn)
        if locking and txn.policy.uses_snapshots:
            # Promotion semantics: a locking read of an item with a newer
            # committed version conflicts exactly like a write would.
            self._first_committer_check(txn, table_name, key)
        return self._visible_value(txn, table_name, key, table.chain(key))

    def _visible_value(
        self,
        txn: Transaction,
        table_name: str,
        key: Hashable,
        chain,
        record: bool = True,
        count: bool = True,
        deferred: list | None = None,
    ) -> tuple[Any, bool]:
        """Resolve what ``txn`` sees for key: own write set, then the
        snapshot (SI family) or the latest committed version (S2PL).
        The policy's ``on_read`` hook then runs its conflict detection
        (Fig 3.4 newer-version marking, SGT wr edges).  Chain reads are
        latch-free (see repro.mvcc.version).

        ``count=False`` and ``deferred`` are the scan loop's batching
        hooks: the scan counts its reads once and replays the collected
        ``(key, chain, version)`` triples through ``on_read`` under a
        single tracker-latch section instead of one per row."""
        if count:
            self.stats.inc("reads")
        if txn.write_set:  # read-only transactions skip the tuple build
            own = txn.write_set.get((table_name, key), _MISSING)
            if own is not _MISSING:
                if own is TOMBSTONE:
                    return None, False
                return own, True

        if chain is None:
            if record and self.history is not None:
                self.history.on_read(txn.id, table_name, key, None)
            return None, False

        if txn.policy.uses_snapshots:
            version = txn.snapshot.visible(chain)
        else:
            version = chain.latest()
        if txn.policy.tracks_reads:
            if deferred is not None:
                deferred.append((key, chain, version))
            else:
                with self._tracker_latch:
                    txn.policy.on_read(txn, table_name, key, chain, version)

        if record and self.history is not None:
            self.history.on_read(
                txn.id, table_name, key, version.commit_ts if version else None
            )
        if version is None or version.is_tombstone:
            return None, False
        return version.value, True

    def _overlay_write_set(
        self,
        txn: Transaction,
        table_name: str,
        lo: Hashable | None,
        hi: Hashable | None,
        results: list[tuple[Hashable, Any]],
    ) -> list[tuple[Hashable, Any]]:
        """Apply the transaction's own pending writes to a scan result."""
        own = {
            key: value
            for (tname, key), value in txn.write_set.items()
            if tname == table_name
            and (lo is None or not key < lo)
            and (hi is None or not hi < key)
        }
        if not own:
            return results
        merged = {key: value for key, value in results}
        for key, value in own.items():
            if value is TOMBSTONE:
                merged.pop(key, None)
            else:
                merged[key] = value
        return sorted(merged.items())

    def _first_committer_check(
        self, txn: Transaction, table_name: str, key: Hashable
    ) -> None:
        """First-committer-wins (Section 2.5): abort if a version newer
        than our snapshot exists.  S2PL transactions skip this — their
        SHARED locks give them current reads instead."""
        if not txn.policy.uses_snapshots or txn.snapshot is None:
            return
        table = self.table(table_name)
        conflicting = False
        if self.config.granularity is LockGranularity.PAGE:
            # Page-level versioning (Berkeley DB, Section 4.2): any commit
            # to the key's page after our snapshot is an update conflict,
            # even on a different row.
            page_ts = self._page_commit_ts.get(
                (table_name, table.leaf_page_of(key)), 0
            )
            conflicting = page_ts > txn.snapshot.read_ts
        if not conflicting:
            chain = table.chain(key)
            conflicting = chain is not None and chain.has_newer(
                txn.snapshot.read_ts
            )
        if conflicting:
            error = UpdateConflictError(
                f"concurrent update of {table_name}[{key!r}]", txn_id=txn.id
            )
            self._abort_internal(txn, error.reason)
            raise error

    # -------------------------------------------------------------- aborts

    def _abort_internal(self, txn: Transaction, reason: str) -> None:
        """Roll back.  Three phases: the abort decision and policy/tracker
        cleanup under the tracker latch; lock release and WAL I/O with no
        latch held; registry removal under the txn latch.

        Split into :meth:`_abort_tracker_phase` (decision, latched) and
        :meth:`_abort_release_phase` (I/O and teardown, unlatched) so the
        group-commit leader can take the decision for a failed batch
        member inside the batch's latched section — where later members
        must certify against it — and defer the release work until the
        batch latches drop (the release phase acquires the txn latch,
        which ranks *below* tracker/commit and may not be taken under
        them)."""
        bucket = self._abort_tracker_phase(txn, reason)
        if bucket is None:
            return
        self._abort_release_phase(txn, bucket)

    def _abort_tracker_phase(self, txn: Transaction, reason: str) -> str | None:
        """The abort decision: status flip, policy/tracker/monitor
        cleanup, abort accounting — one tracker-latch critical section.
        Returns the stats bucket, or None when the transaction already
        reached a terminal state (nothing to release)."""
        with self._tracker_latch:
            if not txn.is_active:
                return None
            txn.status = TransactionStatus.ABORTED
            self._prepared.discard(txn)
            txn.prepared = False
            txn.policy.on_abort(txn)
            if self.safe_snapshots is not None:
                self.safe_snapshots.on_abort(txn)
            self._retire(txn)
            bucket = reason if reason in self.stats["aborts"] else "aborted"
            self.stats["aborts"][bucket] += 1
            return bucket

    def _abort_release_phase(self, txn: Transaction, bucket: str) -> None:
        """Everything after the abort decision: WAL abort record, write
        buffer discard, lock release, registry removal, reporting.  Runs
        with no latch held on entry."""
        had_writes = bool(txn.write_set)
        if self.wal is not None and had_writes:
            self.wal.log_abort(txn.id)
        txn.write_set.clear()
        txn.write_kinds.clear()
        self.locks.release_all(txn, keep_siread=False)
        self.locks.cancel_waits(txn)
        with self._txn_latch:
            self._active.pop(txn.id, None)
            self._registry.pop(txn.id, None)
        if self.history is not None:
            self.history.on_abort(txn.id)
        if self.trace is not None:
            self.trace.emit(EventType.ABORT, txn.id, reason=bucket)


_MISSING = object()
