"""The transactional storage engine.

Public entry point::

    from repro import Database, IsolationLevel

    db = Database()
    db.create_table("accounts")
    txn = db.begin(IsolationLevel.SERIALIZABLE_SSI)
    txn.write("accounts", "alice", 100)
    txn.commit()

Transactions expose blocking operations (lock waits park the calling
thread); the discrete-event simulator uses the same engine through its
non-blocking primitives (:class:`~repro.errors.LockWaitRequired`).
"""

from repro.engine.config import EngineConfig, LockGranularity, DeadlockMode
from repro.engine.isolation import IsolationLevel
from repro.engine.database import Database
from repro.engine.transaction import Transaction, TransactionStatus

__all__ = [
    "Database",
    "Transaction",
    "TransactionStatus",
    "IsolationLevel",
    "EngineConfig",
    "LockGranularity",
    "DeadlockMode",
]
