"""Transactional secondary indexes.

A secondary index is an ordinary ordered table maintained automatically
by the engine inside the same transaction as the base-table write, so it
inherits the full concurrency-control treatment: index entries are
versioned, index range scans take SIREAD/SHARED gap locks (phantom-safe
predicate reads over the *index* order), and index maintenance writes
participate in first-committer-wins and dangerous-structure detection.

Two shapes:

* non-unique (default): entries are ``(index_key, primary_key) -> primary_key``
  — several rows may share an index key;
* unique: entries are ``index_key -> primary_key`` and inserting a
  duplicate raises :class:`~repro.errors.DuplicateKeyError`, giving
  transactional unique constraints.

This is the machinery TPC-C's customer-by-last-name lookup (paper
Section 2.8.1's ``C.WHERE`` clause) needs from a real engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable


#: extracts the index key from (primary_key, row_value)
KeyFunc = Callable[[Hashable, Any], Hashable]


@dataclass(frozen=True, slots=True)
class IndexDef:
    """Definition of one secondary index.

    Attributes:
        name: index name; also the name of its backing table.
        table: the indexed base table.
        key_func: maps (primary_key, row value) to the index key; rows
            mapping to ``None`` are excluded (partial index).
        unique: enforce at most one row per index key.
    """

    name: str
    table: str
    key_func: KeyFunc
    unique: bool = False

    def entry_for(self, primary_key: Hashable, value: Any) -> Hashable | None:
        """The backing-table key for a row, or None if excluded."""
        index_key = self.key_func(primary_key, value)
        if index_key is None:
            return None
        if self.unique:
            return index_key
        return (index_key, primary_key)
