"""Engine configuration.

The knobs correspond to design choices discussed in the paper and are the
subjects of the ablation benchmarks listed in DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LockGranularity(enum.Enum):
    """What a lock resource names.

    * ``RECORD`` — row-level locks plus explicit gap locks (the InnoDB
      prototype, Sections 4.4-4.6).
    * ``PAGE`` — locks map to B+-tree leaf pages (the Berkeley DB
      prototype, Sections 4.1-4.3).  Coarser: false sharing between rows
      on one page produces the false-positive aborts of Figure 6.4, and
      no separate gap locks are needed — page coverage subsumes phantom
      protection (Section 3.5's observation about Berkeley DB).
    """

    RECORD = "record"
    PAGE = "page"


class DeadlockMode(enum.Enum):
    """When lock-wait cycles are looked for.

    * ``IMMEDIATE`` — cycle check at enqueue time (InnoDB-style).
    * ``PERIODIC`` — only an external sweep detects deadlocks (the
      Berkeley DB ``db_perf`` configuration; the simulator runs the sweep
      on ``deadlock_interval`` of simulated time, reproducing the
      S2PL stalls of Section 6.1.3).
    """

    IMMEDIATE = "immediate"
    PERIODIC = "periodic"


@dataclass(slots=True)
class EngineConfig:
    """All engine tunables with the paper-faithful defaults.

    Attributes:
        granularity: lock/version granularity (see :class:`LockGranularity`).
        page_size: B+-tree node order; under PAGE granularity this sets
            contention (SmallBank experiments use small pages).
        precise_conflicts: True -> enhanced reference-based conflict
            tracker (Figs 3.9/3.10); False -> basic booleans (Fig 3.3).
        abort_early: abort a pivot at detection time rather than waiting
            for its commit (Section 3.7.1).
        siread_upgrade: drop a SIREAD lock when the same transaction
            acquires EXCLUSIVE on the item (Section 3.7.3).
        deferred_snapshot: allocate the read view only after the first
            statement's lock is granted (Section 4.5) — single-statement
            updates then never hit first-committer-wins.
        victim_policy: "pivot" | "youngest" | "oldest" (Section 3.7.2).
        deadlock_mode: see :class:`DeadlockMode`.
        deadlock_victim: "requester" | "youngest" for immediate mode.
        eager_cleanup: clean suspended committed transactions whenever the
            oldest active transaction commits (InnoDB-style, Section
            4.6.1); False defers cleanup until the suspended list exceeds
            ``cleanup_threshold`` (Berkeley DB-style, Section 4.3.1).
        cleanup_threshold: lazy-cleanup trigger size.
        record_history: feed every operation to a
            :class:`~repro.sgt.history.HistoryRecorder` for the oracle.
        wal_flush_on_commit: when a write-ahead log is attached, flush it
            inside prepare_commit — i.e. while locks are still held, the
            ordering the paper enforces in InnoDB (Section 4.4).  Off,
            commits are only durable up to the last explicit flush
            (matching the paper's "without flushing the log" runs).
        group_commit: route commits through the
            :class:`~repro.engine.groupcommit.CommitBatcher` — one
            leader certifies and installs a whole group of
            concurrently-arriving committers under a single
            tracker/commit latch acquisition and covers them with one
            WAL flush (PostgreSQL-style group commit; Ports & Grittner).
        group_commit_max: largest group one leader pass certifies.
        group_commit_wait_us: how long (microseconds) a leader holds the
            collect window open for more committers to arrive before
            running the batch; 0 batches only what has already queued.
    """

    granularity: LockGranularity = LockGranularity.RECORD
    page_size: int = 64
    precise_conflicts: bool = True
    abort_early: bool = True
    siread_upgrade: bool = True
    deferred_snapshot: bool = True
    victim_policy: str = "pivot"
    deadlock_mode: DeadlockMode = DeadlockMode.IMMEDIATE
    deadlock_victim: str = "requester"
    eager_cleanup: bool = True
    cleanup_threshold: int = 1024
    record_history: bool = False
    wal_flush_on_commit: bool = True
    #: abort a lock wait after this many seconds (None = wait forever);
    #: simulated seconds under the simulator, wall-clock for threads —
    #: InnoDB's innodb_lock_wait_timeout.
    lock_timeout: float | None = None
    #: lock-table budget for SIREAD state (None = unbounded, the paper's
    #: behaviour).  When the granted-lock count exceeds the budget, the
    #: engine escalates record SIREADs of the busiest holder to page,
    #: then table, granularity — the Ports & Grittner memory-bounding
    #: strategy.  Escalation may only introduce false-positive aborts,
    #: never miss an rw-antidependency.  RECORD granularity only.
    siread_budget: int | None = None
    #: minimum number of record SIREADs on one leaf page before the
    #: page tier replaces them with a single page SIREAD.
    siread_escalation_min_group: int = 2
    #: group commit (PR 9): batch concurrently-arriving committers
    #: through one leader-run certification pass and one WAL flush.
    group_commit: bool = False
    group_commit_max: int = 16
    group_commit_wait_us: int = 200
    #: scan execution kernel (PR 10): materialise range scans in
    #: leaf-page-sized chunks (table latch dropped between chunks),
    #: batch-resolve visibility against one snapshot, and build/acquire
    #: a chunk's lock resources in one stripe-grouped batch.  Off falls
    #: back to the per-row scan loop (the honest benchmark baseline).
    scan_kernel: bool = True
    #: rows per scan chunk; 0 uses the table's B+-tree page order.
    scan_chunk_size: int = 0
    #: SSI scans that materialise at least this many rows take
    #: page-granularity SIREADs on the covered leaf pages up front
    #: instead of one record+gap SIREAD per row (scan-aware granularity
    #: choice — bounds lock-table growth by scan width / page_size
    #: rather than scan width).  None disables the page path.  RECORD
    #: granularity only; detection stays sound because writers already
    #: probe coarse SIREADs and leaf splits inherit page locks.
    scan_page_lock_threshold: int | None = None
    #: chains examined per table-latch hold during vacuum; the latch is
    #: dropped between holds so reporting scans are not stalled behind a
    #: full-table GC pass (each drop counts a ``vacuum_pause_events``).
    #: 0 or None restores the single-hold full pass.
    vacuum_chunk_size: int | None = 256

    @classmethod
    def berkeleydb_style(cls, page_size: int = 8, **overrides) -> "EngineConfig":
        """The Berkeley DB prototype: page locks, basic tracker, lazy
        cleanup, periodic deadlock detection."""
        base = dict(
            granularity=LockGranularity.PAGE,
            page_size=page_size,
            precise_conflicts=False,
            deadlock_mode=DeadlockMode.PERIODIC,
            eager_cleanup=False,
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def innodb_style(cls, **overrides) -> "EngineConfig":
        """The InnoDB prototype: row+gap locks, enhanced tracker, eager
        cleanup, immediate deadlock detection (the defaults)."""
        return cls(**overrides)
