"""Transactions.

A :class:`Transaction` is a handle bound to one :class:`~repro.engine.database.Database`.
Its public methods block the calling thread on lock waits (suitable for
examples, tests and threaded clients); the discrete-event simulator uses
the database's non-blocking primitives directly instead.

Transaction state carries everything the Serializable SI algorithm needs
(Section 3.2/3.3): the conflict slots, the snapshot, the commit timestamp,
and the suspended-after-commit flag that keeps the transaction record (and
its SIREAD locks) alive until no concurrent transaction remains.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Hashable, Optional

from repro.engine.isolation import IsolationLevel
from repro.engine.waits import Completion
from repro.errors import (
    LockWaitRequired,
    TransactionAbortedError,
    TransactionStateError,
)
from repro.locking.manager import LockRequest, RequestState
from repro.mvcc.snapshot import Snapshot


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction; created via :meth:`Database.begin`."""

    __slots__ = (
        "_db",
        "id",
        "isolation",
        "policy",
        "begin_seq",
        "status",
        "snapshot",
        "commit_ts",
        "suspended",
        "in_conflict",
        "out_conflict",
        "doom_error",
        "write_set",
        "write_kinds",
        "locked_writes",
        "_siread_cache",
        "read_only",
        "snapshot_safe",
        "coarse_sireads",
        "_safe_event",
        "prepared",
        "global_id",
        "_commit_ticket",
    )

    def __init__(
        self,
        database,
        txn_id: int,
        isolation: IsolationLevel,
        begin_seq: int,
        policy=None,
    ):
        self._db = database
        self.id = txn_id
        self.isolation = isolation
        #: the CCPolicy implementing this transaction's isolation level;
        #: every discipline-specific engine decision dispatches through it.
        self.policy = (
            policy if policy is not None else database._policies[isolation]
        )
        #: monotonic begin order (used by victim/deadlock policies)
        self.begin_seq = begin_seq
        self.status = TransactionStatus.ACTIVE
        self.snapshot: Snapshot | None = None
        self.commit_ts: int | None = None
        #: True after commit while the record is retained for conflict
        #: detection (Section 3.3); cleaned up by the database later.
        self.suspended = False
        #: conflict slots managed by the tracker (bool or txn reference)
        self.in_conflict: Any = None
        self.out_conflict: Any = None
        #: pending abort requested by SSI/deadlock resolution ("doom")
        self.doom_error: TransactionAbortedError | None = None
        #: private uncommitted writes: (table, key) -> value or TOMBSTONE
        self.write_set: dict[tuple[str, Hashable], Any] = {}
        #: how each write-set entry came to be ("write"|"insert"|"delete")
        self.write_kinds: dict[tuple[str, Hashable], str] = {}
        #: True once any write-side lock path ran (EXCLUSIVE, insert
        #: intention, page locks) — a False lets a retaining read-only
        #: commit skip lock release entirely (its locks are all kept
        #: SIREAD sentinels).
        self.locked_writes = False
        #: resources this transaction already holds SIREAD on — the
        #: engine's re-read fast path checks here and skips the lock
        #: manager entirely for repeat SIREAD acquisition.
        self._siread_cache: set = set()
        #: declared read-only at begin(); writes raise
        #: TransactionStateError and the safe-snapshot monitor may mark
        #: the snapshot safe (Ports & Grittner Section 2.4).
        self.read_only = False
        #: None = not watched (read/write txn), False = watched but not
        #: yet proven safe, True = the snapshot can no longer join a
        #: dangerous structure — SIREADs dropped, detection skipped.
        self.snapshot_safe: bool | None = None
        #: coarse (page/table) SIREAD resources granted to this txn by
        #: escalation — the read path skips fine acquisition under them.
        self.coarse_sireads: set = set()
        #: completion the safe-snapshot monitor fires (via ``.set()``) to
        #: wake or reschedule a deferrable begin().
        self._safe_event: Completion | None = None
        #: True between prepare_for_commit() and the coordinator's
        #: commit/abort decision (two-phase commit participant state).
        #: A prepared transaction has passed local certification and
        #: can no longer be chosen as an SSI or deadlock victim — its
        #: fate belongs to the coordinator (prepared-transaction-wins).
        self.prepared = False
        #: coordinator-assigned global transaction id, or None for a
        #: purely local transaction.  Rendered into cross-shard conflict
        #: summaries so the coordinator can name conflict partners.
        self.global_id: int | None = None
        #: in-flight group-commit ticket (repro.engine.groupcommit);
        #: non-None between submission to a commit group and the
        #: consuming re-invocation of Database.commit, making that
        #: re-invocation idempotent after a session suspension.
        self._commit_ticket = None

    # ----------------------------------------------------------- state

    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    @property
    def is_committed(self) -> bool:
        return self.status is TransactionStatus.COMMITTED

    @property
    def is_aborted(self) -> bool:
        return self.status is TransactionStatus.ABORTED

    @property
    def read_ts(self) -> int | None:
        """The snapshot timestamp — the paper's begin(T) — or None if the
        snapshot has not been allocated yet (deferred, Section 4.5)."""
        return self.snapshot.read_ts if self.snapshot else None

    @property
    def begin_ts(self) -> int | None:
        """Alias used by victim policies: snapshot time, else begin order."""
        return self.read_ts if self.read_ts is not None else self.begin_seq

    def overlaps(self, other: "Transaction") -> bool:
        """Were self and other ever concurrent?  (Both snapshots known.)"""
        if self.read_ts is None or other.read_ts is None:
            return self.is_active and other.is_active
        self_end = self.commit_ts if self.commit_ts is not None else float("inf")
        other_end = other.commit_ts if other.commit_ts is not None else float("inf")
        return self.read_ts < other_end and other.read_ts < self_end

    # ----------------------------------------------------- blocking ops

    def read(self, table: str, key: Hashable) -> Any:
        """Read a key; raises KeyNotFoundError if not visible."""
        return self._run(lambda: self._db.read(self, table, key))

    def get(self, table: str, key: Hashable, default: Any = None) -> Any:
        """Read a key, returning ``default`` when not visible."""
        return self._run(lambda: self._db.get(self, table, key, default))

    def read_for_update(self, table: str, key: Hashable) -> Any:
        """Locking read (SELECT ... FOR UPDATE): the promotion primitive."""
        return self._run(lambda: self._db.read_for_update(self, table, key))

    def write(self, table: str, key: Hashable, value: Any) -> None:
        """Blind upsert of a key.  For phantom-safe creation of keys that
        might not exist, use :meth:`insert`."""
        self._run(lambda: self._db.write(self, table, key, value))

    def insert(self, table: str, key: Hashable, value: Any) -> None:
        self._run(lambda: self._db.insert(self, table, key, value))

    def delete(self, table: str, key: Hashable) -> None:
        self._run(lambda: self._db.delete(self, table, key))

    def scan(
        self,
        table: str,
        lo: Hashable | None = None,
        hi: Hashable | None = None,
        reverse: bool = False,
        limit: int | None = None,
    ) -> list[tuple[Hashable, Any]]:
        """Predicate read: all visible (key, value) with lo <= key <= hi,
        optionally descending and/or truncated after ordering."""
        return self._run(
            lambda: self._db.scan(self, table, lo, hi, reverse=reverse, limit=limit)
        )

    def scan_prefix(
        self,
        table: str,
        lo: Hashable | None = None,
        hi: Hashable | None = None,
        limit: int | None = None,
    ) -> list[tuple[Hashable, Any]]:
        """Early-terminating prefix read: the first ``limit`` visible
        rows of [lo, hi] ascending, locking only the visited prefix
        plus its boundary gap (see :meth:`Database.scan_prefix`)."""
        return self._run(
            lambda: self._db.scan_prefix(self, table, lo, hi, limit=limit)
        )

    def index_scan(
        self,
        index: str,
        lo: Hashable | None = None,
        hi: Hashable | None = None,
    ) -> list[tuple[Hashable, Hashable]]:
        """Range scan over a secondary index: (index_key, primary_key)."""
        return self._run(lambda: self._db.index_scan(self, index, lo, hi))

    def index_lookup(self, index: str, index_key: Hashable) -> list[Hashable]:
        """Primary keys matching one index key."""
        return self._run(lambda: self._db.index_lookup(self, index, index_key))

    def commit(self) -> None:
        self._run(lambda: self._db.commit(self))

    def abort(self) -> None:
        self._db.abort(self)

    # --------------------------------------------------- context manager

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.is_active:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False

    # ----------------------------------------------------------- helpers

    def _run(self, op):
        """Run an engine op, blocking through lock waits."""
        if not self.is_active:
            if self.doom_error is not None:
                raise type(self.doom_error)(str(self.doom_error), txn_id=self.id)
            raise TransactionStateError(f"transaction {self.id} is {self.status.value}")
        while True:
            try:
                return op()
            except LockWaitRequired as wait:
                self._block_on(wait.request)

    def _block_on(self, request: LockRequest) -> None:
        """Park this thread on a lock-request completion.

        A thin adapter over :meth:`LockRequest.on_resolve`: one
        ``threading.Event`` registered as the resolve callback, one
        wait.  ``LockRequest._resolve`` publishes the final state before
        firing callbacks, so the untimed wait is race-free.  Only two
        duties ever add a timeout: a configured ``lock_timeout`` (one
        timed wait to its deadline, then cancel) and PERIODIC deadlock
        detection, which must keep sweeping even when every client
        thread is blocked (Berkeley DB db_perf style) and is the sole
        remaining consumer of ``wait_poll_interval``.
        """
        import time

        from repro.engine.latches import assert_no_latches_held

        # Sleeping while holding any engine latch would stall every other
        # thread needing it; LockWaitRequired must fully unwind first.
        assert_no_latches_held("lock wait")
        db = self._db
        wait_started = time.monotonic()
        timeout = db.config.lock_timeout
        event = threading.Event()
        request.on_resolve(lambda _req: event.set())
        if db.needs_wait_polling:
            deadline = None if timeout is None else wait_started + timeout
            while not event.wait(timeout=db.wait_poll_interval):
                if deadline is not None and time.monotonic() >= deadline:
                    db.cancel_lock_request(request)
                    continue  # the denial resolves the request, sets event
                db.poll_waiters()
        elif timeout is not None:
            if not event.wait(timeout=timeout):
                # Either the cancel wins (resolving DENIED) or a racing
                # grant already did — both fire the event promptly.
                db.cancel_lock_request(request)
                event.wait()
        else:
            event.wait()
        # Threaded clients measure wall-clock lock waits; the simulator
        # feeds the same histogram in simulated seconds instead.
        db.metrics.histogram("lock_wait_time").observe(
            time.monotonic() - wait_started
        )
        if request.state is RequestState.DENIED:
            error = request.error or TransactionAbortedError(txn_id=self.id)
            db.abort(self)
            raise error

    def __repr__(self) -> str:
        return (
            f"Transaction(id={self.id}, {self.isolation.value}, "
            f"{self.status.value}, read_ts={self.read_ts})"
        )
