"""Versioned tables.

A :class:`Table` maps orderable primary keys to
:class:`~repro.mvcc.version.VersionChain` objects through a B+-tree, and
answers the successor queries that drive gap locking.  A key stays in the
tree while any version (including a tombstone) of it survives, so that
concurrent snapshots keep seeing their versions; garbage collection prunes
chains against the oldest active snapshot.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator

from repro.engine.latches import make_latch
from repro.mvcc.version import Version, VersionChain
from repro.storage.btree import SUPREMUM, BPlusTree


class Table:
    """A named, versioned, ordered key/value table.

    Every method is internally guarded by the table's latch (rank
    ``table`` in the engine hierarchy): B+-tree lookups race structurally
    with node splits, so even reads must exclude tree mutation.  The
    latch is re-entrant and public — the engine takes it around compound
    sections (successor probe + gap lock + chain creation on insert;
    the version-install loop at commit) so they are atomic against
    concurrent scans of the same table.

    Args:
        name: table name, used in lock resources and error messages.
        page_size: B+-tree node order; only meaningful for page-granularity
            locking, where it controls contention (smaller pages -> fewer
            keys per page -> fewer false conflicts).
    """

    def __init__(self, name: str, page_size: int = 64):
        self.name = name
        self._tree = BPlusTree(order=page_size)
        self.latch = make_latch(f"table[{name}]")
        #: Bumped (under the latch) whenever the *key set* changes — new
        #: chain added or vacuumed away.  Scans compare it across their
        #: materialise->lock window to decide whether a re-scan is owed;
        #: reading it is a GIL-atomic latch-free int probe.
        self.keyset_version = 0

    # ------------------------------------------------------------- chains

    def chain(self, key: Hashable) -> VersionChain | None:
        """The version chain for ``key``, or None if never written."""
        with self.latch:
            return self._tree.get(key)

    def ensure_chain(self, key: Hashable) -> tuple[VersionChain, list[int]]:
        """Get-or-create the chain for ``key``.

        Returns (chain, touched_page_ids); the page list is non-empty only
        when the key was newly added (page-granularity conflict modelling).
        """
        with self.latch:
            chain = self._tree.get(key)
            if chain is not None:
                return chain, []
            chain = VersionChain()
            touched = self._tree.insert(key, chain)
            self.keyset_version += 1
            return chain, touched

    def load(self, key: Hashable, value: Any) -> None:
        """Bulk-load initial data at timestamp 0 (visible to everyone)."""
        with self.latch:
            chain, _touched = self.ensure_chain(key)
            chain.install(Version(value=value, commit_ts=0, creator_id=0))

    # ------------------------------------------------------------ queries

    def successor(self, key: Hashable) -> Hashable:
        """The next key after ``key`` (SUPREMUM past the end) — the
        gap-lock target for reads/writes of ``key`` (Fig 3.6/3.7)."""
        with self.latch:
            return self._tree.successor(key)

    def first_key(self) -> Hashable:
        with self.latch:
            return self._tree.first_key()

    def scan_chains(
        self, lo: Hashable | None, hi: Hashable | None
    ) -> list[tuple[Hashable, VersionChain]]:
        """Materialised ordered scan of chains with keys in [lo, hi]."""
        with self.latch:
            return list(self._tree.range(lo, hi))

    def scan_chunks(
        self,
        lo: Hashable | None,
        hi: Hashable | None,
        chunk_size: int | None = None,
    ) -> Iterator[list[tuple[Hashable, VersionChain]]]:
        """Ordered scan of ``[lo, hi]`` in latch-bounded batches.

        Unlike :meth:`scan_chains`, the table latch is held only while one
        chunk (at most ``chunk_size`` pairs, default the tree's page
        order) is collected, then dropped before the chunk is yielded —
        writers and other scans proceed between chunks.  The walk resumes
        strictly after the previous chunk's last key, so:

        * a key present for the whole scan is yielded exactly once;
        * keys added/removed concurrently may or may not appear — the same
          contract a single-latch-hold materialisation gives a *snapshot*
          reader, because chains added mid-scan only carry versions newer
          than any snapshot taken before the scan, and vacuum only removes
          chains invisible to every active snapshot.
        """
        if chunk_size is None or chunk_size <= 0:
            chunk_size = self._tree.order
        cursor, include_lo = lo, True
        while True:
            chunk: list[tuple[Hashable, VersionChain]] = []
            with self.latch:
                for pair in self._tree.range(
                    cursor, hi, include_lo=include_lo
                ):
                    chunk.append(pair)
                    if len(chunk) >= chunk_size:
                        break
            if not chunk:
                return
            yield chunk
            if len(chunk) < chunk_size:
                return
            cursor, include_lo = chunk[-1][0], False

    def keys(self, chunk_size: int | None = None) -> Iterator[Hashable]:
        """Ordered key iterator in latch-bounded chunks (same resume-walk
        contract as :meth:`scan_chunks` — the latch is *not* held across
        the whole iteration)."""
        for chunk in self.scan_chunks(None, None, chunk_size):
            for key, _chain in chunk:
                yield key

    def leaf_page_of(self, key: Hashable) -> int:
        with self.latch:
            return self._tree.leaf_page_of(key)

    def leaf_pages(
        self, lo: Hashable | None, hi: Hashable | None
    ) -> list[int]:
        """Page ids covering ``[lo, hi]`` plus its boundary successor —
        the coarse-lock targets for a page-granularity scan."""
        with self.latch:
            return self._tree.leaf_pages(lo, hi)

    def root_page_id(self) -> int:
        return self._tree.root_page_id

    def __len__(self) -> int:
        with self.latch:
            return len(self._tree)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, keys={len(self)})"

    # ----------------------------------------------------------------- GC

    def vacuum(
        self,
        horizon_ts: int,
        chunk_size: int | None = None,
        on_pause: Any = None,
    ) -> int:
        """Prune versions invisible to every snapshot at or after
        ``horizon_ts``; drop keys whose chains become empty.

        With ``chunk_size`` set, at most that many chains are examined
        per latch hold and the latch is dropped between holds (resume
        walk, like :meth:`scan_chunks`) so concurrent scans are not
        stalled behind a full-table GC pass; ``on_pause`` is called at
        each drop (the engine counts them as ``vacuum_pause_events``).
        ``chunk_size=None`` keeps the legacy single-hold behaviour.

        Returns the number of versions removed.
        """
        removed = 0
        if chunk_size is None or chunk_size <= 0:
            with self.latch:
                dead_keys = []
                for key, chain in self._tree.items():
                    removed += chain.prune(horizon_ts)
                    if len(chain) == 0:
                        dead_keys.append(key)
                for key in dead_keys:
                    self._tree.delete(key)
                if dead_keys:
                    self.keyset_version += 1
            return removed
        cursor, include_lo = None, True
        while True:
            examined = 0
            last = None
            with self.latch:
                dead_keys = []
                for key, chain in self._tree.range(
                    cursor, None, include_lo=include_lo
                ):
                    examined += 1
                    last = key
                    removed += chain.prune(horizon_ts)
                    if len(chain) == 0:
                        dead_keys.append(key)
                    if examined >= chunk_size:
                        break
                for key in dead_keys:
                    self._tree.delete(key)
                if dead_keys:
                    self.keyset_version += 1
            if examined < chunk_size or last is None:
                return removed
            cursor, include_lo = last, False
            if on_pause is not None:
                on_pause()
