"""A B+-tree with stable page identities.

The tree serves two purposes:

* ordered key storage with successor queries — the basis of next-key /
  gap locking for phantom prevention (paper Sections 2.5.2 and 3.5); and
* a page structure, so the engine's Berkeley DB-style mode can lock and
  version *pages* instead of records (paper Chapter 4.1-4.3).  Every node
  has a stable integer id; operations report which pages they touched,
  including parents updated by splits — this is what makes root-page
  contention appear under page-level locking, the effect the paper blames
  for Serializable SI's false positives in Figure 6.4.

Keys must be mutually comparable within one tree.  :data:`SUPREMUM` is a
sentinel greater than every key, used as the gap-lock target beyond the
last key in a table (paper Section 2.5.2: "the special supremum key").

Deletion is lazy (keys are removed from leaves without rebalancing);
the engine only deletes keys during version garbage collection, so
under-full leaves are harmless here.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Any, Iterator


class _Supremum:
    """Sentinel ordered after every other key."""

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return False

    def __le__(self, other: object) -> bool:
        return other is SUPREMUM

    def __gt__(self, other: object) -> bool:
        return other is not SUPREMUM

    def __ge__(self, other: object) -> bool:
        return True

    def __repr__(self) -> str:
        return "<SUPREMUM>"


#: The key that sorts after every real key (gap lock target at table end).
SUPREMUM = _Supremum()


class _Node:
    __slots__ = ("page_id", "keys", "children", "values", "next_leaf")

    def __init__(self, page_id: int, leaf: bool):
        self.page_id = page_id
        self.keys: list[Any] = []
        self.children: list[_Node] | None = None if leaf else []
        self.values: list[Any] | None = [] if leaf else None
        self.next_leaf: _Node | None = None

    @property
    def is_leaf(self) -> bool:
        return self.values is not None


class BPlusTree:
    """An in-memory B+-tree mapping orderable keys to arbitrary values.

    Args:
        order: maximum number of keys per node (>= 4).  Smaller orders
            produce more pages and therefore more page-lock contention —
            the knob the SmallBank page-granularity experiments turn.
    """

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._page_ids = itertools.count(1)
        self._root: _Node = _Node(next(self._page_ids), leaf=True)
        self._size = 0

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: Any) -> bool:
        return self.get(key, default=_MISSING) is not _MISSING

    @property
    def root_page_id(self) -> int:
        return self._root.page_id

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def leaf_page_of(self, key: Any) -> int:
        """Page id of the leaf that contains (or would contain) ``key``."""
        return self._find_leaf(key).page_id

    def path_page_ids(self, key: Any) -> list[int]:
        """Page ids from root to the leaf for ``key`` (root first)."""
        pages = []
        node = self._root
        while True:
            pages.append(node.page_id)
            if node.is_leaf:
                return pages
            node = node.children[self._child_index(node, key)]

    def successor(self, key: Any) -> Any:
        """Smallest stored key strictly greater than ``key``, else SUPREMUM."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_right(leaf.keys, key)
        while leaf is not None:
            if index < len(leaf.keys):
                return leaf.keys[index]
            leaf = leaf.next_leaf
            index = 0
        return SUPREMUM

    def first_key(self) -> Any:
        """Smallest stored key, else SUPREMUM for an empty tree."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            if node.keys:
                return node.keys[0]
            node = node.next_leaf
        return SUPREMUM

    def items(self) -> Iterator[tuple[Any, Any]]:
        yield from self.range(None, None)

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def range(
        self,
        lo: Any,
        hi: Any,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) for keys in the interval [lo, hi].

        ``None`` bounds are open-ended.  The iterator walks the leaf chain;
        callers must not mutate the tree while iterating (the engine
        materialises scans before applying side effects).
        """
        if lo is None:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]
            leaf, index = node, 0
        else:
            leaf = self._find_leaf(lo)
            index = (
                bisect.bisect_left(leaf.keys, lo)
                if include_lo
                else bisect.bisect_right(leaf.keys, lo)
            )
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if hi is not None:
                    if include_hi and hi < key:
                        return
                    if not include_hi and not key < hi:
                        return
                yield key, leaf.values[index]
                index += 1
            leaf = leaf.next_leaf
            index = 0

    def leaf_pages(self, lo: Any, hi: Any) -> list[int]:
        """Page ids of every leaf that can host a key in ``[lo, hi]`` —
        including the leaf holding the interval's boundary successor.

        Used by the scan kernel's page-granularity SIREAD path: a coarse
        lock on each returned page covers every record and gap a
        record-granularity scan of the interval would lock, because key
        routing is monotone — any insert of ``k <= hi`` (or into the gap
        up to ``successor(hi)``) lands on one of these leaves.  Empty
        leaves (lazy deletes) are included: ``_child_index`` can still
        route new keys into them.
        """
        if lo is None:
            node = self._root
            while not node.is_leaf:
                node = node.children[0]
            leaf: _Node | None = node
        else:
            leaf = self._find_leaf(lo)
        pages: list[int] = []
        while leaf is not None:
            pages.append(leaf.page_id)
            # A key strictly greater than hi in this leaf means the
            # boundary successor lives here (or earlier) — stop.  A last
            # key == hi keeps walking: successor(hi) is in a later leaf.
            if hi is not None and leaf.keys and hi < leaf.keys[-1]:
                break
            leaf = leaf.next_leaf
        return pages

    # ------------------------------------------------------------ mutation

    def insert(self, key: Any, value: Any) -> list[int]:
        """Insert or overwrite ``key``.

        Returns the page ids modified: the leaf, plus every ancestor
        updated by split propagation (linking in a new page updates the
        parent — the paper notes "whenever a new page is inserted, some
        existing page is updated to link to the new page", Section 3.5).
        """
        path: list[_Node] = []
        node = self._root
        while not node.is_leaf:
            path.append(node)
            node = node.children[self._child_index(node, key)]

        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index] = value
            return [node.page_id]

        node.keys.insert(index, key)
        node.values.insert(index, value)
        self._size += 1
        touched = [node.page_id]

        child = node
        while len(child.keys) > self.order:
            sibling, separator = self._split(child)
            touched.append(sibling.page_id)
            if path:
                parent = path.pop()
                slot = self._child_index(parent, separator)
                parent.keys.insert(slot, separator)
                parent.children.insert(slot + 1, sibling)
                touched.append(parent.page_id)
                child = parent
            else:
                new_root = _Node(next(self._page_ids), leaf=False)
                new_root.keys = [separator]
                new_root.children = [child, sibling]
                self._root = new_root
                touched.append(new_root.page_id)
                break
        return touched

    def delete(self, key: Any) -> list[int]:
        """Remove ``key`` if present (lazy: no rebalancing).

        Returns the page ids modified ([] if the key was absent).
        """
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return []
        del leaf.keys[index]
        del leaf.values[index]
        self._size -= 1
        return [leaf.page_id]

    # ----------------------------------------------------------- internals

    @staticmethod
    def _child_index(node: _Node, key: Any) -> int:
        return bisect.bisect_right(node.keys, key)

    def _find_leaf(self, key: Any) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[self._child_index(node, key)]
        return node

    def _split(self, node: _Node) -> tuple[_Node, Any]:
        """Split an over-full node; return (new right sibling, separator)."""
        mid = len(node.keys) // 2
        sibling = _Node(next(self._page_ids), leaf=node.is_leaf)
        if node.is_leaf:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            del node.keys[mid:]
            del node.values[mid:]
            sibling.next_leaf = node.next_leaf
            node.next_leaf = sibling
        else:
            separator = node.keys[mid]
            sibling.keys = node.keys[mid + 1:]
            sibling.children = node.children[mid + 1:]
            del node.keys[mid:]
            del node.children[mid + 1:]
        return sibling, separator

    def check_invariants(self) -> None:
        """Structural sanity checks, used by the property-based tests."""
        def walk(node: _Node, lo: Any, hi: Any, depth: int) -> int:
            assert node.keys == sorted(node.keys), "keys unsorted"
            for key in node.keys:
                if lo is not None:
                    assert not key < lo, "key below subtree bound"
                if hi is not None:
                    assert key < hi or key == hi, "key above subtree bound"
            if node.is_leaf:
                assert len(node.keys) == len(node.values)
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [lo] + node.keys + [hi]
            for child, (clo, chi) in zip(
                node.children, zip(bounds[:-1], bounds[1:])
            ):
                depths.add(walk(child, clo, chi, depth + 1))
            assert len(depths) == 1, "unbalanced tree"
            return depths.pop()

        walk(self._root, None, None, 0)
        assert self._size == sum(1 for _ in self.items())


_MISSING = object()
