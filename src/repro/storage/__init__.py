"""Storage substrate: B+-tree index and versioned tables."""

from repro.storage.btree import SUPREMUM, BPlusTree
from repro.storage.table import Table

__all__ = ["BPlusTree", "SUPREMUM", "Table"]
