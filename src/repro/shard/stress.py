"""Sharded stress runner with the merged-MVSG oracle.

The sharded twin of :func:`repro.exec.stress.run_threaded_stress`:
client threads drive SmallBank programs through a
:class:`~repro.shard.coordinator.Coordinator`, mixing single-shard
programs (one customer — the partition map co-locates their rows) with
cross-shard Amalgamate transfers between customers on different shards
at a configurable ratio.  After the run, every shard is audited for
residual lock-table state and the per-shard histories are merged and
certified serializable (:mod:`repro.shard.audit`) — the oracle that
would catch a cross-shard dangerous structure slipping past 2PC
certification.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Generator

from repro.errors import TransactionAbortedError
from repro.shard.audit import CrossShardReport, check_merged_serializable
from repro.shard.coordinator import Coordinator
from repro.shard.partition import PartitionMap
from repro.sim.direct import run_program
from repro.workloads import smallbank

__all__ = ["ShardedStressResult", "run_sharded_stress"]


@dataclass(slots=True)
class ShardedStressResult:
    """Outcome of one sharded stress run, including both oracles."""

    shards: int
    threads: int
    txns: int
    commits: int
    aborts: int
    aborts_by_reason: dict
    #: transactions whose program was the cross-shard Amalgamate
    cross_shard_attempted: int
    wall_clock_s: float
    serializable: bool
    cycle: list
    #: per-shard residual-state audits (see LocalShard.audit)
    shard_audits: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def lock_tables_clean(self) -> bool:
        return all(
            audit["granted"] == 0 and audit["owners"] == 0
            and audit["waiters"] == 0 and audit["siread"] == 0
            and audit["prepared"] == 0
            for audit in self.shard_audits
        )

    @property
    def throughput(self) -> float:
        return self.commits / self.wall_clock_s if self.wall_clock_s > 0 else 0.0

    def describe(self) -> str:
        verdict = "serializable" if self.serializable else "NON-SERIALIZABLE"
        return (
            f"sharded x{self.shards} @{self.threads}thr: {self.commits} "
            f"commits / {self.aborts} aborts in {self.wall_clock_s:.2f}s "
            f"({verdict}, {'clean' if self.lock_tables_clean else 'DIRTY'} "
            f"lock tables)"
        )


def _single_shard_program(rng: random.Random,
                          customers: int) -> tuple[str, Generator]:
    """One-customer SmallBank program — single-shard under the aligned
    partition map."""
    name = smallbank.customer_name(rng.randrange(customers))
    amount = float(rng.randint(1, 100))
    choice = rng.randrange(4)
    if choice == 0:
        return "balance", smallbank.balance(name)
    if choice == 1:
        return "deposit_checking", smallbank.deposit_checking(name, amount)
    if choice == 2:
        return "transact_saving", smallbank.transact_saving(name, amount)
    return "write_check", smallbank.write_check(name, amount)


def _cross_shard_pair(rng: random.Random, customers: int,
                      pmap: PartitionMap) -> tuple[str, str]:
    for _ in range(64):
        a = rng.randrange(customers)
        b = rng.randrange(customers)
        if (pmap.shard_of(smallbank.SAVING, a)
                != pmap.shard_of(smallbank.SAVING, b)):
            return smallbank.customer_name(a), smallbank.customer_name(b)
    # Degenerate map (e.g. one shard): fall back to any pair.
    return (smallbank.customer_name(0),
            smallbank.customer_name(customers - 1))


def run_sharded_stress(
    coordinator: Coordinator,
    *,
    customers: int = 64,
    threads: int = 4,
    txns_per_thread: int = 40,
    cross_ratio: float = 0.25,
    seed: int = 20080501,
    level: str = "ssi",
    setup: bool = True,
    partition_map: PartitionMap | None = None,
) -> ShardedStressResult:
    """Drive a mixed single-/cross-shard SmallBank load and certify it.

    ``partition_map`` defaults to the coordinator's own map and is used
    to pick genuinely cross-shard Amalgamate pairs; it should be (or
    match) :func:`~repro.shard.partition.smallbank_partition_map` for
    the single-shard programs to actually stay single-shard.
    """
    pmap = partition_map or coordinator.partition_map
    if setup:
        smallbank.setup_smallbank(coordinator, customers)

    barrier = threading.Barrier(threads)
    tally = threading.Lock()
    totals = {"commits": 0, "aborts": 0, "cross": 0}
    aborts_by_reason: dict = {}
    failures: list[BaseException] = []

    def client(index: int) -> None:
        rng = random.Random(seed * 1000 + index)
        commits = aborts = cross = 0
        local_reasons: dict = {}
        barrier.wait()
        try:
            for _ in range(txns_per_thread):
                if rng.random() < cross_ratio:
                    cross += 1
                    name1, name2 = _cross_shard_pair(rng, customers, pmap)
                    program = smallbank.amalgamate(name1, name2)
                else:
                    _name, program = _single_shard_program(rng, customers)
                try:
                    run_program(coordinator, program, level)
                    commits += 1
                except TransactionAbortedError as error:
                    aborts += 1
                    reason = getattr(error, "reason", "aborted")
                    local_reasons[reason] = local_reasons.get(reason, 0) + 1
        except BaseException as error:  # engine bug, not a CC outcome
            with tally:
                failures.append(error)
        finally:
            with tally:
                totals["commits"] += commits
                totals["aborts"] += aborts
                totals["cross"] += cross
                for reason, count in local_reasons.items():
                    aborts_by_reason[reason] = (
                        aborts_by_reason.get(reason, 0) + count
                    )

    workers = [
        threading.Thread(target=client, args=(index,),
                         name=f"shard-stress-{index}")
        for index in range(threads)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - start
    if failures:
        raise failures[0]

    report: CrossShardReport = check_merged_serializable(
        coordinator.shard_histories()
    )
    return ShardedStressResult(
        shards=len(coordinator.backends),
        threads=threads,
        txns=threads * txns_per_thread,
        commits=totals["commits"],
        aborts=totals["aborts"],
        aborts_by_reason=aborts_by_reason,
        cross_shard_attempted=totals["cross"],
        wall_clock_s=wall,
        serializable=report.serializable,
        cycle=report.cycle,
        shard_audits=coordinator.audit_shards(),
        metrics=coordinator.metrics.snapshot(),
    )
