"""The merged cross-shard serializability oracle.

Each shard records its own execution history under shard-local
transaction ids and timestamps.  Per-shard MVSGs are sound on their own
(timestamps are never compared across shards), but a cross-shard
anomaly only shows up when the graphs are joined at the transactions
they share.  This module relabels every recorded transaction to its
coordinator-assigned global id (purely-local ids get a synthetic
``"s<shard>:t<id>"`` label so they can never collide across shards),
builds one MVSG per shard with the unmodified
:func:`~repro.sgt.mvsg.build_mvsg`, and unions the node and edge sets.
A cycle in the union condemns the merged history — e.g. cross-shard
write skew appears as T1 -rw-> T2 on one shard and T2 -rw-> T1 on the
other, each shard-local graph acyclic, the union a 2-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.sgt.history import TxnRecord
from repro.sgt.mvsg import MVSG, build_mvsg

__all__ = ["CrossShardReport", "check_merged_serializable", "merged_mvsg"]


class _RelabelledHistory:
    """The minimal ``committed()`` surface :func:`build_mvsg` reads."""

    def __init__(self, records: list[TxnRecord]) -> None:
        self._records = records

    def committed(self) -> list[TxnRecord]:
        return [record for record in self._records if record.committed]


def _relabel(records: Iterable[TxnRecord], gtids: Mapping[int, int],
             shard: int) -> list[TxnRecord]:
    relabelled = []
    for record in records:
        gtid = gtids.get(record.txn_id)
        node = gtid if gtid is not None else f"s{shard}:t{record.txn_id}"
        relabelled.append(TxnRecord(
            txn_id=node,  # type: ignore[arg-type] - str labels are fine
            begin_ts=record.begin_ts,
            commit_ts=record.commit_ts,
            status=record.status,
            ops=list(record.ops),
        ))
    return relabelled


def merged_mvsg(
    shard_histories: Sequence[tuple[list[TxnRecord], Mapping[int, int]]],
) -> MVSG:
    """Union of the per-shard MVSGs under global-id labels.

    ``shard_histories`` is what
    :meth:`~repro.shard.coordinator.Coordinator.shard_histories`
    returns: one ``(records, local-id -> gtid)`` pair per shard.
    """
    merged = MVSG()
    for shard, (records, gtids) in enumerate(shard_histories):
        graph = build_mvsg(_RelabelledHistory(_relabel(records, gtids, shard)))
        merged.nodes |= graph.nodes
        merged.edges |= graph.edges
    return merged


@dataclass(slots=True)
class CrossShardReport:
    """Verdict of the merged oracle."""

    serializable: bool
    cycle: list
    graph: MVSG

    def describe(self) -> str:
        if self.serializable:
            return (
                f"merged history serializable "
                f"({len(self.graph.nodes)} committed txns, "
                f"{len(self.graph.edges)} dependencies)"
            )
        path = " -> ".join(str(node) for node in self.cycle)
        return f"merged history NON-SERIALIZABLE: cycle {path}"


def check_merged_serializable(
    shard_histories: Sequence[tuple[list[TxnRecord], Mapping[int, int]]],
) -> CrossShardReport:
    """Build the merged MVSG and look for a cycle."""
    graph = merged_mvsg(shard_histories)
    cycle = graph.find_cycle()
    return CrossShardReport(serializable=not cycle, cycle=cycle, graph=graph)
