"""Forked shard engine processes and the all-in-one cluster.

Reuses the fork machinery the experiment grid established
(:mod:`repro.bench.harness`): each shard is a forked child running the
unmodified :class:`~repro.server.core.ReproServer` on an ephemeral
port, reported back through a pipe.  Fork (not spawn) keeps startup
cheap and ships the :class:`~repro.engine.config.EngineConfig` by
inheritance; each child is single-purpose and dies with SIGTERM.

:class:`ShardCluster` is the one-stop deployment: N shard processes,
one :class:`~repro.shard.backend.RemoteShard` link each, and a
:class:`~repro.shard.coordinator.Coordinator` on top.  The default
engine config records history (for the merged-MVSG oracle) and sets a
lock timeout — the per-shard deadlock detectors cannot see distributed
cycles, so cross-shard lock waits must time out instead (InnoDB-style;
see the coordinator's module docstring).
"""

from __future__ import annotations

import asyncio
import multiprocessing

from repro.engine.config import EngineConfig
from repro.shard.backend import RemoteShard
from repro.shard.coordinator import Coordinator
from repro.shard.partition import PartitionMap

__all__ = ["ShardCluster", "ShardProcess", "default_shard_config"]

#: cross-shard lock waits must time out (no global deadlock detector)
_DEFAULT_LOCK_TIMEOUT = 5.0


def default_shard_config() -> EngineConfig:
    return EngineConfig(record_history=True,
                        lock_timeout=_DEFAULT_LOCK_TIMEOUT)


def _serve_shard(config: EngineConfig, workers: int, trace: bool,
                 channel) -> None:
    # Child process: build a fresh engine and serve until killed.
    from repro.engine.database import Database
    from repro.server.core import ReproServer

    db = Database(config)
    if trace:
        db.enable_tracing()
    server = ReproServer(db, workers=workers)

    async def main() -> None:
        await server.start()
        channel.send(server.port)
        channel.close()
        await server.serve_forever()

    try:
        asyncio.run(main())
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass


class ShardProcess:
    """One forked shard server; ``port`` is live after construction."""

    def __init__(self, config: EngineConfig | None = None, *,
                 workers: int = 4, trace: bool = False,
                 start_timeout: float = 30.0) -> None:
        config = config or default_shard_config()
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_serve_shard, args=(config, workers, trace, child),
            daemon=True,
        )
        self.process.start()
        child.close()
        if not parent.poll(start_timeout):
            self.stop()
            raise RuntimeError("shard server did not report a port in time")
        self.port: int = parent.recv()
        parent.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)


class ShardCluster:
    """N forked shard servers + remote links + a coordinator.

    Context-manager friendly::

        pmap = smallbank_partition_map(shards=2, customers=64)
        with ShardCluster(pmap) as cluster:
            setup_smallbank(cluster.coordinator, customers=64)
            run_program(cluster.coordinator, balance(customer_name(3)))
    """

    def __init__(self, partition_map: PartitionMap, *,
                 config: EngineConfig | None = None, workers: int = 4,
                 trace: bool = False, certify: bool = True) -> None:
        config = config or default_shard_config()
        self.partition_map = partition_map
        self.processes: list[ShardProcess] = []
        self.backends: list[RemoteShard] = []
        try:
            for _ in range(partition_map.shards):
                self.processes.append(
                    ShardProcess(config, workers=workers, trace=trace)
                )
            self.backends = [
                RemoteShard(port=process.port) for process in self.processes
            ]
            self.coordinator = Coordinator(
                self.backends, partition_map, certify=certify
            )
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        for backend in self.backends:
            try:
                backend.close()
            except Exception:  # noqa: BLE001 - teardown must reach every child
                pass
        for process in self.processes:
            process.stop()

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
