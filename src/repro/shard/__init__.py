"""Shared-nothing sharded kernel with cross-shard SSI certification.

The monolithic :class:`~repro.engine.database.Database` becomes one
*shard* of a larger database: a :class:`~repro.shard.partition.PartitionMap`
routes each key to a shard, each shard runs the unmodified engine
(in-process behind :class:`~repro.shard.backend.LocalShard`, or in its
own forked process behind the wire protocol via
:class:`~repro.shard.backend.RemoteShard`), and a
:class:`~repro.shard.coordinator.Coordinator` stitches the shards into
one serializable database:

* transactions whose footprint stays on one shard commit through the
  **local fast path** — a single ``commit`` round trip, certified
  entirely by that shard's own SSI machinery;
* cross-shard transactions run **two-phase commit** where each shard's
  PREPARE vote carries its rw-antidependency summary, so the
  coordinator can see the paper's Fig 3.4 dangerous structure even when
  its two edges live on different shards and abort the pivot before any
  shard commits.

:mod:`repro.shard.audit` merges the per-shard histories (relabelled to
global transaction ids) into one MVSG, the oracle that certifies the
sharded execution; :mod:`repro.shard.stress` drives mixed single- and
cross-shard workloads against a coordinator and applies that oracle.
"""

from repro.shard.audit import CrossShardReport, check_merged_serializable, merged_mvsg
from repro.shard.backend import LocalShard, RemoteShard
from repro.shard.coordinator import Coordinator, GlobalTransaction
from repro.shard.partition import (
    PartitionMap,
    sibench_partition_map,
    single_shard_map,
    smallbank_partition_map,
)
from repro.shard.process import ShardCluster, ShardProcess
from repro.shard.stress import ShardedStressResult, run_sharded_stress

__all__ = [
    "Coordinator",
    "CrossShardReport",
    "GlobalTransaction",
    "LocalShard",
    "PartitionMap",
    "RemoteShard",
    "ShardCluster",
    "ShardProcess",
    "ShardedStressResult",
    "check_merged_serializable",
    "merged_mvsg",
    "run_sharded_stress",
    "sibench_partition_map",
    "single_shard_map",
    "smallbank_partition_map",
]
