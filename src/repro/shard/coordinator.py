"""The sharding coordinator: routing, snapshot cuts, cross-shard SSI.

One coordinator fronts N shard backends and presents the same surface
as :class:`~repro.engine.database.Database` (``begin``/``read``/
``write``/``scan``/``commit``/...), so the existing executors — the
direct runner, the exhaustive interleaving driver, the stress harness —
drive a sharded deployment unchanged.

**Single-shard fast path.**  A transaction whose footprint stayed on
one shard commits with a single ``commit`` call to that shard: the
shard's own SSI machinery (conflict tracker, dangerous-structure check,
first-committer-wins) is precise there, and no coordinator state needs
updating, so the fast path adds zero extra round trips.

**Cross-shard 2PC + certification.**  A multi-shard commit PREPAREs on
every participant.  Each shard certifies its local part
(:meth:`~repro.engine.database.Database.prepare_for_commit`) and votes
with its rw-antidependency summary: ``in``/``out`` flags plus the
*global* ids of the conflicting partners where the reference tracker
still knows them.  A shard sees only the edges that live on its keys —
a pivot whose incoming edge is on shard 0 and outgoing edge on shard 1
looks harmless to both.  The coordinator merges the votes and applies
the paper's Section 3.2 test to the union: if the merged flags show
both an incoming and an outgoing rw-antidependency *and* more than one
shard contributed flags, the transaction is a potential cross-shard
pivot and is aborted before any shard commits.  (When a single shard
reported every flag, that shard's own precise check already ran at
PREPARE and passed, so the coordinator trusts it — this keeps the
fast-path-equivalent behaviour for skewed footprints.)  On commit the
merged flags are imported back into every participant's conflict slots
(:meth:`~repro.engine.database.Database.commit_prepared`), so edges
discovered on one shard keep endangering later transactions on the
others — flags travel with the commit record, as in Ports & Grittner.

**Consistent snapshot cuts.**  Shards allocate snapshots independently;
without coordination a transaction could see cross-shard commit C on
shard 0 but miss it on shard 1 (a torn snapshot).  The coordinator
therefore keeps a commit-sequence vector ``_csn`` (one counter per
shard, bumped atomically for all participants of a cross-shard commit)
and per-shard *apply gates* held from before the bump until every
participant finished ``commit_prepared``.  A transaction records the
vector as its ``view`` at first touch and must observe
``_csn[s] == view[s]`` when it enters any shard ``s`` — checked before
the shard ``begin`` (early exit) and re-checked after its first
operation completes, which is when the shard snapshot is definitely
pinned (deferred snapshots pin on the first statement).  A mismatch
aborts everywhere with a retryable
:class:`~repro.errors.UpdateConflictError` ("snapshot escalation
conflict") — the read-only-anomaly-style price of lazy cuts: instead of
freezing a global snapshot up front, a transaction pays only when it
*actually* escalates across a concurrent cross-shard commit.
Single-shard commits never touch the vector: they are atomic within
their shard and cannot tear.

Latch discipline: ``_vis_latch`` (the vector latch) is a true latch —
never held across an RPC.  The apply gates *are* held across the
``commit_prepared`` fan-out by design; they are the serialization
point between "commit becoming visible" and "transaction taking its
first look at a shard", and they order commits, not engine internals.
Gate-holders never wait on row locks (``commit_prepared`` is
unconditional), so gates cannot join lock-wait cycles.  Distributed
deadlocks between cross-shard *operations* are invisible to the
per-shard detectors; deployments mitigate them with the engine's
``lock_timeout`` (InnoDB-style), which surfaces as a retryable abort.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Hashable, Sequence

from repro.engine.isolation import IsolationLevel
from repro.errors import (
    TransactionAbortedError,
    TransactionStateError,
    UnsafeError,
    UpdateConflictError,
)
from repro.obs.registry import MetricsRegistry
from repro.shard.partition import PartitionMap

__all__ = ["Coordinator", "GlobalTransaction"]


class GlobalTransaction:
    """Coordinator-side transaction handle.

    Duck-types the slice of :class:`~repro.engine.transaction.Transaction`
    the executors use: ``id``, ``is_active``-family properties,
    ``commit``/``abort``, ``_block_on`` and the context manager.
    """

    __slots__ = ("id", "isolation", "read_only", "status", "parts",
                 "entered", "view", "_coordinator")

    def __init__(self, coordinator: "Coordinator", gtid: int,
                 isolation: IsolationLevel, read_only: bool) -> None:
        self._coordinator = coordinator
        self.id = gtid
        self.isolation = isolation
        self.read_only = read_only
        self.status = "active"
        #: shard index -> shard-local transaction id
        self.parts: dict[int, int] = {}
        #: shards whose first operation completed (snapshot cut validated)
        self.entered: set[int] = set()
        #: the commit-sequence vector at first touch (None until then)
        self.view: list[int] | None = None

    @property
    def is_active(self) -> bool:
        return self.status == "active"

    @property
    def is_committed(self) -> bool:
        return self.status == "committed"

    @property
    def is_aborted(self) -> bool:
        return self.status == "aborted"

    def commit(self) -> None:
        self._coordinator.commit(self)

    def abort(self) -> None:
        self._coordinator.abort(self)

    def _block_on(self, request) -> None:
        # Only local backends surface LockWaitRequired; shard engines
        # run immediate deadlock detection (or a lock timeout), so an
        # untimed completion wait suffices — denial also resolves the
        # request, and the retry surfaces the doom error.
        event = threading.Event()
        request.on_resolve(lambda _req: event.set())
        event.wait()

    def __enter__(self) -> "GlobalTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and self.is_active:
            self.commit()
        elif self.is_active:
            self.abort()
        return False

    def __repr__(self) -> str:
        return (f"GlobalTransaction(id={self.id}, status={self.status}, "
                f"parts={sorted(self.parts)})")


#: abort explanations retained for explain_abort (newest-first eviction)
_ABORT_MEMORY = 256

_2PC_EDGES = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5)


class Coordinator:
    """Route, certify and commit transactions over shard ``backends``
    according to ``partition_map``.

    ``certify=False`` disables the cross-shard merged-flag check (each
    shard still runs its local PREPARE certification) — the knob the
    regression tests use to demonstrate that ignoring PREPARE summaries
    admits non-serializable cross-shard executions.
    """

    def __init__(self, backends: Sequence, partition_map: PartitionMap, *,
                 certify: bool = True,
                 metrics: MetricsRegistry | None = None) -> None:
        if len(backends) != partition_map.shards:
            raise ValueError(
                f"{len(backends)} backends for a "
                f"{partition_map.shards}-shard partition map"
            )
        self.backends = list(backends)
        self.partition_map = partition_map
        self.certify = certify
        self.metrics = metrics or MetricsRegistry()
        self._ids = itertools.count(1)
        self._counters = self.metrics.group("coordinator", {
            "begins": 0,
            "single_shard_commits": 0,
            "cross_shard_commits": 0,
            "cross_shard_unsafe": 0,
            "escalation_conflicts": 0,
            "aborts": 0,
        })
        self._h_2pc = self.metrics.histogram("twopc_latency", edges=_2PC_EDGES)
        self._shard_txns = [0] * len(self.backends)
        self.metrics.register_gauge(
            "shard_txn_counts",
            lambda: {str(i): n for i, n in enumerate(self._shard_txns)},
        )
        #: commit-sequence vector: _csn[s] counts cross-shard commits
        #: applied to shard s.  Guarded by _vis_latch (a leaf latch,
        #: never held across an RPC).
        self._csn = [0] * len(self.backends)
        self._vis_latch = threading.Lock()
        #: apply gates — deliberately NOT latches: held across the
        #: commit_prepared fan-out (see module docstring).
        self._apply_gates = [threading.Lock() for _ in self.backends]
        self._aborts: OrderedDict[int, dict] = OrderedDict()
        self._abort_lock = threading.Lock()

    # ------------------------------------------------------------ admin

    def create_table(self, name: str) -> None:
        for backend in self.backends:
            backend.create_table(name)

    def load(self, table: str, rows) -> None:
        split: list[list] = [[] for _ in self.backends]
        for key, value in rows:
            split[self.partition_map.shard_of(table, key)].append((key, value))
        for shard, shard_rows in enumerate(split):
            if shard_rows:
                self.backends[shard].load(table, shard_rows)

    def sweep_deadlocks(self) -> list:
        victims: list = []
        for backend in self.backends:
            victims.extend(backend.sweep_deadlocks())
        return victims

    def close(self) -> None:
        for backend in self.backends:
            backend.close()

    # -------------------------------------------------------- lifecycle

    def begin(self, isolation: IsolationLevel | str = IsolationLevel.SERIALIZABLE_SSI,
              read_only: bool = False, deferrable: bool = False,
              ) -> GlobalTransaction:
        if deferrable:
            raise TransactionStateError(
                "deferrable transactions are not supported through the "
                "sharding coordinator"
            )
        txn = GlobalTransaction(
            self, next(self._ids), IsolationLevel.parse(isolation), read_only
        )
        self._counters.inc("begins")
        return txn

    def commit(self, txn: GlobalTransaction) -> None:
        self._check_active(txn)
        parts = sorted(txn.parts)
        if len(parts) <= 1:
            if parts:
                shard = parts[0]
                try:
                    self.backends[shard].commit(txn.id)
                except TransactionAbortedError as error:
                    raise self._failed(txn, shard, error)
            txn.status = "committed"
            self._counters.inc("single_shard_commits")
            return
        self._commit_cross(txn, parts)

    def abort(self, txn: GlobalTransaction, reason: str | None = None) -> None:
        if not txn.is_active:
            return
        txn.status = "aborted"
        self._abort_parts(txn, reason=reason)
        self._counters.inc("aborts")

    # ------------------------------------------------------ operations

    def read(self, txn: GlobalTransaction, table: str, key: Hashable) -> Any:
        shard = self.partition_map.shard_of(table, key)
        return self._on_shard(txn, shard, "read", table, key)

    def get(self, txn: GlobalTransaction, table: str, key: Hashable,
            default: Any = None) -> Any:
        shard = self.partition_map.shard_of(table, key)
        return self._on_shard(txn, shard, "get", table, key, default)

    def read_for_update(self, txn: GlobalTransaction, table: str,
                        key: Hashable) -> Any:
        shard = self.partition_map.shard_of(table, key)
        return self._on_shard(txn, shard, "read_for_update", table, key)

    def write(self, txn: GlobalTransaction, table: str, key: Hashable,
              value: Any) -> None:
        shard = self.partition_map.shard_of(table, key)
        return self._on_shard(txn, shard, "write", table, key, value)

    def insert(self, txn: GlobalTransaction, table: str, key: Hashable,
               value: Any) -> None:
        shard = self.partition_map.shard_of(table, key)
        return self._on_shard(txn, shard, "insert", table, key, value)

    def delete(self, txn: GlobalTransaction, table: str, key: Hashable) -> None:
        shard = self.partition_map.shard_of(table, key)
        return self._on_shard(txn, shard, "delete", table, key)

    def scan(self, txn: GlobalTransaction, table: str,
             lo: Hashable | None = None, hi: Hashable | None = None) -> list:
        rows: list = []
        for shard in self.partition_map.shards_for_scan(table, lo, hi):
            rows.extend(self._on_shard(txn, shard, "scan", table, lo, hi))
        return rows

    def index_scan(self, txn: GlobalTransaction, index: str,
                   lo: Hashable | None = None,
                   hi: Hashable | None = None) -> list:
        # Secondary indexes are not partitioned by index key: each shard
        # indexes its own rows, so an index read asks every shard.
        rows: list = []
        for shard in range(len(self.backends)):
            rows.extend(self._on_shard(txn, shard, "index_scan", index, lo, hi))
        rows.sort(key=lambda pair: pair[0])
        return rows

    def index_lookup(self, txn: GlobalTransaction, index: str,
                     key: Hashable) -> list:
        keys: list = []
        for shard in range(len(self.backends)):
            keys.extend(self._on_shard(txn, shard, "index_lookup", index, key))
        return keys

    # -------------------------------------------------------- oracles

    def explain_abort(self, gtid: int) -> dict:
        """The stored annotated explanation for an aborted global
        transaction (coordinator-certified aborts always have one;
        shard-certified ones need tracing on the shard)."""
        with self._abort_lock:
            payload = self._aborts.get(gtid)
        if payload is None:
            raise TransactionStateError(
                f"no abort explanation recorded for global txn {gtid}"
            )
        return payload

    def shard_histories(self) -> list[tuple[list, dict[int, int]]]:
        """Per-shard (records, gtid map) pairs for the merged oracle."""
        return [backend.history_records() for backend in self.backends]

    def audit_shards(self) -> list[dict[str, int]]:
        return [backend.audit() for backend in self.backends]

    # ------------------------------------------------------- internals

    def _check_active(self, txn: GlobalTransaction) -> None:
        if not txn.is_active:
            raise TransactionStateError(
                f"global txn {txn.id} is {txn.status}"
            )

    def _on_shard(self, txn: GlobalTransaction, shard: int, op: str,
                  *args) -> Any:
        self._check_active(txn)
        if shard not in txn.parts:
            self._enter_shard(txn, shard)
        try:
            result = getattr(self.backends[shard], op)(txn.id, *args)
        except TransactionAbortedError as error:
            raise self._failed(txn, shard, error)
        if shard not in txn.entered:
            # The shard snapshot is pinned no later than the end of the
            # first operation; re-check the cut now that it is fixed.
            # (LockWaitRequired unwinds before this point, so a retried
            # first op still validates.)
            txn.entered.add(shard)
            self._validate_entry(txn, shard)
        return result

    def _enter_shard(self, txn: GlobalTransaction, shard: int) -> None:
        gate = self._apply_gates[shard]
        if txn.view is None:
            # First touch of any shard: adopt the current vector as this
            # transaction's cut.  Holding the gate excludes a half-applied
            # cross-shard commit on *this* shard at capture time.
            with gate:
                with self._vis_latch:
                    txn.view = list(self._csn)
        else:
            with gate:
                with self._vis_latch:
                    stale = self._csn[shard] != txn.view[shard]
            if stale:
                raise self._escalation(txn, shard)
        local = self.backends[shard].begin(
            txn.id, txn.isolation, txn.read_only
        )
        txn.parts[shard] = local
        self._shard_txns[shard] += 1

    def _validate_entry(self, txn: GlobalTransaction, shard: int) -> None:
        with self._vis_latch:
            stale = self._csn[shard] != txn.view[shard]
        if stale:
            raise self._escalation(txn, shard)

    def _escalation(self, txn: GlobalTransaction,
                    shard: int) -> UpdateConflictError:
        self._abort_parts(txn)
        txn.status = "aborted"
        self._counters.inc("escalation_conflicts")
        self._counters.inc("aborts")
        error = UpdateConflictError(
            f"global txn {txn.id}: a cross-shard commit reached shard "
            f"{shard} after this transaction's snapshot cut (escalation "
            f"conflict); retry",
            txn_id=txn.id,
        )
        payload = {"reason": "conflict", "shard": shard, "text": str(error)}
        self._record_abort(txn.id, payload)
        error.explanation = payload  # type: ignore[attr-defined]
        return error

    def _failed(self, txn: GlobalTransaction, shard: int,
                error: TransactionAbortedError) -> TransactionAbortedError:
        """A shard aborted this transaction's part: roll back everywhere
        else, annotate, and hand the error back for re-raising."""
        local_id = txn.parts.get(shard)
        self._abort_parts(txn, exclude=shard)
        txn.status = "aborted"
        self._counters.inc("aborts")
        payload = getattr(error, "explanation", None)
        if payload is None and local_id is not None:
            payload = self.backends[shard].describe_abort(local_id)
        annotated = self._annotate(shard, payload, error)
        self._record_abort(txn.id, annotated)
        error.explanation = annotated  # type: ignore[attr-defined]
        error.txn_id = txn.id
        return error

    def _annotate(self, shard: int, payload: dict | None,
                  error: TransactionAbortedError) -> dict:
        if payload is None:
            return {
                "reason": getattr(error, "reason", "aborted"),
                "shard": shard,
                "text": str(error),
            }
        annotated = dict(payload)
        annotated["shard"] = shard
        gtids = payload.get("gtids") or {}
        pivot = payload.get("pivot")
        if pivot:
            annotated["pivot"] = {
                role: self._pivot_entry(shard, local, gtids)
                for role, local in pivot.items()
            }
        return annotated

    @staticmethod
    def _pivot_entry(shard: int, local: Any, gtids: dict) -> dict:
        entry = {"shard": shard, "local": local, "gtid": None}
        if isinstance(local, int):
            entry["gtid"] = gtids.get(str(local), gtids.get(local))
        return entry

    def _record_abort(self, gtid: int, payload: dict) -> None:
        with self._abort_lock:
            self._aborts[gtid] = payload
            while len(self._aborts) > _ABORT_MEMORY:
                self._aborts.popitem(last=False)

    def _abort_parts(self, txn: GlobalTransaction, exclude: int | None = None,
                     reason: str | None = None) -> None:
        for shard in txn.parts:
            if shard == exclude:
                continue
            try:
                self.backends[shard].abort(txn.id, reason)
            except (TransactionAbortedError, TransactionStateError):
                pass

    # ----------------------------------------------------- cross-shard

    def _commit_cross(self, txn: GlobalTransaction, parts: list[int]) -> None:
        start = time.perf_counter()
        waiters = [(s, self.backends[s].prepare_begin(txn.id)) for s in parts]
        votes: dict[int, dict] = {}
        failure: tuple[int, TransactionAbortedError] | None = None
        for shard, waiter in waiters:
            try:
                votes[shard] = waiter()
            except TransactionAbortedError as error:
                if failure is None:
                    failure = (shard, error)
        if failure is not None:
            shard, error = failure
            raise self._failed(txn, shard, error)

        merged_in = any(vote["in"] for vote in votes.values())
        merged_out = any(vote["out"] for vote in votes.values())
        flagged = [s for s in parts if votes[s]["in"] or votes[s]["out"]]
        if self.certify and merged_in and merged_out and len(flagged) > 1:
            raise self._cross_unsafe(txn, parts, votes, flagged)

        gates = [self._apply_gates[s] for s in parts]  # sorted: no cycles
        for gate in gates:
            gate.acquire()
        try:
            with self._vis_latch:
                for shard in parts:
                    self._csn[shard] += 1
            appliers = [
                (s, self.backends[s].commit_prepared_begin(
                    txn.id, merged_in, merged_out))
                for s in parts
            ]
            problems: list[tuple[int, BaseException]] = []
            for shard, waiter in appliers:
                try:
                    waiter()
                except Exception as error:  # noqa: BLE001
                    problems.append((shard, error))
        finally:
            for gate in reversed(gates):
                gate.release()
        if problems:
            shard, cause = problems[0]
            raise RuntimeError(
                f"commit_prepared failed on shard {shard} after the global "
                f"commit decision for txn {txn.id} — shards have diverged"
            ) from cause
        txn.status = "committed"
        self._counters.inc("cross_shard_commits")
        self._h_2pc.observe(time.perf_counter() - start)

    def _cross_unsafe(self, txn: GlobalTransaction, parts: list[int],
                      votes: dict[int, dict],
                      flagged: list[int]) -> UnsafeError:
        self._abort_parts(txn)
        txn.status = "aborted"
        self._counters.inc("cross_shard_unsafe")
        self._counters.inc("aborts")

        def partner(flag: str, kind: str) -> dict | None:
            for shard in parts:
                if votes[shard][flag]:
                    return {"shard": shard, "gtid": votes[shard][kind]}
            return None

        t_in = partner("in", "in_partner")
        t_out = partner("out", "out_partner")
        payload = {
            "reason": "unsafe",
            "pivot": {
                "t_in": t_in,
                "pivot": {"shard": flagged, "gtid": txn.id},
                "t_out": t_out,
            },
            "votes": {str(shard): votes[shard] for shard in parts},
            "text": (
                f"global txn {txn.id} is the pivot of a cross-shard "
                f"dangerous structure: "
                f"{t_in and t_in['gtid']} -rw-> {txn.id} -rw-> "
                f"{t_out and t_out['gtid']} (flags from shards {flagged})"
            ),
        }
        self._record_abort(txn.id, payload)
        error = UnsafeError(
            f"cross-shard unsafe: global txn {txn.id} has both an incoming "
            f"and an outgoing rw-antidependency spanning shards {flagged}",
            txn_id=txn.id,
        )
        error.explanation = payload  # type: ignore[attr-defined]
        return error
