"""Key-range partition maps: which shard owns which keys.

A :class:`PartitionMap` assigns every ``(table, key)`` to one of N
shards by binary search over per-table boundary lists — the classic
range-partitioning scheme, chosen over hashing because it keeps range
scans contiguous: a scan touches only the shards whose ranges intersect
``[lo, hi]``, and an unbounded scan touches all of them.

Tables without boundary lists either route wholesale to
``default_shard`` (useful to pin a whole deployment onto one shard, or
to co-locate small dimension tables) or raise
:class:`~repro.errors.TableError` — the router refuses to guess.

The SmallBank map (:func:`smallbank_partition_map`) exploits that
``cust0000042``-style account names sort exactly like their integer
customer ids: cutting both the name-keyed Account table and the
cid-keyed Saving/Checking/Conflict tables at the same customer indices
co-locates each customer's entire row set, so every single-customer
program is single-shard and only Amalgamate(N1, N2) crosses shards.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Hashable, Mapping, Sequence

from repro.errors import TableError

__all__ = [
    "PartitionMap",
    "single_shard_map",
    "smallbank_partition_map",
    "sibench_partition_map",
]


class PartitionMap:
    """Range partitioning over ``shards`` shards.

    ``bounds[table]`` is a strictly ascending sequence of ``shards - 1``
    boundary keys: key ``k`` routes to shard ``bisect_left(bounds, k)``,
    i.e. shard ``i`` owns ``bounds[i-1] < k <= bounds[i]`` — boundary
    keys themselves belong to the *lower* shard.
    """

    __slots__ = ("shards", "bounds", "default_shard")

    def __init__(
        self,
        shards: int,
        bounds: Mapping[str, Sequence[Hashable]] | None = None,
        default_shard: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("a partition map needs at least one shard")
        if default_shard is not None and not 0 <= default_shard < shards:
            raise ValueError(
                f"default_shard {default_shard} out of range for {shards} shards"
            )
        self.shards = shards
        self.default_shard = default_shard
        self.bounds: dict[str, tuple[Hashable, ...]] = {}
        for table, cuts in (bounds or {}).items():
            cuts = tuple(cuts)
            if len(cuts) != shards - 1:
                raise ValueError(
                    f"table {table!r}: {len(cuts)} boundary keys for "
                    f"{shards} shards (need {shards - 1})"
                )
            if any(a >= b for a, b in zip(cuts, cuts[1:])):
                raise ValueError(
                    f"table {table!r}: boundary keys must be strictly ascending"
                )
            self.bounds[table] = cuts

    def _cuts(self, table: str) -> tuple[Hashable, ...] | None:
        cuts = self.bounds.get(table)
        if cuts is None and self.default_shard is None:
            raise TableError(
                f"no partition bounds for table {table!r} and no default shard"
            )
        return cuts

    def shard_of(self, table: str, key: Hashable) -> int:
        """The shard owning ``(table, key)``."""
        cuts = self._cuts(table)
        if cuts is None:
            return self.default_shard  # type: ignore[return-value]
        return bisect_left(cuts, key)

    def shards_for_scan(
        self, table: str, lo: Hashable | None = None, hi: Hashable | None = None
    ) -> range:
        """The contiguous shard range a ``[lo, hi]`` scan must visit
        (``None`` bounds are unbounded, so they reach the edge shards)."""
        cuts = self._cuts(table)
        if cuts is None:
            assert self.default_shard is not None
            return range(self.default_shard, self.default_shard + 1)
        first = 0 if lo is None else bisect_left(cuts, lo)
        last = len(cuts) if hi is None else bisect_left(cuts, hi)
        return range(first, last + 1)

    def __repr__(self) -> str:
        return (
            f"PartitionMap(shards={self.shards}, tables={sorted(self.bounds)}, "
            f"default_shard={self.default_shard})"
        )


def single_shard_map(shards: int = 1, shard: int = 0) -> PartitionMap:
    """Route every table of a ``shards``-wide deployment to one shard —
    the degenerate map used to check single-shard fast-path equivalence
    against the monolithic engine."""
    return PartitionMap(shards, default_shard=shard)


def _even_cuts(cardinality: int, shards: int) -> list[int]:
    return [cardinality * i // shards for i in range(1, shards)]


def smallbank_partition_map(shards: int, customers: int) -> PartitionMap:
    """Partition SmallBank so each customer's rows are co-located (see
    module docstring); cuts are even in customer id."""
    from repro.workloads.smallbank import (
        ACCOUNT,
        CHECKING,
        CONFLICT,
        SAVING,
        customer_name,
    )

    cuts = _even_cuts(customers, shards)
    return PartitionMap(shards, {
        ACCOUNT: [customer_name(c) for c in cuts],
        SAVING: cuts,
        CHECKING: cuts,
        CONFLICT: list(cuts),
    })


def sibench_partition_map(shards: int, items: int) -> PartitionMap:
    """Partition the sibench table evenly by item id.  The sibench query
    is a full-table scan, so under this map it is inherently cross-shard
    whenever ``shards > 1``."""
    from repro.workloads.sibench import TABLE

    return PartitionMap(shards, {TABLE: _even_cuts(items, shards)})
