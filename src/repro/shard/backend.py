"""Shard backends: the uniform surface the coordinator drives.

Both backends address transactions by the coordinator's *global id*
(gtid) — the shard-local :class:`~repro.engine.transaction.Transaction`
or wire session is an implementation detail behind it.

:class:`LocalShard` embeds a :class:`~repro.engine.database.Database` in
the coordinator's process.  Engine behaviour is unchanged — in
particular :class:`~repro.errors.LockWaitRequired` propagates to the
caller, so the exhaustive interleaving driver can single-step a sharded
deployment exactly like a monolithic one.

:class:`RemoteShard` speaks the wire protocol to one forked shard
server over a single :class:`~repro.client.PipelinedClient` link: every
frame carries ``txn: gtid`` (the server multiplexes all distributed
transactions on the connection) and the ``*_begin`` methods submit
without waiting, which is what lets the coordinator fan PREPARE out to
all shards in one round trip instead of one per shard.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.client import PipelinedClient, ServerError
from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.errors import TransactionAbortedError, TransactionStateError
from repro.sgt.history import OpRecord, TxnRecord

__all__ = ["LocalShard", "RemoteShard"]

#: summaries land in a vote table; votes use these reply waiters
Waiter = Callable[[], Any]


class LocalShard:
    """One in-process shard: a private engine plus the gtid routing
    table.  ``config`` defaults to history-recording so the merged-MVSG
    oracle works out of the box."""

    def __init__(self, config: EngineConfig | None = None,
                 db: Database | None = None) -> None:
        self.db = db if db is not None else Database(
            config or EngineConfig(record_history=True)
        )
        self._txns: dict[int, Any] = {}
        #: local txn id -> gtid, kept for history relabelling.
        self._gtids: dict[int, int] = {}

    # ------------------------------------------------------------ admin

    def create_table(self, name: str) -> None:
        self.db.create_table(name)

    def load(self, table: str, rows) -> None:
        self.db.load(table, rows)

    def sweep_deadlocks(self) -> list:
        return self.db.sweep_deadlocks()

    def metrics(self) -> dict:
        return self.db.metrics.snapshot()

    def close(self) -> None:
        pass

    # ------------------------------------------------------- txn ops

    def begin(self, gtid: int, isolation: IsolationLevel | str = "ssi",
              read_only: bool = False) -> int:
        txn = self.db.begin(isolation, read_only=read_only, global_id=gtid)
        self._txns[gtid] = txn
        self._gtids[txn.id] = gtid
        return txn.id

    def _run(self, gtid: int, fn):
        txn = self._txns.get(gtid)
        if txn is None:
            raise TransactionStateError(
                f"shard holds no transaction for global id {gtid}"
            )
        try:
            return fn(txn)
        finally:
            # Any terminal outcome — commit, abort, engine-raised abort
            # error — retires the routing entry; a LockWaitRequired
            # leaves the transaction active and routable for the retry.
            if not txn.is_active:
                self._txns.pop(gtid, None)

    def read(self, gtid: int, table: str, key: Hashable) -> Any:
        return self._run(gtid, lambda txn: self.db.read(txn, table, key))

    def get(self, gtid: int, table: str, key: Hashable,
            default: Any = None) -> Any:
        return self._run(gtid, lambda txn: self.db.get(txn, table, key, default))

    def read_for_update(self, gtid: int, table: str, key: Hashable) -> Any:
        return self._run(gtid, lambda txn: self.db.read_for_update(txn, table, key))

    def write(self, gtid: int, table: str, key: Hashable, value: Any) -> None:
        return self._run(gtid, lambda txn: self.db.write(txn, table, key, value))

    def insert(self, gtid: int, table: str, key: Hashable, value: Any) -> None:
        return self._run(gtid, lambda txn: self.db.insert(txn, table, key, value))

    def delete(self, gtid: int, table: str, key: Hashable) -> None:
        return self._run(gtid, lambda txn: self.db.delete(txn, table, key))

    def scan(self, gtid: int, table: str, lo: Hashable | None = None,
             hi: Hashable | None = None) -> list:
        return self._run(gtid, lambda txn: self.db.scan(txn, table, lo, hi))

    def index_scan(self, gtid: int, index: str, lo: Hashable | None = None,
                   hi: Hashable | None = None) -> list:
        return self._run(gtid, lambda txn: self.db.index_scan(txn, index, lo, hi))

    def index_lookup(self, gtid: int, index: str, key: Hashable) -> list:
        return self._run(gtid, lambda txn: self.db.index_lookup(txn, index, key))

    # -------------------------------------------------------- commit

    def commit(self, gtid: int) -> None:
        self._run(gtid, lambda txn: self.db.commit(txn))

    def abort(self, gtid: int, reason: str | None = None) -> None:
        txn = self._txns.pop(gtid, None)
        if txn is not None and txn.is_active:
            self.db.abort(txn, reason=reason)

    def prepare(self, gtid: int) -> dict:
        return self._run(gtid, lambda txn: self.db.prepare_for_commit(txn))

    def commit_prepared(self, gtid: int, import_in: bool = False,
                        import_out: bool = False) -> None:
        def apply(txn):
            self.db.commit_prepared(
                txn, import_in=import_in, import_out=import_out
            )
            self.db.finalize_commit(txn)

        self._run(gtid, apply)

    def prepare_begin(self, gtid: int) -> Waiter:
        return lambda: self.prepare(gtid)

    def commit_prepared_begin(self, gtid: int, import_in: bool,
                              import_out: bool) -> Waiter:
        return lambda: self.commit_prepared(gtid, import_in, import_out)

    # ------------------------------------------------------- oracles

    def describe_abort(self, local_id: int) -> dict | None:
        """The trace-derived abort explanation for a local transaction,
        with the ``gtids`` relabelling table — same payload the wire
        server attaches to error replies (None without tracing)."""
        if self.db.trace is None:
            return None
        try:
            explanation = self.db.explain_abort(local_id)
        except Exception:  # noqa: BLE001 - diagnostics must not mask the abort
            return None
        payload: dict[str, Any] = {
            "reason": explanation.reason,
            "text": explanation.render(),
            "conflicts": [list(entry) for entry in explanation.conflicts],
        }
        mentioned: set[Any] = {local_id}
        for reader, writer, _ts in explanation.conflicts:
            mentioned.update((reader, writer))
        if explanation.pivot is not None:
            pivot = explanation.pivot
            payload["pivot"] = {
                "t_in": pivot.t_in, "pivot": pivot.pivot, "t_out": pivot.t_out,
            }
            mentioned.update((pivot.t_in, pivot.pivot, pivot.t_out))
        payload["gtids"] = {
            str(local): self._gtids[local]
            for local in mentioned
            if isinstance(local, int) and local in self._gtids
        }
        return payload

    def history_records(self) -> tuple[list[TxnRecord], dict[int, int]]:
        """(records, local-id -> gtid) for the merged-MVSG oracle."""
        history = self.db.history
        if history is None:
            raise TransactionStateError(
                "history recording is disabled on this shard"
            )
        return history.snapshot_records(), dict(self._gtids)

    def audit(self) -> dict[str, int]:
        """Residual engine state after quiesce (all counts should be 0
        once every transaction has been retired)."""
        self.db.cleanup_suspended()
        lm = self.db.locks
        return {
            "granted": lm.table_size(),
            "owners": len(lm._by_owner),
            "waiters": len(lm._waiting),
            "suspended": len(self.db._suspended),
            "siread": lm.siread_lock_count(),
            "prepared": len(self.db._prepared),
        }


class RemoteShard:
    """One shard server reached over a pipelined wire link.

    Frame coalescing is the link's job, not this class's: every
    ``*_begin`` submission lands in the link's send queue, so when
    several distributed transactions commit concurrently their
    same-shard PREPARE/COMMIT frames ride one ``batch`` wire frame
    (see :class:`~repro.client.PipelinedClient`).  Within a single
    transaction each shard is touched once, so there is nothing to
    coalesce per-commit — the batching win is cross-transaction.

    ``codecs`` is forwarded to the link's hello handshake (e.g.
    ``("msgpack",)``), degrading to JSON when unavailable.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 codecs: tuple[str, ...] | None = None) -> None:
        self.link = PipelinedClient(host, port, codecs=codecs)

    # ------------------------------------------------------------ admin

    def create_table(self, name: str) -> None:
        self.link.call({"op": "create_table", "table": name})

    def load(self, table: str, rows) -> None:
        self.link.call({
            "op": "load", "table": table,
            "rows": [[key, value] for key, value in rows],
        })

    def sweep_deadlocks(self) -> list:
        # The shard server's scheduler runs its own deadlock ticker.
        return []

    def metrics(self) -> dict:
        return self.link.call({"op": "metrics"})["metrics"]

    def close(self) -> None:
        self.link.close()

    # ------------------------------------------------------- txn ops

    def begin(self, gtid: int, isolation: IsolationLevel | str = "ssi",
              read_only: bool = False) -> int:
        return self.link.call({
            "op": "begin", "txn": gtid,
            "isolation": IsolationLevel.parse(isolation).value,
            "read_only": read_only,
        })["txn"]

    def read(self, gtid: int, table: str, key: Hashable) -> Any:
        return self.link.call({
            "op": "read", "txn": gtid, "table": table, "key": key,
        })["value"]

    def get(self, gtid: int, table: str, key: Hashable,
            default: Any = None) -> Any:
        return self.link.call({
            "op": "get", "txn": gtid, "table": table, "key": key,
            "default": default,
        })["value"]

    def read_for_update(self, gtid: int, table: str, key: Hashable) -> Any:
        return self.link.call({
            "op": "read_for_update", "txn": gtid, "table": table, "key": key,
        })["value"]

    def write(self, gtid: int, table: str, key: Hashable, value: Any) -> None:
        self.link.call({
            "op": "put", "txn": gtid, "table": table, "key": key, "value": value,
        })

    def insert(self, gtid: int, table: str, key: Hashable, value: Any) -> None:
        self.link.call({
            "op": "insert", "txn": gtid, "table": table, "key": key,
            "value": value,
        })

    def delete(self, gtid: int, table: str, key: Hashable) -> None:
        self.link.call({"op": "delete", "txn": gtid, "table": table, "key": key})

    def scan(self, gtid: int, table: str, lo: Hashable | None = None,
             hi: Hashable | None = None) -> list:
        reply = self.link.call({
            "op": "scan", "txn": gtid, "table": table, "lo": lo, "hi": hi,
        })
        return [(key, value) for key, value in reply["rows"]]

    def index_scan(self, gtid: int, index: str, lo: Hashable | None = None,
                   hi: Hashable | None = None) -> list:
        reply = self.link.call({
            "op": "index_scan", "txn": gtid, "index": index, "lo": lo, "hi": hi,
        })
        return [(key, pk) for key, pk in reply["rows"]]

    def index_lookup(self, gtid: int, index: str, key: Hashable) -> list:
        return self.link.call({
            "op": "index_lookup", "txn": gtid, "index": index, "key": key,
        })["keys"]

    # -------------------------------------------------------- commit

    def commit(self, gtid: int) -> None:
        self.link.call({"op": "commit", "txn": gtid})

    def abort(self, gtid: int, reason: str | None = None) -> None:
        try:
            self.link.call({"op": "abort", "txn": gtid})
        except (ServerError, TransactionStateError, TransactionAbortedError):
            # Already retired server-side (the abort error that triggered
            # this rollback retired the session); nothing left to do.
            pass

    def prepare(self, gtid: int) -> dict:
        return self.link.call({"op": "prepare", "txn": gtid})["summary"]

    def commit_prepared(self, gtid: int, import_in: bool = False,
                        import_out: bool = False) -> None:
        self.link.call({
            "op": "commit_prepared", "txn": gtid,
            "import_in": import_in, "import_out": import_out,
        })

    def prepare_begin(self, gtid: int) -> Waiter:
        slot = self.link.submit({"op": "prepare", "txn": gtid})
        return lambda: self.link.result(slot)["summary"]

    def commit_prepared_begin(self, gtid: int, import_in: bool,
                              import_out: bool) -> Waiter:
        slot = self.link.submit({
            "op": "commit_prepared", "txn": gtid,
            "import_in": import_in, "import_out": import_out,
        })

        def waiter() -> None:
            self.link.result(slot)

        return waiter

    # ------------------------------------------------------- oracles

    def describe_abort(self, local_id: int) -> dict | None:
        # Remote abort errors already carry the server's explanation.
        return None

    def history_records(self) -> tuple[list[TxnRecord], dict[int, int]]:
        reply = self.link.call({"op": "dump_history"})
        records: list[TxnRecord] = []
        gtids: dict[int, int] = {}
        for txn in reply["txns"]:
            ops = [
                OpRecord(
                    kind, table,
                    tuple(key) if kind == "scan" else key,
                    version_ts, tuple(seen),
                )
                for kind, table, key, version_ts, seen in txn["ops"]
            ]
            records.append(TxnRecord(
                txn["id"], txn["begin_ts"], txn["commit_ts"], txn["status"], ops,
            ))
            if txn["gtid"] is not None:
                gtids[txn["id"]] = txn["gtid"]
        return records, gtids

    def audit(self) -> dict[str, int]:
        reply = self.link.call({"op": "audit"})
        return {
            field: reply[field]
            for field in ("granted", "owners", "waiters", "suspended",
                          "siread", "prepared")
        }
