"""TPC-C++ — TPC-C plus the Credit Check transaction (paper Section 5.3).

Credit Check (Fig 5.1) sums a customer's delivered-but-unpaid balance and
the value of their undelivered new orders, then writes the customer's
credit status.  It creates two pivots in the SDG (Fig 5.3) — New Order
and Credit Check itself — making TPC-C++ non-serializable under plain SI:
the Example 5 anomaly shows a customer slipping an order past a
concurrent credit check.

The standard mix keeps TPC-C's proportions and gives Credit Check the
Delivery frequency (Section 5.3.4); the Stock Level Mix (Section 5.3.5)
runs 10 Stock Level queries per New Order to stress read-write conflicts.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.engine.database import Database
from repro.sim.ops import IndexLookup, Read, ReadForUpdate, Scan, Write
from repro.sim.workload import Mix, Workload
from repro.workloads import tpcc
from repro.workloads.tpcc import (
    CUSTOMER,
    NEW_ORDER,
    ORDER_LINE,
    ORDERS_BY_CUSTOMER,
    TpccScale,
    setup_tpcc,
)


def credit_check(rng: random.Random, scale: TpccScale, w_id: int) -> Generator:
    """CCHECK: recompute a customer's credit status (Fig 5.1).

    Reads c_balance (written by PAY and DLVY), scans the customer's
    orders still present in NEW_ORDER (inserted by NEWO — a predicate
    read, so phantom detection matters) and writes c_credit (read by
    NEWO).
    """
    d_id = rng.randint(1, tpcc.DISTRICTS_PER_WAREHOUSE)
    c_id = rng.randint(1, scale.customers_per_district)

    customer = yield Read(CUSTOMER, (w_id, d_id, c_id))
    balance = customer["balance"]
    credit_lim = customer["credit_lim"]

    # SUM(ol_amount) over this customer's undelivered orders: join the
    # orders-by-customer index x new_order x order_line.
    own_orders = yield IndexLookup(ORDERS_BY_CUSTOMER, (w_id, d_id, c_id))
    neworder_balance = 0.0
    for _w, _d, o_id in own_orders:
        pending = yield Scan(NEW_ORDER, (w_id, d_id, o_id), (w_id, d_id, o_id))
        if not pending:
            continue
        lines = yield Scan(
            ORDER_LINE, (w_id, d_id, o_id, 0), (w_id, d_id, o_id, 1 << 30)
        )
        neworder_balance += sum(line["amount"] for _lkey, line in lines)

    credit = "BC" if balance + neworder_balance > credit_lim else "GC"
    current = yield ReadForUpdate(CUSTOMER, (w_id, d_id, c_id))
    yield Write(CUSTOMER, (w_id, d_id, c_id), {**current, "credit": credit})
    return credit


# ----------------------------------------------------------------- mixes

#: TPC-C++ proportions (Section 5.3.4).
STANDARD_WEIGHTS = {
    "NEWO": 41.0,
    "PAY": 41.0,
    "CCHECK": 4.0,
    "DLVY": 4.0,
    "OSTAT": 4.0,
    "SLEV": 4.0,
}


def _entry(name: str, weight: float, factory) -> tuple[str, float, object]:
    return (name, weight, factory)


def make_tpccpp(
    scale: TpccScale | None = None,
    skip_ytd: bool = False,
    weights: dict[str, float] | None = None,
) -> Workload:
    """The full TPC-C++ workload.

    Args:
        scale: data scaling (default: standard, 1 warehouse).
        skip_ytd: omit the warehouse/district year-to-date updates in
            Payment, removing their write-write hot spot (Section 5.3.1;
            the Figs 6.12/6.14/6.16 configurations).
        weights: override the Section 5.3.4 proportions.
    """
    scale = scale or TpccScale.standard()
    weights = weights or STANDARD_WEIGHTS

    def pick_warehouse(rng: random.Random) -> int:
        return rng.randint(1, scale.warehouses)

    factories = {
        "NEWO": lambda rng: tpcc.new_order(rng, scale, pick_warehouse(rng), skip_ytd),
        "PAY": lambda rng: tpcc.payment(rng, scale, pick_warehouse(rng), skip_ytd),
        "CCHECK": lambda rng: credit_check(rng, scale, pick_warehouse(rng)),
        "DLVY": lambda rng: tpcc.delivery(rng, scale, pick_warehouse(rng)),
        "OSTAT": lambda rng: tpcc.order_status(rng, scale, pick_warehouse(rng)),
        "SLEV": lambda rng: tpcc.stock_level(rng, scale, pick_warehouse(rng)),
    }
    mix = Mix([
        _entry(name, weight, factories[name])
        for name, weight in weights.items()
        if weight > 0
    ])
    label = f"tpcc++[W={scale.warehouses},{'tiny' if scale.customers_per_district <= 100 else 'std'}{',noytd' if skip_ytd else ''}]"
    return Workload(name=label, setup=lambda db: setup_tpcc(db, scale), mix=mix)


def make_stock_level_mix(
    scale: TpccScale | None = None, skip_ytd: bool = True
) -> Workload:
    """The Stock Level Mix: 10 SLEV per NEWO (Section 5.3.5) — roughly
    100 rows read per row updated, the regime where multiversion reads
    pay off most (Figs 6.17/6.18)."""
    scale = scale or TpccScale.standard(10)
    workload = make_tpccpp(
        scale,
        skip_ytd=skip_ytd,
        weights={"NEWO": 1.0, "SLEV": 10.0},
    )
    workload.name = workload.name.replace("tpcc++", "tpcc++slev")
    return workload
