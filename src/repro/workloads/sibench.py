"""sibench — the snapshot-isolation microbenchmark (paper Section 5.2).

One table of I rows.  The *query* returns the id with the smallest value
(a full scan plus an order-by, so its CPU cost grows with I); the
*update* increments one uniformly chosen row.  A single rw-edge in the
SDG: no deadlocks, no write skew — the benchmark isolates the cost of
read-write blocking (S2PL) versus non-blocking reads (SI / Serializable
SI), which is exactly what Figures 6.6-6.11 chart.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.engine.database import Database
from repro.sim.ops import Compute, Read, ReadForUpdate, Scan, Write
from repro.sim.workload import Mix, Workload

TABLE = "sitest"

#: CPU cost units per row for the query's sort step.
SORT_COST_PER_ROW = 1.0


def setup_sibench(db: Database, items: int) -> None:
    db.create_table(TABLE)
    db.load(TABLE, ((i, 0) for i in range(items)))


def query() -> Generator:
    """SELECT id FROM sitest ORDER BY value ASC LIMIT 1."""
    rows = yield Scan(TABLE)
    yield Compute(len(rows) * SORT_COST_PER_ROW)
    if not rows:
        return None
    best_id, _best_value = min(rows, key=lambda row: (row[1], row[0]))
    return best_id


def update(item_id: int) -> Generator:
    """UPDATE sitest SET value = value + 1 WHERE id = :id.

    Uses a locking read so the deferred-snapshot optimisation applies
    (Section 4.5): single-statement updates block on write-write conflicts
    but never abort under first-committer-wins — the paper verifies no
    rollbacks occur in sibench at any isolation level.
    """
    value = yield ReadForUpdate(TABLE, item_id)
    yield Write(TABLE, item_id, value + 1)


def update_rmw(item_id: int, other_id: int) -> Generator:
    """A read-modify-write update that also *observes* another row.

    Unlike :func:`update` (whose locking read keeps sibench's SDG down to
    a single rw edge), the plain read of ``other_id`` takes a SIREAD lock,
    so concurrent updaters acquire rw-antidependencies *out of* this
    transaction while queries hold edges *into* it — producing the
    dangerous structures ``query --rw--> updater --rw--> updater`` with a
    read-only incoming transaction that the Ports & Grittner read-only
    optimization targets.
    """
    yield Read(TABLE, other_id)
    value = yield ReadForUpdate(TABLE, item_id)
    yield Write(TABLE, item_id, value + 1)


def make_sibench(items: int = 100, queries_per_update: float = 1.0) -> Workload:
    """Build sibench.

    Args:
        items: I, the table size (10 / 100 / 1000 in Figs 6.6-6.11).
        queries_per_update: 1 for the mixed workload (Figs 6.6-6.8), 10
            for the query-mostly workloads (Figs 6.9-6.11).
    """

    def query_program(rng: random.Random) -> Generator:
        return query()

    def update_program(rng: random.Random) -> Generator:
        return update(rng.randrange(items))

    mix = Mix(
        [
            ("query", queries_per_update, query_program),
            ("update", 1.0, update_program),
        ]
    )
    return Workload(
        name=f"sibench[I={items},q:u={queries_per_update}:1]",
        setup=lambda db: setup_sibench(db, items),
        mix=mix,
    )


def make_sibench_rmw(
    items: int = 20, queries_per_update: float = 2.0
) -> Workload:
    """Read-mostly sibench variant with :func:`update_rmw` updaters.

    The default mix (2 queries per update) is the regime where stock
    Serializable SI pays for false positives that the ``ssi-ro``
    read-only optimization excuses: most dangerous structures have a
    read-only query as the sole incoming transaction.  Pushing the query
    share much higher is counter-productive for the optimization — with
    several queries concurrently conflicting into the same pivot, the
    enhanced tracker's single ``inConflict`` reference degrades to the
    "multiple conflicts, order lost" self-reference and the excuse can no
    longer prove the incoming side read-only.  Run it at a low
    multiprogramming level (2-4) for the same reason.
    """

    def query_program(rng: random.Random) -> Generator:
        return query()

    def update_program(rng: random.Random) -> Generator:
        item = rng.randrange(items)
        other = rng.randrange(items)
        if items > 1:
            while other == item:
                other = rng.randrange(items)
        return update_rmw(item, other)

    mix = Mix(
        [
            ("query", queries_per_update, query_program),
            ("update", 1.0, update_program),
        ]
    )
    return Workload(
        name=f"sibench-rmw[I={items},q:u={queries_per_update}:1]",
        setup=lambda db: setup_sibench(db, items),
        mix=mix,
    )
