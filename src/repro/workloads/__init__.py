"""The paper's three benchmarks as declarative transaction programs.

* :mod:`repro.workloads.smallbank` — the SmallBank banking mix
  (Sections 2.8.2, 5.1), including the four serializability-restoring
  program transformations (MaterializeWT/PromoteWT/MaterializeBW/PromoteBW).
* :mod:`repro.workloads.sibench` — the read/write microbenchmark of
  Section 5.2.
* :mod:`repro.workloads.tpcc` / :mod:`repro.workloads.tpccpp` — TPC-C
  (Section 2.8.1, simplified per Section 5.3.1) and TPC-C++ with the
  Credit Check transaction (Section 5.3).
* :mod:`repro.workloads.reporting` — the TPC-H-flavored read-mostly
  reporting mix (scale-factor generator, large range scans, index
  joins) that stresses the scan kernel, page-granularity SIREADs and
  the read-only/safe-snapshot optimizations.
"""

from repro.workloads.smallbank import make_smallbank
from repro.workloads.sibench import make_sibench
from repro.workloads.tpcc import TpccScale, setup_tpcc
from repro.workloads.tpccpp import make_tpccpp, make_stock_level_mix
from repro.workloads.reporting import (
    combine_workloads,
    make_reporting,
    make_reporting_mix,
    setup_reporting,
)

__all__ = [
    "make_smallbank",
    "make_sibench",
    "TpccScale",
    "setup_tpcc",
    "make_tpccpp",
    "make_stock_level_mix",
    "combine_workloads",
    "make_reporting",
    "make_reporting_mix",
    "setup_reporting",
]
