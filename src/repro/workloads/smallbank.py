"""The SmallBank benchmark (paper Sections 2.8.2-2.8.5 and 5.1).

Three tables — Account(Name -> CustomerID), Saving(CustomerID -> Balance),
Checking(CustomerID -> Balance) — and five transaction programs chosen
with equal probability.  Its static dependency graph contains the
dangerous structure Bal -> WC -> TS -> Bal with WriteCheck as the pivot,
so the mix is *not* serializable under plain SI.

The module also provides the four application-level fixes of Section
2.8.5 (materialise/promote on either vulnerable edge), used by the
analysis tests and the mixed-technique ablation bench.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.engine.database import Database
from repro.sim.ops import Get, Read, ReadForUpdate, Rollback, Write
from repro.sim.workload import Mix, Workload

ACCOUNT = "account"
SAVING = "saving"
CHECKING = "checking"
CONFLICT = "conflict"  # the materialisation table of Section 2.6.1

#: The serializability-restoring program variants of Section 2.8.5.
VARIANTS = ("plain", "materialize_wt", "promote_wt", "materialize_bw", "promote_bw")


def customer_name(index: int) -> str:
    return f"cust{index:07d}"


def setup_smallbank(db: Database, customers: int) -> None:
    """Create and populate the three tables (plus the Conflict table)."""
    for table in (ACCOUNT, SAVING, CHECKING, CONFLICT):
        db.create_table(table)
    db.load(ACCOUNT, ((customer_name(i), i) for i in range(customers)))
    db.load(SAVING, ((i, 1000.0) for i in range(customers)))
    db.load(CHECKING, ((i, 1000.0) for i in range(customers)))
    db.load(CONFLICT, ((i, 0) for i in range(customers)))


# --------------------------------------------------------------- programs
#
# Each program is a generator of ops (see repro.sim.ops).  They follow the
# Berkeley DB adaptations of Section 5.1.1 verbatim, with the variant
# hooks grafted in where Section 2.8.5 prescribes.


def balance(name: str, variant: str = "plain") -> Generator:
    """Bal(N): total balance of a customer.  Read-only in the plain mix."""
    cid = yield Read(ACCOUNT, name)
    if variant == "promote_bw":
        # PromoteBW: identity write on Checking turns Bal's read into an
        # update, breaking the Bal->WC vulnerable edge (Section 2.8.5).
        checking = yield ReadForUpdate(CHECKING, cid)
        yield Write(CHECKING, cid, checking)
    elif variant == "materialize_bw":
        token = yield ReadForUpdate(CONFLICT, cid)
        yield Write(CONFLICT, cid, token + 1)
        checking = yield Read(CHECKING, cid)
    else:
        checking = yield Read(CHECKING, cid)
    saving = yield Read(SAVING, cid)
    return saving + checking


def deposit_checking(name: str, amount: float, variant: str = "plain") -> Generator:
    """DC(N, V): deposit into the checking account."""
    if amount < 0:
        yield Rollback("negative deposit")
    cid = yield Get(ACCOUNT, name)
    if cid is None:
        yield Rollback("unknown customer")
    checking = yield Read(CHECKING, cid)
    yield Write(CHECKING, cid, checking + amount)


def transact_saving(name: str, amount: float, variant: str = "plain") -> Generator:
    """TS(N, V): deposit or withdrawal on the savings account."""
    cid = yield Get(ACCOUNT, name)
    if cid is None:
        yield Rollback("unknown customer")
    saving = yield Read(SAVING, cid)
    if saving + amount < 0:
        yield Rollback("would overdraw savings")
    yield Write(SAVING, cid, saving + amount)


def amalgamate(name1: str, name2: str, variant: str = "plain") -> Generator:
    """Amg(N1, N2): move all funds of customer 1 to customer 2."""
    cid1 = yield Read(ACCOUNT, name1)
    cid2 = yield Read(ACCOUNT, name2)
    saving1 = yield Read(SAVING, cid1)
    checking1 = yield Read(CHECKING, cid1)
    checking2 = yield Read(CHECKING, cid2)
    yield Write(CHECKING, cid2, checking2 + saving1 + checking1)
    yield Write(SAVING, cid1, 0.0)
    yield Write(CHECKING, cid1, 0.0)


def write_check(name: str, amount: float, variant: str = "plain") -> Generator:
    """WC(N, V): write a check, with a $1 penalty on overdraft.

    The pivot of SmallBank's dangerous structure; the WT-edge fixes of
    Section 2.8.5 modify this program.
    """
    cid = yield Read(ACCOUNT, name)
    if variant == "promote_wt":
        # PromoteWT: identity write on Saving makes the WC->TS edge a
        # ww-conflict (Section 2.8.5).
        saving = yield ReadForUpdate(SAVING, cid)
        yield Write(SAVING, cid, saving)
    elif variant == "materialize_wt":
        token = yield ReadForUpdate(CONFLICT, cid)
        yield Write(CONFLICT, cid, token + 1)
        saving = yield Read(SAVING, cid)
    else:
        saving = yield Read(SAVING, cid)
    checking = yield Read(CHECKING, cid)
    if saving + checking < amount:
        yield Write(CHECKING, cid, checking - amount - 1)
    else:
        yield Write(CHECKING, cid, checking - amount)


def _materialize_peer(name: str, variant: str, edge_peer: str) -> bool:
    """Materialisation must touch the Conflict row in *both* programs of
    the edge; this reports whether a given program needs the extra write."""
    return variant == f"materialize_{edge_peer}"


def transact_saving_variant(name: str, amount: float, variant: str) -> Generator:
    """TS with the MaterializeWT peer write (the other end of the WT edge)."""
    if variant == "materialize_wt":
        cid = yield Get(ACCOUNT, name)
        if cid is None:
            yield Rollback("unknown customer")
        token = yield ReadForUpdate(CONFLICT, cid)
        yield Write(CONFLICT, cid, token + 1)
        saving = yield Read(SAVING, cid)
        if saving + amount < 0:
            yield Rollback("would overdraw savings")
        yield Write(SAVING, cid, saving + amount)
        return
    result = yield from transact_saving(name, amount, variant)
    return result


def write_check_variant(name: str, amount: float, variant: str) -> Generator:
    """WC with the MaterializeBW peer write (the other end of the BW edge)."""
    if variant == "materialize_bw":
        cid = yield Read(ACCOUNT, name)
        token = yield ReadForUpdate(CONFLICT, cid)
        yield Write(CONFLICT, cid, token + 1)
        saving = yield Read(SAVING, cid)
        checking = yield Read(CHECKING, cid)
        if saving + checking < amount:
            yield Write(CHECKING, cid, checking - amount - 1)
        else:
            yield Write(CHECKING, cid, checking - amount)
        return
    result = yield from write_check(name, amount, variant)
    return result


# ----------------------------------------------------------------- workload


def _compound(rng: random.Random, customers: int, variant: str, n_ops: int) -> Generator:
    """Run ``n_ops`` randomly chosen SmallBank operations in one
    transaction — the 'more complex transactions' knob of Section 6.1.4."""
    for _round in range(n_ops):
        single = _single(rng, customers, variant)
        yield from single


def _single(rng: random.Random, customers: int, variant: str) -> Generator:
    choice = rng.randrange(5)
    name = customer_name(rng.randrange(customers))
    amount = float(rng.randint(1, 100))
    if choice == 0:
        return balance(name, variant)
    if choice == 1:
        return deposit_checking(name, amount, variant)
    if choice == 2:
        return transact_saving_variant(name, amount, variant)
    if choice == 3:
        other = customer_name(rng.randrange(customers))
        return amalgamate(name, other, variant)
    return write_check_variant(name, amount, variant)


def make_smallbank(
    customers: int = 100,
    variant: str = "plain",
    ops_per_txn: int = 1,
) -> Workload:
    """Build the SmallBank workload.

    Args:
        customers: table cardinality (contention knob; the Fig 6.1-6.3
            experiments use a small table, Fig 6.4-6.5 use 10x).
        variant: "plain" or one of the Section 2.8.5 fixes.
        ops_per_txn: SmallBank operations per database transaction
            (1 = Figs 6.1/6.2; 10 = the complex workload of Fig 6.3).
    """
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; choose from {VARIANTS}")

    def program(rng: random.Random) -> Generator:
        if ops_per_txn == 1:
            return _single(rng, customers, variant)
        return _compound(rng, customers, variant, ops_per_txn)

    mix = Mix([("smallbank", 1.0, program)])
    return Workload(
        name=f"smallbank[{variant},c={customers},n={ops_per_txn}]",
        setup=lambda db: setup_smallbank(db, customers),
        mix=mix,
    )
