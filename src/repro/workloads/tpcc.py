"""TPC-C (paper Section 2.8.1, with the Section 5.3.1 simplifications).

Implements the nine-table TPC-C schema (History omitted per Section
5.3.1), the data generator with standard and *tiny* scaling (Section
5.3.6), and the five transaction programs: New Order, Payment, Order
Status, Delivery and Stock Level.  TPC-C alone is serializable under SI
(Fekete et al. 2005); the TPC-C++ Credit Check lives in
:mod:`repro.workloads.tpccpp`.

Simplifications, all licensed by Section 5.3.1:

* no terminal emulation / think times;
* no History table;
* total throughput (TPS) is reported, not tpmC;
* ``w_tax`` is treated as client-cached (the warehouse row is only
  written for YTD, which can be skipped via ``skip_ytd``);
* rows are dicts keyed by tuple primary keys; secondary access paths
  (customer-by-last-name, orders-by-customer) are explicit index tables
  maintained by the transactions, as a storage-engine client would.

Cardinality substitution: full TPC-C loads 3 000 customers/district,
100 000 items and 3 000 initial orders/district — hundreds of MB of
Python objects.  The default *standard* scale here divides customers and
items by 10 and seeds 30 open orders per district (enough for Stock
Level's 20-order window).  Contention structure (hot warehouse/district
YTD rows, stock updates, the NewOrder/Delivery queue) is unchanged; see
DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator

from repro.engine.database import Database
from repro.sim.ops import (
    Delete,
    Get,
    IndexLookup,
    Insert,
    Read,
    ReadForUpdate,
    Rollback,
    Scan,
    Write,
)

# Table names -----------------------------------------------------------

WAREHOUSE = "warehouse"          # w_id -> row
DISTRICT = "district"            # (w_id, d_id) -> row
CUSTOMER = "customer"            # (w_id, d_id, c_id) -> row
ORDERS = "orders"                # (w_id, d_id, o_id) -> row
NEW_ORDER = "new_order"          # (w_id, d_id, o_id) -> 1
ORDER_LINE = "order_line"        # (w_id, d_id, o_id, number) -> row
ITEM = "item"                    # i_id -> row
STOCK = "stock"                  # (w_id, i_id) -> row

#: secondary indexes, maintained by the engine (see engine.indexes):
#: customers by last name (the PAY lookup path of Section 2.8.1) and
#: orders by customer (OSTAT's latest-order and CCHECK's join).
CUSTOMER_BY_NAME = "customer_by_name"    # (w, d, last) -> (w, d, c_id)
ORDERS_BY_CUSTOMER = "orders_by_customer"  # (w, d, c_id) -> (w, d, o_id)

ALL_TABLES = (
    WAREHOUSE,
    DISTRICT,
    CUSTOMER,
    ORDERS,
    NEW_ORDER,
    ORDER_LINE,
    ITEM,
    STOCK,
)

DISTRICTS_PER_WAREHOUSE = 10
LAST_NAMES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
)


@dataclass(frozen=True, slots=True)
class TpccScale:
    """Data-scaling parameters (Section 5.3.6).

    ``standard()`` and ``tiny()`` build the two scales of the paper's
    table; tiny divides customers by 30 and items by 100 relative to
    standard, exactly the paper's ratios.
    """

    warehouses: int = 1
    customers_per_district: int = 300
    items: int = 10_000
    initial_orders_per_district: int = 30

    @classmethod
    def standard(cls, warehouses: int = 1) -> "TpccScale":
        return cls(warehouses=warehouses)

    @classmethod
    def tiny(cls, warehouses: int = 1) -> "TpccScale":
        # Paper: customers / 30 (100 per district), items / 100 relative
        # to the full spec; mirrored here against the standard scale.
        return cls(warehouses=warehouses, customers_per_district=100, items=1_000)

    def approx_rows(self) -> dict[str, int]:
        """Row counts per table — reproduces the Section 5.3.6 volume table."""
        w = self.warehouses
        d = w * DISTRICTS_PER_WAREHOUSE
        c = d * self.customers_per_district
        o = d * self.initial_orders_per_district
        return {
            WAREHOUSE: w,
            DISTRICT: d,
            CUSTOMER: c,
            ORDERS: o,
            NEW_ORDER: o,
            ORDER_LINE: o * 10,
            ITEM: self.items,
            STOCK: w * self.items,
        }


def last_name_for(index: int) -> str:
    """The TPC-C syllable-composed last name (spec clause 4.3.2.3)."""
    return (
        LAST_NAMES[(index // 100) % 10]
        + LAST_NAMES[(index // 10) % 10]
        + LAST_NAMES[index % 10]
    )


def setup_tpcc(db: Database, scale: TpccScale, seed: int = 7) -> None:
    """Create and populate all tables at the given scale."""
    rng = random.Random(seed)
    for name in ALL_TABLES:
        db.create_table(name)
    db.create_index(
        CUSTOMER_BY_NAME, CUSTOMER,
        key_func=lambda pk, row: (pk[0], pk[1], row["last"]),
    )
    db.create_index(
        ORDERS_BY_CUSTOMER, ORDERS,
        key_func=lambda pk, row: (pk[0], pk[1], row["c_id"]),
    )

    db.load(ITEM, (
        (i_id, {"price": round(rng.uniform(1.0, 100.0), 2), "name": f"item{i_id}"})
        for i_id in range(1, scale.items + 1)
    ))

    for w_id in range(1, scale.warehouses + 1):
        db.load(WAREHOUSE, [(w_id, {"ytd": 300_000.0, "tax": rng.uniform(0.0, 0.2)})])
        db.load(STOCK, (
            (
                (w_id, i_id),
                {"qty": rng.randint(10, 100), "ytd": 0, "order_cnt": 0},
            )
            for i_id in range(1, scale.items + 1)
        ))
        for d_id in range(1, DISTRICTS_PER_WAREHOUSE + 1):
            _load_district(db, rng, scale, w_id, d_id)


def _load_district(
    db: Database, rng: random.Random, scale: TpccScale, w_id: int, d_id: int
) -> None:
    customers = scale.customers_per_district
    orders = scale.initial_orders_per_district
    db.load(DISTRICT, [(
        (w_id, d_id),
        {"ytd": 30_000.0, "next_o_id": orders + 1, "tax": rng.uniform(0.0, 0.2)},
    )])
    customer_rows = []
    for c_id in range(1, customers + 1):
        last = last_name_for((c_id - 1) % 1000)
        customer_rows.append((
            (w_id, d_id, c_id),
            {
                "balance": -10.0,
                "ytd_payment": 10.0,
                "payment_cnt": 1,
                "delivery_cnt": 0,
                "credit": "GC" if rng.random() < 0.9 else "BC",
                "credit_lim": 50_000.0,
                "last": last,
                "first": f"first{c_id}",
            },
        ))
    db.load(CUSTOMER, customer_rows)

    order_rows, new_order_rows, line_rows = [], [], []
    for o_id in range(1, orders + 1):
        c_id = rng.randint(1, customers)
        ol_cnt = rng.randint(5, 15)
        order_rows.append((
            (w_id, d_id, o_id),
            {"c_id": c_id, "carrier_id": None, "ol_cnt": ol_cnt, "entry_d": 0},
        ))
        new_order_rows.append(((w_id, d_id, o_id), 1))
        for number in range(1, ol_cnt + 1):
            line_rows.append((
                (w_id, d_id, o_id, number),
                {
                    "i_id": rng.randint(1, scale.items),
                    "supply_w": w_id,
                    "qty": 5,
                    "amount": round(rng.uniform(0.01, 9_999.99), 2),
                    "delivery_d": None,
                },
            ))
    db.load(ORDERS, order_rows)
    db.load(NEW_ORDER, new_order_rows)
    db.load(ORDER_LINE, line_rows)


# ------------------------------------------------------------- programs


def new_order(
    rng: random.Random, scale: TpccScale, w_id: int, skip_ytd: bool = False
) -> Generator:
    """NEWO: place an order for 5-15 items.

    Reads the customer's credit status — in TPC-C++ the operator tells the
    customer about a bad rating, which is the CCHECK -> NEWO conflict edge
    of Fig 5.3.  Returns the credit status shown to the customer.
    """
    d_id = rng.randint(1, DISTRICTS_PER_WAREHOUSE)
    c_id = rng.randint(1, scale.customers_per_district)
    ol_cnt = rng.randint(5, 15)

    district = yield ReadForUpdate(DISTRICT, (w_id, d_id))
    o_id = district["next_o_id"]
    yield Write(DISTRICT, (w_id, d_id), {**district, "next_o_id": o_id + 1})

    customer = yield Read(CUSTOMER, (w_id, d_id, c_id))
    credit_shown = customer["credit"]

    total = 0.0
    for number in range(1, ol_cnt + 1):
        i_id = rng.randint(1, scale.items)
        item = yield Get(ITEM, i_id)
        if item is None:
            # TPC-C's 1% intentionally invalid item -> rollback path.
            yield Rollback("invalid item")
        stock = yield ReadForUpdate(STOCK, (w_id, i_id))
        qty = rng.randint(1, 10)
        new_qty = stock["qty"] - qty
        if new_qty < 10:
            new_qty += 91
        yield Write(
            STOCK,
            (w_id, i_id),
            {
                "qty": new_qty,
                "ytd": stock["ytd"] + qty,
                "order_cnt": stock["order_cnt"] + 1,
            },
        )
        amount = round(qty * item["price"], 2)
        total += amount
        yield Insert(
            ORDER_LINE,
            (w_id, d_id, o_id, number),
            {
                "i_id": i_id,
                "supply_w": w_id,
                "qty": qty,
                "amount": amount,
                "delivery_d": None,
            },
        )
    yield Insert(
        ORDERS,
        (w_id, d_id, o_id),
        {"c_id": c_id, "carrier_id": None, "ol_cnt": ol_cnt, "entry_d": 0},
    )  # orders_by_customer is maintained by the engine
    yield Insert(NEW_ORDER, (w_id, d_id, o_id), 1)
    return credit_shown


def payment(
    rng: random.Random, scale: TpccScale, w_id: int, skip_ytd: bool = False
) -> Generator:
    """PAY: accept a payment; 60% lookup by id, 40% by last name."""
    d_id = rng.randint(1, DISTRICTS_PER_WAREHOUSE)
    amount = round(rng.uniform(1.0, 5_000.0), 2)

    if rng.random() < 0.60:
        c_id = rng.randint(1, scale.customers_per_district)
    else:
        last = last_name_for(rng.randrange(min(1000, scale.customers_per_district)))
        matches = yield IndexLookup(CUSTOMER_BY_NAME, (w_id, d_id, last))
        if not matches:
            c_id = rng.randint(1, scale.customers_per_district)
        else:
            # "select the median row" of the sorted matches (Section 2.8.1)
            c_id = matches[(len(matches) + 1) // 2 - 1][2]

    customer = yield ReadForUpdate(CUSTOMER, (w_id, d_id, c_id))
    yield Write(
        CUSTOMER,
        (w_id, d_id, c_id),
        {
            **customer,
            "balance": customer["balance"] - amount,
            "ytd_payment": customer["ytd_payment"] + amount,
            "payment_cnt": customer["payment_cnt"] + 1,
        },
    )
    if not skip_ytd:
        # The w_ytd / d_ytd hot rows: a write-write conflict between every
        # pair of Payments on the same warehouse (Section 5.3.1 motivates
        # the skip_ytd configuration).
        warehouse = yield ReadForUpdate(WAREHOUSE, w_id)
        yield Write(WAREHOUSE, w_id, {**warehouse, "ytd": warehouse["ytd"] + amount})
        district = yield ReadForUpdate(DISTRICT, (w_id, d_id))
        yield Write(DISTRICT, (w_id, d_id), {**district, "ytd": district["ytd"] + amount})


def order_status(rng: random.Random, scale: TpccScale, w_id: int) -> Generator:
    """OSTAT: read a customer's most recent order and its lines (query)."""
    d_id = rng.randint(1, DISTRICTS_PER_WAREHOUSE)
    c_id = rng.randint(1, scale.customers_per_district)
    yield Read(CUSTOMER, (w_id, d_id, c_id))
    own_orders = yield IndexLookup(ORDERS_BY_CUSTOMER, (w_id, d_id, c_id))
    if not own_orders:
        return None
    o_id = max(pk[2] for pk in own_orders)  # the most recent order
    order = yield Read(ORDERS, (w_id, d_id, o_id))
    lines = yield Scan(
        ORDER_LINE, (w_id, d_id, o_id, 0), (w_id, d_id, o_id, 1 << 30)
    )
    return {"o_id": o_id, "carrier_id": order["carrier_id"], "lines": len(lines)}


def delivery(rng: random.Random, scale: TpccScale, w_id: int) -> Generator:
    """DLVY: deliver the oldest undelivered order of one district.

    The paper splits this into DLVY1 (no pending order — reads only) and
    DLVY2 (delivers one); both paths live here, as in the SDG analysis.
    """
    d_id = rng.randint(1, DISTRICTS_PER_WAREHOUSE)
    pending = yield Scan(NEW_ORDER, (w_id, d_id, 0), (w_id, d_id, 1 << 30))
    if not pending:
        return "DLVY1"
    (key, _marker) = pending[0]
    o_id = key[2]
    yield Delete(NEW_ORDER, key)
    order = yield Read(ORDERS, (w_id, d_id, o_id))
    yield Write(ORDERS, (w_id, d_id, o_id), {**order, "carrier_id": rng.randint(1, 10)})
    lines = yield Scan(ORDER_LINE, (w_id, d_id, o_id, 0), (w_id, d_id, o_id, 1 << 30))
    total = 0.0
    for line_key, line in lines:
        total += line["amount"]
        yield Write(ORDER_LINE, line_key, {**line, "delivery_d": 1})
    c_id = order["c_id"]
    customer = yield ReadForUpdate(CUSTOMER, (w_id, d_id, c_id))
    yield Write(
        CUSTOMER,
        (w_id, d_id, c_id),
        {
            **customer,
            "balance": customer["balance"] + total,
            "delivery_cnt": customer["delivery_cnt"] + 1,
        },
    )
    return "DLVY2"


def stock_level(
    rng: random.Random, scale: TpccScale, w_id: int, threshold: int | None = None
) -> Generator:
    """SLEV: count recently-ordered items with stock below a threshold
    (query; reads the last 20 orders' lines — the big rw edge to NEWO)."""
    d_id = rng.randint(1, DISTRICTS_PER_WAREHOUSE)
    threshold = threshold if threshold is not None else rng.randint(10, 20)
    district = yield Read(DISTRICT, (w_id, d_id))
    next_o_id = district["next_o_id"]
    lines = yield Scan(
        ORDER_LINE,
        (w_id, d_id, max(1, next_o_id - 20), 0),
        (w_id, d_id, next_o_id, 0),
    )
    item_ids = {line["i_id"] for _key, line in lines}
    low = 0
    for i_id in sorted(item_ids):
        stock = yield Read(STOCK, (w_id, i_id))
        if stock["qty"] < threshold:
            low += 1
    return low
