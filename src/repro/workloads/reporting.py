"""Reporting — a TPC-H-flavored read-mostly OLAP mix (ROADMAP item 5).

Every other workload in this package issues short OLTP transactions;
this one stresses exactly the paths the paper could not evaluate: long
predicate reads.  A scale-factor generator populates a customer /
orders / lineitem schema (orders keyed by a monotonically increasing id,
so key ranges double as date ranges), and the report queries run large
range scans, secondary-index joins and aggregation concurrently with an
order-entry/payment OLTP stream — the workload class Ports & Grittner
built safe snapshots and the read-only optimization for, and the one
that makes record-vs-page SIREAD granularity (Cahill Sections 4.1-4.6)
matter for lock-table cost.

Report queries (parameterized, TPC-H-flavored):

* ``q1_pricing_summary`` — full lineitem scan, aggregate by discount
  band (TPC-H Q1: the wide-scan stress).
* ``q3_top_orders`` — customers of one segment joined to their orders
  through the ``orders_by_customer`` index, top-N by total (Q3).
* ``q5_region_revenue`` — customer scan filtered by region, index join
  to orders, revenue sum per region (Q5).
* ``q6_revenue_band`` — order range scan over a date (key) window with
  a total/status filter (Q6).
* ``q_recent_orders`` — the newest-orders prefix via ``ScanPrefix``
  (early termination: locks only the visited prefix).

OLTP programs: ``order_entry`` (insert order + lineitems, customer
balance RMW), ``payment`` (balance RMW), ``order_status`` (point reads
of one order and its lineitems).
"""

from __future__ import annotations

import itertools
import random
from typing import Generator

from repro.engine.database import Database
from repro.sim.ops import (
    Compute,
    Get,
    Insert,
    IndexLookup,
    ReadForUpdate,
    Scan,
    ScanPrefix,
    Write,
)
from repro.sim.workload import Mix, Workload

CUSTOMER = "rpt_customer"
ORDERS = "rpt_orders"
LINEITEM = "rpt_lineitem"
ORDERS_BY_CUSTOMER = "rpt_orders_by_customer"

REGIONS = ("africa", "america", "asia", "europe", "pacific")
SEGMENTS = ("automobile", "building", "furniture", "household", "machinery")
STATUSES = ("open", "shipped", "delivered")

#: rows per unit of scale factor
CUSTOMERS_PER_SF = 50
ORDERS_PER_SF = 200
MAX_LINES_PER_ORDER = 4

#: abstract CPU units charged per aggregated row (simulator accounting)
AGG_COST_PER_ROW = 0.1


def order_count(scale: int) -> int:
    return ORDERS_PER_SF * max(1, scale)


def customer_count(scale: int) -> int:
    return CUSTOMERS_PER_SF * max(1, scale)


def setup_reporting(db: Database, scale: int = 1, seed: int = 20080610) -> None:
    """Create and deterministically populate the reporting schema at the
    given scale factor (≈ ``250 + 700`` rows per unit of scale)."""
    rng = random.Random(seed)
    db.create_table(CUSTOMER)
    db.create_table(ORDERS)
    db.create_table(LINEITEM)
    customers = customer_count(scale)
    orders = order_count(scale)
    db.load(CUSTOMER, (
        (c_id, {
            "name": f"customer#{c_id}",
            "region": REGIONS[c_id % len(REGIONS)],
            "segment": rng.choice(SEGMENTS),
            "balance": rng.randrange(0, 10_000),
        })
        for c_id in range(customers)
    ))
    order_rows = []
    line_rows = []
    for o_id in range(orders):
        lines = rng.randrange(1, MAX_LINES_PER_ORDER + 1)
        total = 0
        for n in range(lines):
            qty = rng.randrange(1, 10)
            price = rng.randrange(10, 500)
            discount = rng.randrange(0, 10) / 100.0
            total += round(qty * price * (1 - discount))
            line_rows.append(((o_id, n), {
                "qty": qty, "price": price, "discount": discount,
            }))
        order_rows.append((o_id, {
            "c_id": rng.randrange(customers),
            "date": o_id,  # ids are handed out in date order
            "status": rng.choice(STATUSES),
            "total": total,
        }))
    db.load(ORDERS, order_rows)
    db.load(LINEITEM, line_rows)
    # Non-unique secondary index: the Q3/Q5 join path.
    db.create_index(
        ORDERS_BY_CUSTOMER, ORDERS, lambda pk, row: row["c_id"], unique=False
    )


# ------------------------------------------------------------- report queries

def q1_pricing_summary() -> Generator:
    """Full lineitem scan; revenue and quantity aggregated by discount
    band — the widest scan in the mix."""
    rows = yield Scan(LINEITEM)
    yield Compute(len(rows) * AGG_COST_PER_ROW)
    bands: dict[int, list[float]] = {}
    for _key, item in rows:
        band = int(item["discount"] * 100) // 5
        acc = bands.setdefault(band, [0.0, 0])
        acc[0] += item["qty"] * item["price"] * (1 - item["discount"])
        acc[1] += item["qty"]
    return {band: tuple(acc) for band, acc in sorted(bands.items())}


def q3_top_orders(segment: str, top_n: int = 10) -> Generator:
    """Orders of one customer segment, top-N by total value: customer
    scan -> index join -> order reads -> sort."""
    customers = yield Scan(CUSTOMER)
    matches = [
        c_id for c_id, row in customers if row["segment"] == segment
    ]
    found = []
    for c_id in matches:
        order_ids = yield IndexLookup(ORDERS_BY_CUSTOMER, c_id)
        for o_id in order_ids:
            order = yield Get(ORDERS, o_id)
            if order is not None and order["status"] != "delivered":
                found.append((order["total"], o_id))
    yield Compute(len(found) * AGG_COST_PER_ROW)
    found.sort(reverse=True)
    return found[:top_n]


def q5_region_revenue(region: str) -> Generator:
    """Revenue of one region: customer scan filtered on region, index
    join to each customer's orders, sum of totals."""
    customers = yield Scan(CUSTOMER)
    revenue = 0
    joined = 0
    for c_id, row in customers:
        if row["region"] != region:
            continue
        order_ids = yield IndexLookup(ORDERS_BY_CUSTOMER, c_id)
        for o_id in order_ids:
            order = yield Get(ORDERS, o_id)
            if order is not None:
                revenue += order["total"]
                joined += 1
    yield Compute(joined * AGG_COST_PER_ROW)
    return revenue


def q6_revenue_band(lo: int, hi: int, min_total: int = 200) -> Generator:
    """Revenue forecast: order range scan over the date (= key) window
    [lo, hi], filtered on total and status."""
    rows = yield Scan(ORDERS, lo, hi)
    yield Compute(len(rows) * AGG_COST_PER_ROW)
    return sum(
        row["total"]
        for _o_id, row in rows
        if row["total"] >= min_total and row["status"] != "open"
    )


def q_recent_orders(since: int, limit: int = 10) -> Generator:
    """The first ``limit`` orders at or after ``since`` — the
    early-terminating prefix scan (locks only the visited prefix)."""
    rows = yield ScanPrefix(ORDERS, since, None, limit)
    return [o_id for o_id, _row in rows]


# -------------------------------------------------------------- OLTP programs

def order_entry(o_id: int, c_id: int, lines: list[tuple[int, int, float]],
                status: str = "open") -> Generator:
    """Insert one order with its lineitems and settle the customer's
    balance — the write stream the reports race against."""
    total = 0
    for n, (qty, price, discount) in enumerate(lines):
        total += round(qty * price * (1 - discount))
        yield Insert(LINEITEM, (o_id, n), {
            "qty": qty, "price": price, "discount": discount,
        })
    yield Insert(ORDERS, o_id, {
        "c_id": c_id, "date": o_id, "status": status, "total": total,
    })
    balance = yield ReadForUpdate(CUSTOMER, c_id)
    updated = dict(balance)
    updated["balance"] = balance["balance"] - total
    yield Write(CUSTOMER, c_id, updated)


def payment(c_id: int, amount: int) -> Generator:
    """Customer balance read-modify-write."""
    row = yield ReadForUpdate(CUSTOMER, c_id)
    updated = dict(row)
    updated["balance"] = row["balance"] + amount
    yield Write(CUSTOMER, c_id, updated)


def order_status(o_id: int) -> Generator:
    """Point reads of one order and its first lineitem."""
    order = yield Get(ORDERS, o_id)
    if order is None:
        return None
    line = yield Get(LINEITEM, (o_id, 0))
    return (order["status"], order["total"], line)


# ------------------------------------------------------------------- builders

def make_reporting(
    scale: int = 1,
    reports_per_update: float = 1.0,
    prefix_limit: int = 10,
) -> Workload:
    """The reporting mix: the five report queries (equal weight summing
    to ``reports_per_update``) against an equal-weight OLTP stream of
    order entry, payments and status checks (weight 1 split 3 ways).

    New order ids are drawn from a shared monotone counter starting past
    the loaded id range, so order entry never collides with loaded rows
    and "recent orders" keeps a moving frontier.
    """
    customers = customer_count(scale)
    orders = order_count(scale)
    next_order = itertools.count(orders)
    report_w = reports_per_update / 5.0

    def p_q1(rng: random.Random) -> Generator:
        return q1_pricing_summary()

    def p_q3(rng: random.Random) -> Generator:
        return q3_top_orders(rng.choice(SEGMENTS))

    def p_q5(rng: random.Random) -> Generator:
        return q5_region_revenue(rng.choice(REGIONS))

    def p_q6(rng: random.Random) -> Generator:
        lo = rng.randrange(orders)
        return q6_revenue_band(lo, lo + max(orders // 4, 1))

    def p_recent(rng: random.Random) -> Generator:
        return q_recent_orders(rng.randrange(orders), limit=prefix_limit)

    def p_order_entry(rng: random.Random) -> Generator:
        lines = [
            (rng.randrange(1, 10), rng.randrange(10, 500),
             rng.randrange(0, 10) / 100.0)
            for _ in range(rng.randrange(1, MAX_LINES_PER_ORDER + 1))
        ]
        return order_entry(next(next_order), rng.randrange(customers), lines)

    def p_payment(rng: random.Random) -> Generator:
        return payment(rng.randrange(customers), rng.randrange(1, 500))

    def p_status(rng: random.Random) -> Generator:
        return order_status(rng.randrange(orders))

    mix = Mix([
        ("q1_pricing_summary", report_w, p_q1),
        ("q3_top_orders", report_w, p_q3),
        ("q5_region_revenue", report_w, p_q5),
        ("q6_revenue_band", report_w, p_q6),
        ("q_recent_orders", report_w, p_recent),
        ("order_entry", 1 / 3, p_order_entry),
        ("payment", 1 / 3, p_payment),
        ("order_status", 1 / 3, p_status),
    ])
    return Workload(
        name=f"reporting[sf={scale},r:u={reports_per_update}:1]",
        setup=lambda db: setup_reporting(db, scale),
        mix=mix,
    )


def combine_workloads(name: str, *workloads: Workload) -> Workload:
    """Run several workloads' mixes against one database: setups run in
    order (schemas must be disjoint), mix entries are concatenated with
    their weights untouched."""
    entries: list = []
    for workload in workloads:
        entries.extend(workload.mix.entries)

    def setup(db: Database) -> None:
        for workload in workloads:
            workload.setup(db)

    return Workload(name=name, setup=setup, mix=Mix(entries))


def make_reporting_mix(
    scale: int = 1,
    reports_per_update: float = 1.0,
    oltp: str = "smallbank",
) -> Workload:
    """Reporting concurrently with one of the paper's OLTP mixes
    (``smallbank`` or ``sibench``) — long scans and short writers on the
    same engine, the regime of ROADMAP item 5."""
    from repro.workloads.sibench import make_sibench
    from repro.workloads.smallbank import make_smallbank

    if oltp == "smallbank":
        side = make_smallbank()
    elif oltp == "sibench":
        side = make_sibench()
    else:
        raise ValueError(f"unknown oltp mix {oltp!r}")
    reporting = make_reporting(scale, reports_per_update)
    return combine_workloads(
        f"reporting+{oltp}[sf={scale}]", reporting, side
    )
