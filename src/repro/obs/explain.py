"""Reconstruct *why* a transaction was doomed from the event trace.

``Database.explain_abort(txn_id)`` delegates here.  The explanation is
assembled purely from trace events, so it works after the transaction
record itself has been cleaned up — the debugging affordance the paper's
implementations lacked ("you cannot optimize or debug a
dangerous-structure abort you cannot see").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.trace import EventTrace, EventType, TraceEvent


@dataclass(slots=True)
class PivotTriple:
    """The dangerous structure T_in --rw--> pivot --rw--> T_out.

    Ids may be the string ``"multiple"`` when the conflict slot degraded
    to a self-reference (several conflicts, order lost — Fig 3.9), or
    ``None`` when that side was never recorded.
    """

    t_in: int | str | None
    pivot: int | str | None
    t_out: int | str | None

    def render(self) -> str:
        def show(ref):
            if ref is None:
                return "?"
            if isinstance(ref, str):
                return f"<{ref}>"
            return f"T{ref}"

        return f"{show(self.t_in)} --rw--> {show(self.pivot)} --rw--> {show(self.t_out)}"


@dataclass(slots=True)
class AbortExplanation:
    """Structured answer to "why did transaction X abort?"."""

    txn_id: int
    reason: str | None
    pivot: PivotTriple | None = None
    victim_policy: str | None = None
    #: rw edges touching the transaction: (reader_id, writer_id, ts)
    conflicts: list = field(default_factory=list)
    #: full per-transaction event timeline, oldest first
    timeline: list = field(default_factory=list)

    @property
    def found(self) -> bool:
        return self.reason is not None

    def render(self) -> str:
        lines = [f"transaction {self.txn_id}:"]
        if not self.found:
            lines.append("  no abort recorded in the trace window")
            return "\n".join(lines)
        lines.append(f"  aborted: reason={self.reason}")
        if self.pivot is not None:
            lines.append(f"  dangerous structure: {self.pivot.render()}")
        if self.victim_policy is not None:
            lines.append(f"  victim policy: {self.victim_policy}")
        if self.conflicts:
            lines.append("  rw-antidependencies:")
            for reader, writer, ts in self.conflicts:
                role = "out" if reader == self.txn_id else "in"
                lines.append(f"    [{role}] T{reader} --rw--> T{writer} (ts={ts})")
        lines.append("  timeline:")
        for event in self.timeline:
            extra = " ".join(f"{k}={v}" for k, v in event.data.items())
            lines.append(f"    @{event.ts} {event.type} {extra}".rstrip())
        return "\n".join(lines)


def _triple_from_events(txn_id: int, events: list[TraceEvent]) -> PivotTriple | None:
    """Fallback reconstruction of the pivot triple from raw rw edges when
    no victim/unsafe event recorded it (e.g. the basic boolean tracker)."""
    t_in = t_out = None
    for event in events:
        if event.type != EventType.RW_CONFLICT:
            continue
        reader, writer = event.txn_id, event.data.get("peer")
        if writer == txn_id:
            t_in = reader if t_in in (None, reader) else "multiple"
        elif reader == txn_id:
            t_out = writer if t_out in (None, writer) else "multiple"
    if t_in is None and t_out is None:
        return None
    return PivotTriple(t_in=t_in, pivot=txn_id, t_out=t_out)


def explain_abort(trace: EventTrace, txn_id: int) -> AbortExplanation:
    """Build an :class:`AbortExplanation` for ``txn_id`` from ``trace``.

    Works bottom-up from whatever the retained window still holds: the
    abort event supplies the reason; a victim/unsafe event supplies the
    recorded pivot triple; remaining rw-conflict events corroborate (or,
    for the basic tracker, reconstruct) the dangerous structure.
    """
    timeline = trace.events(txn_id=txn_id)
    explanation = AbortExplanation(txn_id=txn_id, reason=None, timeline=timeline)

    abort_event = None
    for event in reversed(timeline):
        if event.type == EventType.ABORT and event.txn_id == txn_id:
            abort_event = event
            break
    if abort_event is None:
        return explanation
    explanation.reason = abort_event.data.get("reason")

    for event in timeline:
        if event.type == EventType.RW_CONFLICT:
            explanation.conflicts.append(
                (event.txn_id, event.data.get("peer"), event.ts)
            )

    # Prefer the pivot triple captured at detection time.
    for event in reversed(timeline):
        if event.type in (EventType.VICTIM, EventType.UNSAFE) and (
            event.txn_id == txn_id or event.data.get("pivot") == txn_id
        ):
            explanation.pivot = PivotTriple(
                t_in=event.data.get("t_in"),
                pivot=event.data.get("pivot"),
                t_out=event.data.get("t_out"),
            )
            explanation.victim_policy = event.data.get("policy")
            break
    if explanation.pivot is None and explanation.reason == "unsafe":
        explanation.pivot = _triple_from_events(txn_id, timeline)
    return explanation
