"""obs — the engine's unified observability layer.

Three pieces (see DESIGN.md "Observability"):

* :class:`MetricsRegistry` / :class:`CounterGroup` / :class:`Histogram` —
  typed counters and histograms behind one deep-copy snapshot API,
  absorbing the formerly scattered ``stats`` dicts;
* :class:`EventTrace` with pluggable sinks (:class:`RingBufferSink`,
  :class:`JsonlFileSink`) — structured per-transaction lifecycle events,
  off by default and near-zero cost when disabled;
* :func:`explain_abort` — reconstructs why a transaction was doomed
  (including the dangerous-structure pivot triple) from the trace.
"""

from repro.obs.explain import AbortExplanation, PivotTriple, explain_abort
from repro.obs.registry import (
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
    deep_copy_counters,
    json_safe,
)
from repro.obs.trace import (
    CallbackSink,
    EventTrace,
    EventType,
    JsonlFileSink,
    RingBufferSink,
    TraceEvent,
)

__all__ = [
    "AbortExplanation",
    "CallbackSink",
    "CounterGroup",
    "EventTrace",
    "EventType",
    "Gauge",
    "Histogram",
    "JsonlFileSink",
    "MetricsRegistry",
    "PivotTriple",
    "RingBufferSink",
    "TraceEvent",
    "deep_copy_counters",
    "explain_abort",
    "json_safe",
]
