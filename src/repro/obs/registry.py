"""Typed metrics: counters, counter groups and histograms.

The engine used to report its telemetry through three disconnected ad-hoc
dicts (``Database.stats``, ``LockManager.stats``, tracker stats).  The
:class:`MetricsRegistry` absorbs them behind one snapshot API — the
``pg_stat``-style counter surface the PostgreSQL SSI implementation leans
on to validate and tune its algorithm (Ports & Grittner, VLDB 2012).

Design constraints:

* **Hot-path cost ~ a dict increment.**  :class:`CounterGroup` is a
  ``dict`` subclass, so ``stats["reads"] += 1`` in the engine's read path
  compiles to the exact native-dict operations it always did; the
  registry only adds *snapshot* semantics around the same storage.
* **Snapshots are deep and JSON-safe.**  :meth:`MetricsRegistry.snapshot`
  returns plain nested dicts of ints/floats, recursively copied, so an
  exported snapshot never aliases live engine state and always survives
  strict ``json.dumps`` (no ``Infinity``/``NaN``).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Mapping

#: The obs latch — the *leaf* of the engine's latch hierarchy (see
#: :mod:`repro.engine.latches`): it may be taken while holding any other
#: engine latch, and nothing may be acquired under it.  One module-level
#: latch (rather than per-registry) keeps :meth:`CounterGroup.inc` usable
#: on groups that were never registered, and contention on it is
#: negligible at engine scale.  It serialises: cross-thread counter
#: increments that are not already guarded by an engine latch
#: (:meth:`CounterGroup.inc`), multi-field histogram observation, trace
#: emission, and registry snapshots — fixing the torn-snapshot reads a
#: concurrent ``snapshot()`` could previously produce (e.g. a histogram
#: whose ``count`` was bumped but whose ``total`` was not yet).
OBS_LATCH = threading.RLock()


def deep_copy_counters(mapping: Mapping) -> dict:
    """Recursively copy a counter mapping into plain dicts."""
    return {
        key: deep_copy_counters(value) if isinstance(value, Mapping) else value
        for key, value in mapping.items()
    }


def json_safe(obj: Any) -> Any:
    """Recursively convert ``obj`` into strictly-JSON-serialisable data.

    Non-finite floats become ``None`` (``json.dumps`` would otherwise emit
    the non-standard ``Infinity``/``NaN`` literals that silently corrupt
    trajectory files); mappings and sequences are copied; any other
    non-scalar value is rendered via ``str``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, Mapping):
        return {str(key): json_safe(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in obj]
    return str(obj)


class CounterGroup(dict):
    """A named group of counters with native-dict increment speed.

    Values are ints (or nested :class:`CounterGroup`/dicts for
    sub-buckets, e.g. the per-reason abort counts).  The group itself is
    what engine components mutate directly; the registry holds a
    reference and deep-copies on snapshot.
    """

    __slots__ = ()

    def inc(self, key: str, n: int = 1) -> None:
        """Atomic increment for counters shared across threads.

        ``stats["reads"] += 1`` stays the idiom on paths that already run
        under an engine latch; ``inc`` is for increments with no other
        guard (it takes the obs latch around the read-modify-write).
        """
        with OBS_LATCH:
            self[key] = self.get(key, 0) + n

    def snapshot(self) -> dict:
        """Deep plain-dict copy; safe to hand out and to serialise."""
        with OBS_LATCH:
            return deep_copy_counters(self)

    def reset(self) -> None:
        """Zero every counter, recursively, in place."""
        for key, value in self.items():
            if isinstance(value, Mapping):
                for sub in value:
                    value[sub] = 0
            else:
                self[key] = 0


class Histogram:
    """A streaming histogram: count/sum/min/max plus fixed buckets.

    Buckets are upper-bound edges (``le``); one overflow bucket catches
    everything above the last edge.  Cheap enough to observe on engine
    paths (a bisect over a handful of edges) and summarises without
    retaining samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_edges", "_buckets")

    #: default edges suit both sub-millisecond waits and chain lengths
    DEFAULT_EDGES = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)

    def __init__(self, name: str, edges: Iterable[float] | None = None):
        self.name = name
        self._edges = tuple(edges) if edges is not None else self.DEFAULT_EDGES
        self._buckets = [0] * (len(self._edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        # Multi-field update: without the latch a concurrent snapshot()
        # could see count bumped but total stale (a torn read).
        with OBS_LATCH:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, edge in enumerate(self._edges):
                if value <= edge:
                    self._buckets[index] += 1
                    return
            self._buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Plain-dict summary; all values finite and JSON-safe."""
        with OBS_LATCH:
            return {
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
                "buckets": {
                    **{
                        f"le_{edge:g}": n
                        for edge, n in zip(self._edges, self._buckets)
                    },
                    "overflow": self._buckets[-1],
                },
            }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._buckets = [0] * (len(self._edges) + 1)

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class Gauge:
    """A sampled instantaneous value — current lock-table size, active
    transaction count — probed from a callable at read time.

    Counters only ever grow; a gauge answers "how big is it *right now*",
    which is the question memory-bounding machinery (the SIREAD budget)
    is judged on.  The callable must be safe to invoke from any thread
    and may take engine latches, so gauges are sampled *outside* the obs
    latch (engine latches rank below it).
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn):
        self.name = name
        self.fn = fn

    def read(self):
        return self.fn()

    def __repr__(self) -> str:
        return f"Gauge({self.name!r})"


class MetricsRegistry:
    """The unified telemetry surface of one :class:`~repro.engine.database.Database`.

    Components register their :class:`CounterGroup` (keeping a direct
    reference for hot-path increments); consumers call :meth:`snapshot`
    and get an isolated deep copy of everything.
    """

    def __init__(self):
        self._groups: dict[str, CounterGroup] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}

    # -------------------------------------------------------- registration

    def group(self, name: str, initial: Mapping | None = None) -> CounterGroup:
        """Create (or fetch) a counter group.  ``initial`` seeds counters
        on first creation; nested mappings become nested groups."""
        with OBS_LATCH:
            existing = self._groups.get(name)
            if existing is not None:
                return existing
            group = CounterGroup()
            for key, value in (initial or {}).items():
                group[key] = (
                    CounterGroup(value) if isinstance(value, Mapping) else value
                )
            self._groups[name] = group
            return group

    def register_group(self, name: str, group: Mapping) -> CounterGroup:
        """Adopt an externally-created group (e.g. the lock manager's)."""
        if not isinstance(group, CounterGroup):
            group = CounterGroup(group)
        with OBS_LATCH:
            self._groups[name] = group
        return group

    def histogram(self, name: str, edges: Iterable[float] | None = None) -> Histogram:
        with OBS_LATCH:
            existing = self._histograms.get(name)
            if existing is not None:
                return existing
            histogram = Histogram(name, edges)
            self._histograms[name] = histogram
            return histogram

    def register_gauge(self, name: str, fn) -> Gauge:
        """Register a sampled instantaneous metric (see :class:`Gauge`)."""
        gauge = Gauge(name, fn)
        with OBS_LATCH:
            self._gauges[name] = gauge
        return gauge

    # ------------------------------------------------------------ queries

    def groups(self) -> dict[str, CounterGroup]:
        return dict(self._groups)

    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    def snapshot(self) -> dict:
        """Deep, immutable-by-copy snapshot of every registered metric.

        The result contains only plain dicts, ints, floats and None, so
        it round-trips through strict JSON and never aliases live state.
        """
        # Gauges first, *outside* the obs latch: their probes may take
        # engine latches (lock-manager owner latch for table_size), which
        # rank below the obs leaf and must not nest under it.
        with OBS_LATCH:
            gauge_list = list(self._gauges.values())
        gauges = {gauge.name: json_safe(gauge.read()) for gauge in gauge_list}
        with OBS_LATCH:
            return {
                "counters": {
                    name: group.snapshot() for name, group in self._groups.items()
                },
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in self._histograms.items()
                },
                "gauges": gauges,
            }

    def reset(self) -> None:
        with OBS_LATCH:
            for group in self._groups.values():
                group.reset()
            for histogram in self._histograms.values():
                histogram.reset()
