"""Structured per-transaction lifecycle event tracing.

Off by default.  When enabled, the engine emits one :class:`TraceEvent`
per interesting transition — begin, lock wait/grant/deny, rw-conflict
flag transition, victim selection, dangerous-structure abort (with the
full pivot triple), commit, suspend, cleanup — to pluggable sinks.

Overhead discipline: every emission site in the engine is guarded by a
single ``if trace is not None`` attribute test, so a database without
tracing pays one pointer comparison per site and allocates nothing.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.obs.registry import OBS_LATCH, json_safe


class EventType:
    """String constants for the traced lifecycle transitions."""

    BEGIN = "begin"
    SNAPSHOT = "snapshot"
    LOCK_WAIT = "lock_wait"
    LOCK_GRANT = "lock_grant"
    LOCK_DENY = "lock_deny"
    RW_CONFLICT = "rw_conflict"
    MIXED_EDGE = "mixed_edge_dropped"
    VICTIM = "victim"
    UNSAFE = "unsafe"
    COMMIT = "commit"
    PREPARE = "prepare"
    SUSPEND = "suspend"
    CLEANUP = "cleanup"
    ABORT = "abort"
    CALLBACK_ERROR = "lock_callback_error"

    ALL = (
        BEGIN, SNAPSHOT, LOCK_WAIT, LOCK_GRANT, LOCK_DENY, RW_CONFLICT,
        MIXED_EDGE, VICTIM, UNSAFE, COMMIT, PREPARE, SUSPEND, CLEANUP,
        ABORT, CALLBACK_ERROR,
    )


@dataclass(slots=True, frozen=True)
class TraceEvent:
    """One structured lifecycle event.

    Attributes:
        seq: monotonically increasing emission order.
        ts: the engine's logical clock at emission time.
        type: one of the :class:`EventType` constants.
        txn_id: the transaction the event belongs to.
        data: event-specific payload (peer ids, lock resource, reason...).
    """

    seq: int
    ts: int
    type: str
    txn_id: int
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "type": self.type,
            "txn": self.txn_id,
            **json_safe(self.data),
        }

    def __repr__(self) -> str:
        extra = " ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"<{self.seq}@{self.ts} {self.type} txn={self.txn_id} {extra}>".rstrip()


class RingBufferSink:
    """Bounded in-memory sink: keeps the most recent ``capacity`` events.

    Not internally locked: :meth:`EventTrace.emit` serialises all sink
    calls under the obs latch, and ``deque`` iteration for :meth:`events`
    is safe against concurrent appends under CPython's GIL.
    """

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def events(self) -> list[TraceEvent]:
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)


class JsonlFileSink:
    """Streams events as JSON lines to a file.

    Every line is strictly-valid JSON (non-finite floats are rendered as
    ``null``), so a trajectory file written by this sink always parses
    back under ``json.loads(..., parse_constant=<reject>)``.
    """

    def __init__(self, path, flush_every: int = 256):
        self.path = path
        self._file = open(path, "w", encoding="utf-8")
        self._flush_every = flush_every
        self._since_flush = 0
        self.written = 0

    def emit(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict(), allow_nan=False))
        self._file.write("\n")
        self.written += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._file.flush()
            self._since_flush = 0

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "JsonlFileSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class CallbackSink:
    """Adapter: forward each event to a callable (tests, live dashboards)."""

    def __init__(self, callback: Callable[[TraceEvent], None]):
        self._callback = callback

    def emit(self, event: TraceEvent) -> None:
        self._callback(event)


class EventTrace:
    """The event-trace layer: sequences events and fans out to sinks.

    Args:
        sinks: sink objects with an ``emit(event)`` method.  When empty, a
            default :class:`RingBufferSink` is attached so
            :meth:`events` always works.
        clock: zero-arg callable returning the current logical timestamp;
            the database passes its own clock.
    """

    def __init__(self, *sinks, clock: Callable[[], int] | None = None,
                 capacity: int = 8192):
        self.sinks = list(sinks) if sinks else [RingBufferSink(capacity)]
        self._clock = clock or (lambda: 0)
        self._seq = 0

    def bind_clock(self, clock: Callable[[], int]) -> None:
        self._clock = clock

    def emit(self, etype: str, txn_id: int, **data) -> TraceEvent:
        # The obs latch makes sequence allocation atomic and serialises
        # sink fan-out: a ring-buffer append (deque mutation + dropped
        # bookkeeping) and a JSONL write are not safe under concurrent
        # emitters otherwise.  Sinks must not re-enter the engine.
        with OBS_LATCH:
            event = TraceEvent(
                seq=self._seq, ts=self._clock(), type=etype, txn_id=txn_id,
                data=data,
            )
            self._seq += 1
            for sink in self.sinks:
                sink.emit(event)
        return event

    # ------------------------------------------------------------ queries

    def _buffer(self) -> RingBufferSink | None:
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink
        return None

    def events(
        self,
        txn_id: int | None = None,
        etype: str | Iterable[str] | None = None,
    ) -> list[TraceEvent]:
        """Events retained in the first ring-buffer sink, optionally
        filtered by transaction and/or event type(s)."""
        buffer = self._buffer()
        if buffer is None:
            return []
        types = {etype} if isinstance(etype, str) else (set(etype) if etype else None)
        return [
            event
            for event in buffer
            if (txn_id is None or event.txn_id == txn_id
                or event.data.get("peer") == txn_id)
            and (types is None or event.type in types)
        ]

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
