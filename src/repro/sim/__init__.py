"""Discrete-event concurrency simulation.

The paper's evaluation measures wall-clock throughput of C engines under
real thread concurrency; the GIL makes that meaningless in Python, so the
benchmarks here drive the *real* engine (every lock wait, abort and
conflict is genuine) while simulating the passage of time: CPU cost per
operation on a configurable number of cores, commit log flushes with
group commit, lock waits that suspend simulated clients, and periodic
deadlock sweeps.  Throughput-vs-MPL curves therefore preserve the paper's
shapes: who blocks, who aborts and who waits for the disk are all decided
by the actual concurrency control code.

Transaction programs are generator functions yielding
:mod:`~repro.sim.ops` descriptors; the same programs run under the
simulator, the exhaustive interleaving driver, and plain sequential
executors.
"""

from repro.sim.ops import (
    Compute,
    Delete,
    Get,
    IndexLookup,
    IndexScan,
    Insert,
    Read,
    ReadForUpdate,
    Rollback,
    Scan,
    Write,
)
from repro.sim.metrics import SimResult
from repro.sim.scheduler import SimConfig, Simulator
from repro.sim.workload import Mix, Workload
from repro.sim.interleave import run_interleaving, all_interleavings, exhaustive_outcomes
from repro.sim.direct import run_program

__all__ = [
    "Read",
    "Get",
    "ReadForUpdate",
    "Write",
    "Insert",
    "Delete",
    "Scan",
    "IndexScan",
    "IndexLookup",
    "Compute",
    "Rollback",
    "SimConfig",
    "Simulator",
    "SimResult",
    "Mix",
    "Workload",
    "run_program",
    "run_interleaving",
    "all_interleavings",
    "exhaustive_outcomes",
]
