"""Workload abstraction: a weighted mix of transaction programs.

A workload supplies (program name, generator) pairs; the simulator's
clients draw from it continuously.  Concrete workloads (SmallBank,
sibench, TPC-C++) live in :mod:`repro.workloads`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Sequence


#: A program factory: given the client RNG, return a fresh generator.
ProgramFactory = Callable[[random.Random], Generator]


@dataclass(frozen=True, slots=True)
class Mix:
    """A weighted transaction mix."""

    entries: Sequence[tuple[str, float, ProgramFactory]]

    def sample(self, rng: random.Random) -> tuple[str, Generator]:
        total = sum(weight for _name, weight, _factory in self.entries)
        point = rng.random() * total
        acc = 0.0
        for name, weight, factory in self.entries:
            acc += weight
            if point < acc:
                return name, factory(rng)
        name, _weight, factory = self.entries[-1]
        return name, factory(rng)

    def names(self) -> list[str]:
        return [name for name, _weight, _factory in self.entries]


class Workload:
    """Binds a database-populating setup function to a transaction mix.

    Args:
        name: label used in benchmark output.
        setup: callable(db) that creates tables and loads initial data.
        mix: the transaction mix clients execute.
    """

    def __init__(self, name: str, setup: Callable, mix: Mix):
        self.name = name
        self.setup = setup
        self.mix = mix

    def next_transaction(self, rng: random.Random) -> tuple[str, Generator]:
        return self.mix.sample(rng)

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, programs={self.mix.names()})"
