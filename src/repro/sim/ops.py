"""Operation descriptors for transaction programs.

A transaction program is a generator function that yields these
descriptors and receives each operation's result back::

    def balance(name):
        cid = yield Read("account", name)
        savings = yield Read("saving", cid)
        checking = yield Read("checking", cid)
        return savings + checking

Programs are executor-agnostic: the discrete-event simulator charges
simulated time per op; the direct executor just runs them; the exhaustive
interleaving driver single-steps them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable


@dataclass(frozen=True, slots=True)
class Read:
    """Point read; the program receives the value (KeyNotFound aborts)."""

    table: str
    key: Hashable


@dataclass(frozen=True, slots=True)
class Get:
    """Point read returning ``default`` when the key is not visible."""

    table: str
    key: Hashable
    default: Any = None


@dataclass(frozen=True, slots=True)
class ReadForUpdate:
    """SELECT ... FOR UPDATE — the promotion primitive (Section 2.6.2)."""

    table: str
    key: Hashable


@dataclass(frozen=True, slots=True)
class Write:
    """Blind upsert of an existing (or new, non-phantom-safe) key."""

    table: str
    key: Hashable
    value: Any


@dataclass(frozen=True, slots=True)
class Insert:
    """Phantom-safe creation of a new key."""

    table: str
    key: Hashable
    value: Any


@dataclass(frozen=True, slots=True)
class Delete:
    """Phantom-safe removal (installs a tombstone)."""

    table: str
    key: Hashable


@dataclass(frozen=True, slots=True)
class Scan:
    """Predicate read: visible (key, value) pairs with lo <= key <= hi."""

    table: str
    lo: Hashable | None = None
    hi: Hashable | None = None


@dataclass(frozen=True, slots=True)
class ScanPrefix:
    """Early-terminating predicate read: the first ``limit`` visible
    rows of [lo, hi] ascending, locking only the visited prefix."""

    table: str
    lo: Hashable | None = None
    hi: Hashable | None = None
    limit: int | None = None


@dataclass(frozen=True, slots=True)
class IndexScan:
    """Range scan over a secondary index: (index_key, primary_key) pairs."""

    index: str
    lo: Hashable | None = None
    hi: Hashable | None = None


@dataclass(frozen=True, slots=True)
class IndexLookup:
    """Primary keys of rows matching one index key."""

    index: str
    key: Hashable


@dataclass(frozen=True, slots=True)
class Compute:
    """Pure CPU work of ``units`` abstract cost units — e.g. the sort in
    the sibench query.  No engine interaction."""

    units: float = 1.0


@dataclass(frozen=True, slots=True)
class Rollback:
    """Voluntary application rollback (SmallBank's business rules); the
    transaction aborts with reason "constraint"."""

    message: str = "application rollback"


Op = (
    Read | Get | ReadForUpdate | Write | Insert | Delete | Scan
    | ScanPrefix | IndexScan | IndexLookup | Compute | Rollback
)


def apply_op(db, txn, op: Op) -> Any:
    """Execute one descriptor against the engine (shared by executors).

    May raise :class:`~repro.errors.LockWaitRequired` — callers decide how
    to wait — or any abort error.  :class:`Compute` is a no-op here
    (executors account for its cost).  :class:`Rollback` raises
    ConstraintError after aborting.
    """
    from repro.errors import ConstraintError

    if isinstance(op, Read):
        return db.read(txn, op.table, op.key)
    if isinstance(op, Get):
        return db.get(txn, op.table, op.key, op.default)
    if isinstance(op, ReadForUpdate):
        return db.read_for_update(txn, op.table, op.key)
    if isinstance(op, Write):
        return db.write(txn, op.table, op.key, op.value)
    if isinstance(op, Insert):
        return db.insert(txn, op.table, op.key, op.value)
    if isinstance(op, Delete):
        return db.delete(txn, op.table, op.key)
    if isinstance(op, Scan):
        return db.scan(txn, op.table, op.lo, op.hi)
    if isinstance(op, ScanPrefix):
        return db.scan_prefix(txn, op.table, op.lo, op.hi, limit=op.limit)
    if isinstance(op, IndexScan):
        return db.index_scan(txn, op.index, op.lo, op.hi)
    if isinstance(op, IndexLookup):
        return db.index_lookup(txn, op.index, op.key)
    if isinstance(op, Compute):
        return None
    if isinstance(op, Rollback):
        db.abort(txn, reason="constraint")
        raise ConstraintError(op.message, txn_id=txn.id)
    raise TypeError(f"unknown op {op!r}")
