"""The discrete-event simulator.

Models the paper's measurement rig: MPL clients executing transactions
back-to-back with no think time (Section 6.1), a CPU with configurable
core count, and a write-ahead log device with group commit whose flush
latency dominates the "long transactions" experiments (Section 6.1.3).

Time is simulated; concurrency control is real.  Clients are parked when
the engine enqueues a lock request and resume when the lock manager
resolves it; periodic deadlock sweeps run on simulated intervals for
Berkeley DB-style engines.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.engine.config import DeadlockMode
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.errors import (
    ConstraintError,
    DuplicateKeyError,
    KeyNotFoundError,
    LockWaitRequired,
    TransactionAbortedError,
)
from repro.locking.manager import RequestState
from repro.sim.metrics import SimResult
from repro.sim.ops import Compute, apply_op
from repro.sim.workload import Workload


@dataclass(slots=True)
class SimConfig:
    """Simulation parameters.

    Attributes:
        duration: measured simulated seconds.
        warmup: simulated seconds before counters start.
        cores: CPU cores (the paper's testbed is a single-core Athlon64).
        op_cost: CPU seconds per engine operation (~tens of µs, giving the
            ~20k commits/s ceiling of Fig 6.1 for 4-5-op transactions).
        compute_unit_cost: CPU seconds per Compute unit.
        commit_flush: pay a log flush at commit (the Fig 6.2/6.3 regime;
            ~10 ms turns 100 µs transactions into 10 ms ones).
        flush_time: log-flush latency in seconds.
        group_commit: one flush commits every transaction queued behind it.
        deadlock_interval: sweep period for PERIODIC deadlock detection
            (db_perf runs it twice per second — Section 6.1.3).
        think_time: client delay between transactions (0 per the paper).
        lock_op_cost: CPU seconds per lock-manager request — this is how
            "the additional lock manager activity required by Serializable
            SI" (Section 1.4.3) costs something: an SSI or S2PL scan pays
            per row+gap, a plain SI scan pays nothing.
        vacuum_interval: simulated seconds between version garbage
            collections (0 disables) — keeps version chains bounded in
            long runs, like Berkeley DB's old-version reclamation.
        seed: RNG seed (per-client streams derive from it).

    Read-only transactions skip the commit flush (they write no log
    records); writers hold their locks through the flush, the
    flush-then-release ordering the paper enforces in InnoDB (Section 4.4).
    """

    duration: float = 5.0
    warmup: float = 0.5
    cores: int = 1
    op_cost: float = 25e-6
    compute_unit_cost: float = 2e-6
    commit_flush: bool = False
    flush_time: float = 0.010
    group_commit: bool = True
    deadlock_interval: float = 0.5
    think_time: float = 0.0
    lock_op_cost: float = 1e-6
    vacuum_interval: float = 0.0
    seed: int = 42


class _Client:
    __slots__ = (
        "index", "rng", "isolation", "name", "program", "txn", "started_at", "parked"
    )

    def __init__(self, index: int, rng: random.Random, isolation: IsolationLevel):
        self.index = index
        self.rng = rng
        self.isolation = isolation
        self.name: str | None = None
        self.program: Generator | None = None
        self.txn = None
        self.started_at = 0.0
        self.parked = False


class _LogDevice:
    """Group-commit log: one flush, many commits (Section 6.1.3)."""

    def __init__(self, simulator: "Simulator"):
        self._sim = simulator
        self._busy = False
        self._queue: list[Callable[[], None]] = []

    def submit(self, on_durable: Callable[[], None]) -> None:
        self._queue.append(on_durable)
        if not self._busy:
            self._start_flush()

    def _start_flush(self) -> None:
        self._busy = True
        if self._sim.config.group_commit:
            batch, self._queue = self._queue, []
        else:
            batch, self._queue = [self._queue[0]], self._queue[1:]
        done_at = self._sim.now + self._sim.config.flush_time

        def complete() -> None:
            for on_durable in batch:
                on_durable()
            self._busy = False
            if self._queue:
                self._start_flush()

        self._sim.schedule_at(done_at, complete)


class Simulator:
    """Runs one (workload, isolation level, MPL) configuration."""

    def __init__(
        self,
        database: Database,
        workload: Workload,
        isolation: IsolationLevel | str,
        mpl: int,
        config: SimConfig | None = None,
        isolation_overrides: dict | None = None,
    ):
        self.db = database
        self.workload = workload
        self.isolation = IsolationLevel.parse(isolation)
        #: per-program-name isolation override — the Section 3.8
        #: configuration runs queries at SNAPSHOT among SSI updates.
        self.isolation_overrides = {
            name: IsolationLevel.parse(level)
            for name, level in (isolation_overrides or {}).items()
        }
        self.mpl = mpl
        self.config = config or SimConfig()
        self.now = 0.0
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cores = [0.0] * self.config.cores
        self._log = _LogDevice(self)
        self.result = SimResult(
            isolation=self.isolation.value, mpl=mpl, duration=self.config.duration
        )
        self._horizon = self.config.warmup + self.config.duration
        #: lock-wait histogram, cached off the database's registry so the
        #: park/wake path pays one attribute load per wait.
        self._h_lock_wait = database.metrics.histogram("lock_wait_time")

    # ------------------------------------------------------------ plumbing

    def schedule_at(self, when: float, fn: Callable[[], None]) -> None:
        heapq.heappush(self._events, (when, next(self._seq), fn))

    def _cpu_slot(self, ready: float, cost: float) -> float:
        """Reserve CPU time; returns the completion time."""
        core = min(range(len(self._cores)), key=self._cores.__getitem__)
        start = max(ready, self._cores[core])
        end = start + cost
        self._cores[core] = end
        return end

    def _measuring(self) -> bool:
        return self.now >= self.config.warmup

    # ------------------------------------------------------------ main loop

    def run(self) -> SimResult:
        clients = [
            _Client(
                index,
                random.Random((self.config.seed << 16) ^ (index * 2654435761 % 2**31)),
                self.isolation,
            )
            for index in range(self.mpl)
        ]
        for client in clients:
            self._begin_transaction(client)
        if self.db.config.deadlock_mode is DeadlockMode.PERIODIC:
            self._schedule_deadlock_sweep()
        if self.config.vacuum_interval > 0:
            self._schedule_vacuum()
        while self._events:
            when, _seq, fn = heapq.heappop(self._events)
            if when > self._horizon:
                break
            self.now = when
            fn()
        # One deep, immutable-by-copy snapshot from the engine's metrics
        # registry: exported results never alias live engine state (the
        # nested aborts dict in particular used to leak by reference).
        snapshot = self.db.metrics.snapshot()
        self.result.engine_stats = {
            "locks": snapshot["counters"]["locks"],
            "tracker": snapshot["counters"]["tracker"],
            "engine": snapshot["counters"]["engine"],
            "histograms": snapshot["histograms"],
            "suspended_peak": snapshot["counters"]["engine"]["suspended_peak"],
        }
        return self.result

    def _schedule_periodic(self, start: float, interval: float, action) -> None:
        """Run ``action`` every ``interval`` simulated seconds.

        Each tick re-schedules from its *intended* fire time, not from
        ``self.now`` inside the callback: if a tick ever runs late (event
        bursts scheduled ahead of it at the same timestamp, or a callback
        that advances the clock), the cadence catches back up instead of
        permanently slipping by the delay."""

        def tick(fire_at: float) -> None:
            action()
            next_at = fire_at + interval
            self.schedule_at(next_at, lambda: tick(next_at))

        first = start + interval
        self.schedule_at(first, lambda: tick(first))

    def _schedule_deadlock_sweep(self) -> None:
        self._schedule_periodic(
            self.now, self.config.deadlock_interval, self.db.sweep_deadlocks
        )

    def _schedule_vacuum(self) -> None:
        self._schedule_periodic(
            self.now, self.config.vacuum_interval, self.db.vacuum
        )

    # -------------------------------------------------------- client logic

    def _begin_transaction(self, client: _Client) -> None:
        client.name, client.program = self.workload.next_transaction(client.rng)
        level = self.isolation_overrides.get(client.name, self.isolation)
        client.txn = self.db.begin(level)
        client.started_at = self.now
        self._resume(client, to_send=None)

    def _resume(self, client: _Client, to_send) -> None:
        """Advance the program generator to its next op (or commit)."""
        try:
            op = client.program.send(to_send)
        except StopIteration:
            self._commit(client)
            return
        cost = self.config.op_cost
        if isinstance(op, Compute):
            cost = op.units * self.config.compute_unit_cost
        done = self._cpu_slot(self.now, cost)
        self.schedule_at(done, lambda: self._execute(client, op))

    def _execute(self, client: _Client, op) -> None:
        txn = client.txn
        acquires_before = self.db.locks.stats["acquires"]
        try:
            result = apply_op(self.db, txn, op)
        except LockWaitRequired as wait:
            self._park(client, op, wait.request)
            return
        except ConstraintError:
            self._finish_aborted(client, "constraint")
            return
        except TransactionAbortedError as error:
            self._finish_aborted(client, error.reason)
            return
        except (DuplicateKeyError, KeyNotFoundError):
            self.db.abort(txn, reason="constraint")
            self._finish_aborted(client, "constraint")
            return
        lock_calls = self.db.locks.stats["acquires"] - acquires_before
        extra = lock_calls * self.config.lock_op_cost
        if extra > 0:
            done = self._cpu_slot(self.now, extra)
            self.schedule_at(done, lambda: self._resume(client, to_send=result))
        else:
            self._resume(client, to_send=result)

    def _park(self, client: _Client, op, request) -> None:
        client.parked = True
        wait_started = self.now
        timeout = self.db.config.lock_timeout
        if timeout is not None:
            def fire_timeout() -> None:
                self.db.cancel_lock_request(request)

            self.schedule_at(self.now + timeout, fire_timeout)

        def on_resolve(resolved) -> None:
            def wake() -> None:
                client.parked = False
                self._h_lock_wait.observe(self.now - wait_started)
                if resolved.state is RequestState.GRANTED:
                    self._execute(client, op)
                else:
                    error = resolved.error
                    reason = getattr(error, "reason", "aborted")
                    self.db.abort(client.txn)
                    self._finish_aborted(client, reason)

            self.schedule_at(self.now, wake)

        request.on_resolve(on_resolve)

    def _commit(self, client: _Client) -> None:
        txn = client.txn
        has_writes = bool(txn.write_set)
        try:
            self.db.prepare_commit(txn)
        except TransactionAbortedError as error:
            self._finish_aborted(client, error.reason)
            return

        def durable() -> None:
            self.db.finalize_commit(txn)
            if self._measuring():
                self.result.commits += 1
                self.result.commits_by_type[client.name] = (
                    self.result.commits_by_type.get(client.name, 0) + 1
                )
                self.result.response_time_sum += self.now - client.started_at
            self._next(client)

        if self.config.commit_flush and has_writes:
            self._log.submit(durable)
        else:
            durable()

    def _finish_aborted(self, client: _Client, reason: str) -> None:
        if self._measuring():
            bucket = reason if reason in self.result.aborts else "aborted"
            self.result.aborts[bucket] += 1
        self._next(client)

    def _next(self, client: _Client) -> None:
        when = self.now + self.config.think_time
        if when > self._horizon:
            return
        self.schedule_at(when, lambda: self._begin_transaction(client))


def run_simulation(
    workload: Workload,
    isolation: IsolationLevel | str,
    mpl: int,
    engine_config=None,
    sim_config: SimConfig | None = None,
) -> SimResult:
    """Convenience: fresh database + populate + simulate."""
    db = Database(engine_config)
    workload.setup(db)
    return Simulator(db, workload, isolation, mpl, sim_config).run()
