"""Direct (non-simulated) program execution.

Runs a transaction program against the engine in the calling thread,
blocking through lock waits.  Used by examples and tests that need the
declarative programs of :mod:`repro.workloads` without the simulator.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.errors import ConstraintError, LockWaitRequired
from repro.sim.ops import apply_op


def run_program(
    db: Database,
    program: Generator,
    isolation: IsolationLevel | str = IsolationLevel.SERIALIZABLE_SSI,
    txn=None,
) -> Any:
    """Execute a program generator in one transaction and commit it.

    Returns the program's return value.  Abort errors (unsafe, conflict,
    deadlock, constraint) propagate to the caller with the transaction
    already rolled back.
    """
    own_txn = txn is None
    if own_txn:
        txn = db.begin(isolation)
    to_send = None
    try:
        while True:
            try:
                op = program.send(to_send)
            except StopIteration as stop:
                if own_txn:
                    txn.commit()
                return stop.value
            to_send = _apply_blocking(db, txn, op)
    except BaseException:
        if txn.is_active:
            db.abort(txn)
        raise


def _apply_blocking(db: Database, txn, op) -> Any:
    while True:
        try:
            return apply_op(db, txn, op)
        except LockWaitRequired as wait:
            txn._block_on(wait.request)
