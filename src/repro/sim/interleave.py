"""Exhaustive interleaving testing (paper Section 4.7).

The paper validated the InnoDB prototype by generating *every*
interleaving of transaction sets known to cause write skew and checking
that at least one transaction aborts with the "unsafe" error while plain
SI commits them all.  This module reproduces that harness: programs are
stepped one operation at a time in every possible order, lock waits defer
a step until the lock is granted, and each execution's history can be fed
to the MVSG oracle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterator, Sequence

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.errors import (
    ConstraintError,
    DuplicateKeyError,
    KeyNotFoundError,
    LockWaitRequired,
    TransactionAbortedError,
)
from repro.locking.manager import RequestState
from repro.sim.ops import apply_op


def all_interleavings(lengths: Sequence[int]) -> Iterator[tuple[int, ...]]:
    """Every distinct merge order of per-transaction step counts.

    ``lengths[i]`` is the number of steps of transaction i (its yields
    plus one commit step).  Yields tuples of transaction indices.
    """
    total = sum(lengths)

    def recurse(remaining: list[int], prefix: list[int]) -> Iterator[tuple[int, ...]]:
        if len(prefix) == total:
            yield tuple(prefix)
            return
        for index, count in enumerate(remaining):
            if count > 0:
                remaining[index] -= 1
                prefix.append(index)
                yield from recurse(remaining, prefix)
                prefix.pop()
                remaining[index] += 1

    yield from recurse(list(lengths), [])


@dataclass(slots=True)
class InterleavingOutcome:
    """Result of executing one interleaving."""

    order: tuple[int, ...]
    statuses: dict[int, str] = field(default_factory=dict)
    db: Database | None = None

    @property
    def committed(self) -> list[int]:
        return [idx for idx, status in self.statuses.items() if status == "committed"]

    @property
    def aborted(self) -> dict[int, str]:
        return {
            idx: status
            for idx, status in self.statuses.items()
            if status != "committed"
        }

    @property
    def all_committed(self) -> bool:
        return all(status == "committed" for status in self.statuses.values())


class _SteppedTxn:
    __slots__ = ("index", "program", "txn", "pending_op", "request", "status")

    def __init__(self, index: int, program: Generator, txn):
        self.index = index
        self.program = program
        self.txn = txn
        self.pending_op = None
        self.request = None
        self.status = "running"  # running | blocked | committed | <abort reason>


def run_interleaving(
    setup: Callable[[Database], None],
    program_factories: Sequence[Callable[[], Generator]],
    order: Sequence[int],
    isolation: IsolationLevel | str = IsolationLevel.SERIALIZABLE_SSI,
    engine_config: EngineConfig | None = None,
    db_factory: Callable[[EngineConfig], Database] | None = None,
) -> InterleavingOutcome:
    """Execute the programs in the given step order against a fresh DB.

    A step that must wait for a lock is retried after steps of other
    transactions run (deferring preserves the relative order of the
    remaining steps); a full pass with no progress means an unresolvable
    wait cycle, which immediate deadlock detection breaks.

    ``db_factory`` substitutes any object with the Database op surface
    (e.g. a sharding coordinator over LocalShard backends) — the seam
    the single-shard fast-path equivalence tests step through.
    """
    config = engine_config or EngineConfig(record_history=True)
    db = db_factory(config) if db_factory is not None else Database(config)
    setup(db)
    isolation = IsolationLevel.parse(isolation)

    txns = [
        _SteppedTxn(index, factory(), db.begin(isolation))
        for index, factory in enumerate(program_factories)
    ]
    for stepped in txns:
        _advance(db, stepped, first=True)

    schedule = deque(order)
    stall = 0
    while schedule:
        index = schedule.popleft()
        stepped = txns[index]
        if stepped.status in ("committed",) or _is_abort_status(stepped.status):
            stall = 0
            continue
        progressed = _step(db, stepped)
        if progressed:
            stall = 0
        else:
            schedule.append(index)
            stall += 1
            if stall > len(schedule) + 1:
                # Everyone blocked: force a periodic-style deadlock sweep.
                victims = db.sweep_deadlocks()
                if not victims:
                    break
                stall = 0

    outcome = InterleavingOutcome(order=tuple(order), db=db)
    for stepped in txns:
        outcome.statuses[stepped.index] = stepped.status
    return outcome


def exhaustive_outcomes(
    setup: Callable[[Database], None],
    program_factories: Sequence[Callable[[], Generator]],
    step_counts: Sequence[int],
    isolation: IsolationLevel | str = IsolationLevel.SERIALIZABLE_SSI,
    engine_config_factory: Callable[[], EngineConfig] | None = None,
    db_factory: Callable[[EngineConfig], Database] | None = None,
) -> list[InterleavingOutcome]:
    """Run every interleaving; returns all outcomes."""
    outcomes = []
    for order in all_interleavings(step_counts):
        config = (
            engine_config_factory() if engine_config_factory else EngineConfig(record_history=True)
        )
        outcomes.append(
            run_interleaving(setup, program_factories, order, isolation, config,
                             db_factory=db_factory)
        )
    return outcomes


# ----------------------------------------------------------------- internals


def _is_abort_status(status: str) -> bool:
    return status not in ("running", "blocked", "committed")


def _advance(db: Database, stepped: _SteppedTxn, first: bool = False, to_send=None) -> None:
    """Pull the next op out of the generator (or mark ready-to-commit)."""
    try:
        stepped.pending_op = stepped.program.send(None if first else to_send)
    except StopIteration:
        stepped.pending_op = _COMMIT


def _step(db: Database, stepped: _SteppedTxn) -> bool:
    """Try to execute the pending op.  Returns True on progress."""
    if stepped.status == "blocked":
        if stepped.request is not None and stepped.request.state is RequestState.WAITING:
            return False
        stepped.status = "running"

    try:
        if stepped.pending_op is _COMMIT:
            db.commit(stepped.txn)
            stepped.status = "committed"
            return True
        result = apply_op(db, stepped.txn, stepped.pending_op)
    except LockWaitRequired as wait:
        if wait.request.state is RequestState.DENIED:
            error = wait.request.error or TransactionAbortedError(txn_id=stepped.txn.id)
            db.abort(stepped.txn)
            stepped.status = error.reason
            return True
        stepped.status = "blocked"
        stepped.request = wait.request
        return False
    except TransactionAbortedError as error:
        stepped.status = error.reason
        return True
    except (DuplicateKeyError, KeyNotFoundError):
        # Application-level error: the program cannot proceed; roll back.
        db.abort(stepped.txn, reason="constraint")
        stepped.status = "constraint"
        return True
    _advance(db, stepped, to_send=result)
    return True


_COMMIT = object()
