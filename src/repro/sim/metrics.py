"""Simulation metrics.

The two quantities the paper reports per (isolation level, MPL) point:
throughput in commits per (simulated) second, and the abort mix broken
down into the paper's categories — deadlocks, first-committer-wins
conflicts, and the new "unsafe" errors (Section 6.1.1's graph pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ABORT_REASONS


@dataclass(slots=True)
class SimResult:
    """Outcome of one simulation run."""

    isolation: str
    mpl: int
    duration: float
    commits: int = 0
    aborts: dict = field(default_factory=lambda: {reason: 0 for reason in ABORT_REASONS})
    commits_by_type: dict = field(default_factory=dict)
    response_time_sum: float = 0.0
    #: extra engine counters snapshot (lock stats, tracker stats)
    engine_stats: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Commits per simulated second."""
        return self.commits / self.duration if self.duration > 0 else 0.0

    @property
    def total_aborts(self) -> int:
        return sum(self.aborts.values())

    @property
    def cc_aborts(self) -> int:
        """Concurrency-control aborts (excludes voluntary rollbacks)."""
        return sum(
            count for reason, count in self.aborts.items() if reason != "constraint"
        )

    @property
    def error_rate(self) -> float:
        """CC errors per commit — the paper's 'errors / commit' axis."""
        return self.cc_aborts / self.commits if self.commits else float("inf")

    @property
    def mean_response_time(self) -> float:
        return self.response_time_sum / self.commits if self.commits else 0.0

    def abort_rate(self, reason: str) -> float:
        return self.aborts.get(reason, 0) / self.commits if self.commits else 0.0

    def summary(self) -> str:
        aborts = ", ".join(
            f"{reason}={count}" for reason, count in self.aborts.items() if count
        )
        return (
            f"{self.isolation:>5} MPL={self.mpl:<3} "
            f"{self.throughput:>10.1f} commits/s  "
            f"aborts: {aborts or 'none'}"
        )
