"""Simulation metrics.

The two quantities the paper reports per (isolation level, MPL) point:
throughput in commits per (simulated) second, and the abort mix broken
down into the paper's categories — deadlocks, first-committer-wins
conflicts, and the new "unsafe" errors (Section 6.1.1's graph pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ABORT_REASONS
from repro.obs.registry import json_safe


@dataclass(slots=True)
class SimResult:
    """Outcome of one simulation run."""

    isolation: str
    mpl: int
    duration: float
    commits: int = 0
    aborts: dict = field(default_factory=lambda: {reason: 0 for reason in ABORT_REASONS})
    commits_by_type: dict = field(default_factory=dict)
    response_time_sum: float = 0.0
    #: extra engine counters snapshot (lock stats, tracker stats)
    engine_stats: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Commits per simulated second."""
        return self.commits / self.duration if self.duration > 0 else 0.0

    @property
    def total_aborts(self) -> int:
        return sum(self.aborts.values())

    @property
    def cc_aborts(self) -> int:
        """Concurrency-control aborts (excludes voluntary rollbacks)."""
        return sum(
            count for reason, count in self.aborts.items() if reason != "constraint"
        )

    @property
    def error_rate(self) -> float:
        """CC errors per commit — the paper's 'errors / commit' axis.

        A run with zero commits reports 0.0, not ``float("inf")``:
        ``json.dumps`` serialises infinity as the non-standard
        ``Infinity`` literal, which silently corrupts exported trajectory
        files (strict parsers reject it).
        """
        return self.cc_aborts / self.commits if self.commits else 0.0

    @property
    def mean_response_time(self) -> float:
        return self.response_time_sum / self.commits if self.commits else 0.0

    def abort_rate(self, reason: str) -> float:
        return self.aborts.get(reason, 0) / self.commits if self.commits else 0.0

    def to_dict(self) -> dict:
        """Strictly-JSON-safe export of the run (derived rates included).

        Every value is a plain int/float/str/None or nested dict/list of
        those, with non-finite floats rendered as ``None`` — the result
        round-trips through ``json.dumps``/``json.loads`` with a strict
        ``parse_constant``.
        """
        return json_safe({
            "isolation": self.isolation,
            "mpl": self.mpl,
            "duration": self.duration,
            "commits": self.commits,
            "aborts": dict(self.aborts),
            "commits_by_type": dict(self.commits_by_type),
            "response_time_sum": self.response_time_sum,
            "throughput": self.throughput,
            "total_aborts": self.total_aborts,
            "cc_aborts": self.cc_aborts,
            "error_rate": self.error_rate,
            "mean_response_time": self.mean_response_time,
            "engine_stats": self.engine_stats,
        })

    def summary(self) -> str:
        aborts = ", ".join(
            f"{reason}={count}" for reason, count in self.aborts.items() if count
        )
        return (
            f"{self.isolation:>5} MPL={self.mpl:<3} "
            f"{self.throughput:>10.1f} commits/s  "
            f"aborts: {aborts or 'none'}"
        )
