"""Lock modes and the compatibility matrix.

Modes:

* ``SHARED`` / ``EXCLUSIVE`` — the classic S2PL modes.
* ``SIREAD`` — the paper's new mode (Section 3.2): records that an SI
  transaction read a version of an item.  SIREAD never blocks and is never
  blocked; the *co-presence* of SIREAD and EXCLUSIVE locks on an item is
  the signal of an rw-antidependency.  (In the InnoDB prototype this was
  represented by reusing the "intention shared" mode on rows, Section 4.6;
  here it is a first-class mode.)

Gap locks (paper Section 2.5.2) are not separate modes: a gap is a
separate *resource* (a different key in the lock table for the same data
item), exactly as the paper describes InnoDB's design, so the same mode
matrix applies to gaps.
"""

from __future__ import annotations

import enum


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"
    SIREAD = "SIREAD"
    #: Gap-only mode taken by inserts/deletes (InnoDB's "insert intention",
    #: Section 2.5.2): two inserts into the same gap do not block each
    #: other, but an S2PL scan's SHARED gap lock blocks them, and a
    #: SIREAD gap lock detects them.
    INSERT_INTENTION = "II"

    def __repr__(self) -> str:  # compact in queue dumps
        return self.value


#: Pairs of modes that may be granted simultaneously to different owners.
#: SIREAD is compatible with everything, including EXCLUSIVE: readers do
#: not block writers and vice versa; the overlap is detected, not blocked.
_COMPATIBLE: frozenset[tuple[LockMode, LockMode]] = frozenset(
    {
        (LockMode.SHARED, LockMode.SHARED),
        (LockMode.SHARED, LockMode.SIREAD),
        (LockMode.SIREAD, LockMode.SHARED),
        (LockMode.SIREAD, LockMode.SIREAD),
        (LockMode.SIREAD, LockMode.EXCLUSIVE),
        (LockMode.EXCLUSIVE, LockMode.SIREAD),
        (LockMode.INSERT_INTENTION, LockMode.INSERT_INTENTION),
        (LockMode.INSERT_INTENTION, LockMode.SIREAD),
        (LockMode.SIREAD, LockMode.INSERT_INTENTION),
    }
)


# ------------------------------------------------------------------ bitmasks
#
# The lock-table hot paths test mode sets against each other millions of
# times per run, and Enum hashing dominates when those tests go through
# set operations.  Each mode therefore carries a bit, and the compatibility
# matrix is pre-folded into a per-mode ``incompat_mask`` so "does any held
# mode block this request" is a single integer AND against a summary mask.
# The matrix above stays the source of truth; the masks are derived.

for _index, _mode in enumerate(LockMode):
    _mode.index = _index
    _mode.bit = 1 << _index

for _mode in LockMode:
    _mode.incompat_mask = 0
    for _other in LockMode:
        if (_other, _mode) not in _COMPATIBLE:
            _mode.incompat_mask |= _other.bit

#: Bits of every mode (the "something is granted here" summary value).
ALL_MODES_MASK = sum(_mode.bit for _mode in LockMode)


def compatible(held: LockMode, requested: LockMode) -> bool:
    """True if ``requested`` can be granted while ``held`` is granted
    to a different transaction."""
    return (held, requested) in _COMPATIBLE


def is_siread(mode: LockMode) -> bool:
    return mode is LockMode.SIREAD


def blocks(held: LockMode, requested: LockMode) -> bool:
    """True if a holder of ``held`` delays a request for ``requested``."""
    return not compatible(held, requested)
