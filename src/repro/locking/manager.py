"""The lock manager.

A classic FIFO-queued lock manager extended with the paper's requirements:

* a non-blocking ``SIREAD`` mode whose conflicts are *reported* rather than
  enforced (Section 3.2);
* SIREAD locks retained after their owner commits, until no concurrent
  transaction remains (Section 3.3) — released via :meth:`LockManager.release_all`
  with ``keep_siread=True`` and cleaned later by :meth:`LockManager.drop_siread_locks`;
* SIREAD -> EXCLUSIVE upgrade: acquiring an EXCLUSIVE lock discards the
  owner's SIREAD lock on the same resource (Section 3.7.3 / 4.3 item 4);
* gap resources for next-key locking (Section 2.5.2/3.5): a gap is simply
  a distinct key in the lock table derived from the same data item.

Lock acquisition never blocks the calling thread.  When a request must
wait it is enqueued and an :class:`AcquireResult` with ``status=WAIT`` is
returned; engine operations translate that into a
:class:`~repro.errors.LockWaitRequired` control-flow exception which
executors handle.  Acquisition is idempotent: re-requesting a held lock in
the same or weaker mode is a no-op, which is what makes operation retry
after a wait safe.

Performance structure (the PR-4 hot-path pass):

* every granted lock and every :class:`_LockHead` carries an integer
  ``mask`` summarising its modes, so conflict/coverage/detection checks
  are one AND against the pre-folded per-mode masks from
  :mod:`repro.locking.modes` instead of set algebra over Enum members;
* ``_LockHead.granted`` is a dict keyed by owner id — grant, upgrade and
  removal are O(1) while iteration keeps insertion (grant) order;
* a per-owner index of *waiting* requests makes :meth:`cancel_waits`
  O(requests owned); the granted-lock per-owner index already made
  :meth:`release_all`/:meth:`drop_siread_locks` O(locks owned).  Nothing
  on the commit/abort path walks the whole table any more — essential
  once Section 3.3 SIREAD retention inflates it;
* granted-lock and per-owner SIREAD counters make :meth:`table_size` and
  :meth:`holds_any_siread` O(1).
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, NamedTuple

from repro.engine.latches import make_latch, make_stripe_latches
from repro.locking.deadlock import WaitsForGraph
from repro.locking.modes import LockMode, compatible
from repro.obs.registry import CounterGroup
from repro.obs.trace import EventType

#: Number of lock-table stripes (power of two: stripe choice is a mask).
#: Ports & Grittner partitioned PostgreSQL's SSI lock table into 16
#: LWLock tranches for the same reason: one latch over the whole table
#: was their dominant scalability bottleneck.
STRIPE_COUNT = 16
_STRIPE_MASK = STRIPE_COUNT - 1


class Resource(NamedTuple):
    """A key in the lock table.

    ``kind`` distinguishes record locks (``"rec"``), gap locks (``"gap"``,
    conceptually the open interval just before ``key``), and page locks
    (``"page"``, used by the Berkeley DB-style page-granularity mode).
    """

    kind: str
    table: str
    key: Hashable

    def __repr__(self) -> str:
        return f"{self.kind}:{self.table}[{self.key!r}]"


def record_resource(table: str, key: Hashable) -> Resource:
    return Resource("rec", table, key)


def gap_resource(table: str, key: Hashable) -> Resource:
    return Resource("gap", table, key)


def page_resource(table: str, page_id: int) -> Resource:
    return Resource("page", table, page_id)


def table_resource(table: str) -> Resource:
    """The whole-table unit — the top of the SIREAD escalation ladder
    (record -> page -> table, Ports & Grittner Section 4)."""
    return Resource("tbl", table, None)


class Lock:
    """A granted lock: one owner's claim on one resource.

    A lock can carry several *modes* at once — e.g. a transaction that
    scanned a gap (SIREAD) and then inserts into it (INSERT_INTENTION)
    keeps both semantics; discarding the SIREAD there would blind phantom
    detection for later inserts by others.  The modes are stored as the
    integer ``mask`` (OR of the modes' bits) so hot paths never hash Enum
    members; :attr:`modes` derives the familiar set view on demand.
    """

    __slots__ = ("owner", "resource", "mask")

    def __init__(
        self,
        owner: Any,  # transaction-like object with a hashable .id
        resource: Resource,
        modes: Iterable[LockMode] = (),
        mask: int = 0,
    ):
        self.owner = owner
        self.resource = resource
        for mode in modes:
            mask |= mode.bit
        self.mask = mask

    def __repr__(self) -> str:
        names = "+".join(sorted(m.value for m in self.modes))
        return f"Lock({self.owner_id}, {self.resource!r}, {names})"

    @property
    def owner_id(self) -> int:
        return self.owner.id

    @property
    def modes(self) -> set[LockMode]:
        """The held modes as a set (convenience view over ``mask``)."""
        return set(_MODES_IN[self.mask])

    @property
    def mode(self) -> LockMode:
        """The strongest held mode (convenience for displays/tests)."""
        return max(self.modes, key=_STRENGTH.__getitem__)

    def blocks(self, requested: LockMode) -> bool:
        return bool(self.mask & requested.incompat_mask)


class RequestState(enum.Enum):
    WAITING = "waiting"
    GRANTED = "granted"
    DENIED = "denied"


@dataclass(eq=False, slots=True)
class LockRequest:
    """A pending (or resolved) lock request — the engine's lock-wait
    *completion object*.

    Executors subscribe to resolution via :meth:`on_resolve`; each
    callback fires exactly once, with the request already in its final
    state.  :meth:`_resolve` is the **only** resolution mechanism and is
    race-free under the per-request lock: the first terminal transition
    wins, any concurrent or later attempt (a grant racing a timeout
    cancel) is a no-op, so a request has exactly one terminal state and
    its callbacks run exactly once.
    """

    owner: Any
    resource: Resource
    mode: LockMode
    state: RequestState = RequestState.WAITING
    error: Exception | None = None
    _callbacks: list[Callable[["LockRequest"], None]] = field(default_factory=list)
    # Serialises subscription against resolution: the subscriber is a
    # client thread holding no manager latch while _resolve runs under
    # them, so an unguarded check-then-append could land a callback on
    # the already-swapped list and the waiter would never wake.
    _resolve_latch: threading.Lock = field(default_factory=threading.Lock)
    #: back-reference for surfacing swallowed callback errors (set by
    #: _enqueue_wait; None for hand-built requests in unit tests)
    _manager: Any = None

    @property
    def resolved(self) -> bool:
        return self.state is not RequestState.WAITING

    def on_resolve(self, callback: Callable[["LockRequest"], None]) -> None:
        with self._resolve_latch:
            if self.state is RequestState.WAITING:
                self._callbacks.append(callback)
                return
        self._run_callback(callback)

    def _resolve(self, state: RequestState, error: Exception | None = None) -> bool:
        """First terminal transition wins; returns whether this call won.

        A losing call (the request already GRANTED or DENIED by a racing
        resolver) must not touch state, error, or callbacks — waiters
        woken by the winner may already be acting on the final state.
        """
        with self._resolve_latch:
            if self.state is not RequestState.WAITING:
                return False
            self.state = state
            self.error = error
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._run_callback(callback)
        return True

    def _run_callback(self, callback: Callable[["LockRequest"], None]) -> None:
        """Fire one subscriber with the request in its final state.

        A raising callback must not skip the remaining subscribers or
        leave the request half-resolved (state is already final before
        any callback runs), so the error is contained here and surfaced
        through the manager's ``lock_callback_errors`` counter and a
        trace event instead of unwinding the resolver — which may be a
        *different* transaction's commit path deep under manager latches.
        """
        try:
            callback(self)
        except Exception as error:  # noqa: BLE001 - deliberate containment
            manager = self._manager
            if manager is not None:
                manager._note_callback_error(self, error)

    def __repr__(self) -> str:
        return (
            f"LockRequest({self.owner.id}, {self.resource!r}, "
            f"{self.mode.value}, {self.state.value})"
        )


class AcquireStatus(enum.Enum):
    GRANTED = "granted"
    WAIT = "wait"


@dataclass(slots=True)
class AcquireResult:
    """Outcome of :meth:`LockManager.acquire`.

    Attributes:
        status: GRANTED or WAIT.
        request: the pending request when ``status == WAIT``.
        detection_conflicts: granted locks held by *other* transactions
            that are interesting to the SSI layer even though they do not
            block — EXCLUSIVE holders seen by a SIREAD request, and SIREAD
            holders seen by an EXCLUSIVE request (Figs 3.4/3.5 line "for
            each conflicting ... lock").  Populated on GRANTED results.
    """

    status: AcquireStatus
    request: LockRequest | None = None
    detection_conflicts: list[Lock] = field(default_factory=list)

    @property
    def granted(self) -> bool:
        return self.status is AcquireStatus.GRANTED


#: Shared empty conflict list — callers only ever iterate it.
_NO_CONFLICTS: list[Lock] = []

#: Preallocated result for the dominant acquire outcome (granted, nothing
#: to report): the hot paths return it instead of building a dataclass
#: instance per call.
_GRANTED_CLEAN = AcquireResult(
    AcquireStatus.GRANTED, detection_conflicts=_NO_CONFLICTS
)


class _LockHead:
    """Per-resource state: granted locks plus the FIFO wait queue.

    ``granted`` maps owner id -> Lock (one lock per owner per resource);
    dict iteration preserves grant order, matching the old list layout.
    ``counts`` is the per-mode grant count, packed as 16-bit fields of one
    integer (field ``mode.index``), and ``mask`` keeps the OR of bits with
    a non-zero count — so "can this request possibly conflict / is
    anything interesting granted here" is a single AND without touching
    the granted locks, and head construction (which scan workloads do per
    lock, since empty heads are reclaimed) allocates no per-mode list.
    ``queue`` stays ``None`` until the first waiter: the vast majority of
    heads never see contention and skip the deque allocation entirely.
    """

    __slots__ = ("granted", "queue", "counts", "mask")

    def __init__(self):
        self.granted: dict[Hashable, Lock] = {}
        self.queue: deque[LockRequest] | None = None
        self.counts: int = 0
        self.mask: int = 0

    def mode_count(self, mode: LockMode) -> int:
        """Granted locks carrying ``mode`` (test/introspection helper)."""
        return (self.counts >> (mode.index << 4)) & 0xFFFF

    def empty(self) -> bool:
        return not self.granted and not self.queue


#: Modes that actually participate in blocking decisions.
_BLOCKING_MODES = (LockMode.SHARED, LockMode.EXCLUSIVE)

#: Lock strength order (display/victim heuristics).
_STRENGTH = {
    LockMode.SIREAD: 0,
    LockMode.SHARED: 1,
    LockMode.INSERT_INTENTION: 2,
    LockMode.EXCLUSIVE: 3,
}

#: What a held mode subsumes: re-requesting a covered mode is a no-op.
#: EXCLUSIVE covers everything (the Section 3.7.3 upgrade rationale:
#: conflicts with the new version replace SIREAD detection).  Note that
#: INSERT_INTENTION does NOT cover SIREAD — a gap scan's sentinel must
#: survive the owner's own insert into that gap.
_COVERS = {
    LockMode.EXCLUSIVE: {
        LockMode.EXCLUSIVE,
        LockMode.SHARED,
        LockMode.SIREAD,
        LockMode.INSERT_INTENTION,
    },
    LockMode.SHARED: {LockMode.SHARED},
    LockMode.INSERT_INTENTION: {LockMode.INSERT_INTENTION},
    LockMode.SIREAD: {LockMode.SIREAD},
}

# Fold the coverage table and the SSI detection pairs into per-mode masks
# (attached to the enum members, next to ``bit``/``incompat_mask`` from
# repro.locking.modes).  ``covered_by_mask``: bits of held modes that make
# re-requesting this mode a no-op.  ``detect_mask``: bits of granted modes
# an acquire of this mode must report as rw-dependency signals — EXCLUSIVE
# and INSERT_INTENTION holders for a SIREAD request, SIREAD holders for an
# EXCLUSIVE/INSERT_INTENTION request (Figs 3.4/3.5), nothing for SHARED.
for _mode in LockMode:
    _mode.covered_by_mask = 0
    for _held, _covered in _COVERS.items():
        if _mode in _covered:
            _mode.covered_by_mask |= _held.bit

LockMode.SIREAD.detect_mask = LockMode.EXCLUSIVE.bit | LockMode.INSERT_INTENTION.bit
LockMode.EXCLUSIVE.detect_mask = LockMode.SIREAD.bit
LockMode.INSERT_INTENTION.detect_mask = LockMode.SIREAD.bit
LockMode.SHARED.detect_mask = 0

_SIREAD_BIT = LockMode.SIREAD.bit
_SIREAD_SHIFT = LockMode.SIREAD.index << 4

#: mask -> the modes whose bits it contains (decode table for the rare
#: paths that need to enumerate a lock's modes).
_MODES_IN = [
    tuple(m for m in LockMode if _mask & m.bit) for _mask in range(1 << len(LockMode))
]

#: mask -> bit of the strongest mode in it (waits-for edges key off the
#: strongest mode a lock holds, preserving the pre-optimization policy).
_STRONGEST_BIT = [0] * (1 << len(LockMode))
for _mask in range(1, 1 << len(LockMode)):
    _members = [m for m in LockMode if _mask & m.bit]
    _STRONGEST_BIT[_mask] = max(_members, key=_STRENGTH.__getitem__).bit


class LockManager:
    """Lock table with FIFO queuing, upgrades and waits-for maintenance.

    Thread-safe via a striped latch protocol (PR 5; previously the engine
    serialised every call under its global kernel mutex, the InnoDB
    Section 4.4 simplification):

    * Resources hash into :data:`STRIPE_COUNT` stripes; each stripe latch
      (rank ``lock-stripe``) guards that stripe's resource->head map and
      every field of its heads, including the wait queues.  The
      uncontended acquire/release fast path touches only one stripe.
    * The queue latch (rank ``lock-queue``, acquired *before* stripes)
      serialises everything involving wait queues across resources — the
      enqueue slow path, promotion, cancellation, and all waits-for-graph
      mutation — and is the licence for holding several stripe latches at
      once.  A request that cannot be granted under the stripe alone is
      retried from scratch under queue+stripe before being enqueued.
    * The owner latch (rank ``lock-owner``, acquired *inside* stripes)
      guards the per-owner indexes (``_by_owner``, ``_waiting``,
      ``_siread_counts``), the granted-lock counter and the stats group.
      Pure point lookups of these dicts read optimistically (a CPython
      dict ``get`` is atomic under the GIL); every mutation and every
      iteration takes the latch.

    Args:
        deadlock_handler: called with (cycle, requesting LockRequest) when
            immediate detection finds a cycle; must return the victim
            transaction object.  ``None`` disables immediate detection —
            the caller must then run :meth:`find_deadlock_victims`
            periodically (this is the Berkeley DB db_perf configuration
            whose detection latency shapes Figure 6.2).
        siread_upgrade: enable the Section 3.7.3 optimisation.
    """

    def __init__(
        self,
        deadlock_handler: Callable[[list[Any], LockRequest], Any] | None = None,
        siread_upgrade: bool = True,
    ):
        self._stripe_heads: list[dict[Resource, _LockHead]] = [
            {} for _ in range(STRIPE_COUNT)
        ]
        self._stripe_latches = make_stripe_latches(STRIPE_COUNT)
        self._queue_latch = make_latch("lock-queue")
        self._owner_latch = make_latch("lock-owner")
        self._by_owner: dict[Hashable, dict[Resource, Lock]] = defaultdict(dict)
        #: per-owner index of WAITING requests — the cancel_waits path.
        self._waiting: dict[Hashable, set[LockRequest]] = {}
        #: per-owner count of granted locks carrying SIREAD (O(1)
        #: holds_any_siread, consulted on every SSI commit).
        self._siread_counts: dict[Hashable, int] = {}
        self._granted_count = 0
        #: (owner_id, coarse resource) -> number of record SIREADs the
        #: coarse lock replaced.  An entry exists for every escalated lock
        #: still granted; its presence (atomic ``bool(dict)`` probe) gates
        #: the engine's coarse-lock write probes, so it is inserted
        #: *before* the coarse lock is granted and removed only after the
        #: lock leaves the table.  Guarded by the owner latch.
        self._escalated_weights: dict[tuple[Hashable, Resource], int] = {}
        self.waits_for = WaitsForGraph()
        self.deadlock_handler = deadlock_handler
        self.siread_upgrade = siread_upgrade
        #: cumulative counters for the overhead benchmarks (registry-adoptable)
        self.stats = CounterGroup(
            {
                "acquires": 0,
                "waits": 0,
                "upgrades": 0,
                "siread_dropped": 0,
                "escalations": 0,
                "escalated_records": 0,
                "lock_callback_errors": 0,
            }
        )
        #: event trace, installed by Database.enable_tracing (None = off)
        self.trace = None

    # ------------------------------------------------------------------ API

    def _stripe_of(self, resource: Resource) -> int:
        return hash(resource) & _STRIPE_MASK

    @property
    def _heads(self) -> dict[Resource, _LockHead]:
        """Merged view over every stripe's head map.

        Introspection/testing only — a read-only snapshot, not the live
        table (internals address ``_stripe_heads[stripe]`` directly,
        under that stripe's latch)."""
        merged: dict[Resource, _LockHead] = {}
        for heads in self._stripe_heads:
            merged.update(heads)
        return merged

    def _note_callback_error(self, request: "LockRequest", error: Exception) -> None:
        """Account for an exception a resolve callback swallowed.

        Runs on the resolving thread, possibly under queue/stripe
        latches; the obs latch (rank 80) nests legally above them."""
        self.stats.inc("lock_callback_errors")
        if self.trace is not None:
            self.trace.emit(
                EventType.CALLBACK_ERROR, request.owner.id,
                resource=repr(request.resource), mode=request.mode.value,
                state=request.state.value, error=type(error).__name__,
                message=str(error),
            )

    def acquire_nowait(
        self, owner: Any, resource: Resource, mode: LockMode
    ) -> AcquireResult:
        """Completion-style acquisition: never blocks the calling thread.

        Returns either an immediate ``GRANTED`` result or ``WAIT``
        carrying a subscribable :class:`LockRequest`; the caller
        registers interest with ``result.request.on_resolve`` (a thread
        parks an event on it, a session schedules its own resumption, an
        asyncio bridge settles a future) and retries the operation after
        the grant.  This is the canonical waiting API; :meth:`acquire`
        is the same call under its historical name.
        """
        return self.acquire(owner, resource, mode)

    def acquire(self, owner: Any, resource: Resource, mode: LockMode) -> AcquireResult:
        """Request ``mode`` on ``resource`` for ``owner``.

        Never blocks.  Returns GRANTED (possibly with detection conflicts)
        or WAIT with the enqueued request.  Raises nothing: deadlock
        resolution happens through the injected handler which may doom a
        transaction via its own side effects.

        Fast path: one stripe latch.  Only when the request cannot be
        granted does it restart under the queue latch (still rank-ordered:
        queue before stripe), re-verify — the blocker may have vanished in
        the unlatched window — and enqueue.  The ``acquires`` counter is
        bumped inside whichever owner-latch section the outcome already
        pays for, never in a dedicated one.
        """
        stripe_index = hash(resource) & _STRIPE_MASK
        stripe = self._stripe_latches[stripe_index]
        with stripe:
            result = self._try_acquire(owner, resource, mode, stripe_index)
        if result is not None:
            return result
        with self._queue_latch:
            with stripe:
                result = self._try_acquire(owner, resource, mode, stripe_index)
                if result is not None:
                    return result
                return self._enqueue_wait(owner, resource, mode, stripe_index)

    def acquire_read_batch(
        self, owner: Any, resources: list[Resource], mode: LockMode
    ) -> tuple[list[Lock], list[Resource]]:
        """Grant a read mode (SIREAD or SHARED) on many resources in one
        batch — the scan hot path.

        Resources already covered by a held lock are settled with atomic
        per-owner dict reads and no latch at all; the rest are grouped by
        stripe (one stripe latch per group instead of one per resource),
        and every per-owner index update lands in a single owner-latch
        section at the end.

        Returns ``(conflicts, deferred)``: the combined detection
        conflicts (granted write-mode locks of other owners, for the
        caller to dispatch as rw edges), and the resources that need the
        normal one-at-a-time path — a SHARED request against an
        incompatible holder or a non-empty queue (FIFO fairness), or any
        resource where this owner already holds a non-covering lock.
        Deferred resources are *not* counted as acquires here; the
        caller's normal acquire counts them.

        Publication order matches :meth:`acquire`: each granted lock is
        in the table — visible to writers — before its stripe latch
        drops, so a writer arriving any later reports the rw edge from
        its own side.  Only the owner-private bookkeeping (``_by_owner``,
        counters) lands in the batch tail; no other thread's correctness
        reads it for locks it did not grant.
        """
        owner_id = owner.id
        owner_locks = self._by_owner.get(owner_id)
        cover = mode.covered_by_mask
        bit = mode.bit
        shift = mode.index << 4
        incompat = mode.incompat_mask
        conflicts: list[Lock] = []
        fresh: list[Lock] = []
        covered = 0
        deferred: list[Resource] = []
        if mode is LockMode.SIREAD:
            is_siread = True
            todo: list[Resource] = []
            for resource in resources:
                held = owner_locks.get(resource) if owner_locks else None
                if held is not None:
                    if held.mask & cover:
                        covered += 1  # idempotent re-acquire: count, done
                    else:
                        deferred.append(resource)  # uncovered upgrade
                    continue
                todo.append(resource)
            if len(todo) == 1:
                by_stripe = {hash(todo[0]) & _STRIPE_MASK: todo}
            else:
                by_stripe = {}
                for resource in todo:
                    by_stripe.setdefault(
                        hash(resource) & _STRIPE_MASK, []
                    ).append(resource)
            for stripe_index, group in by_stripe.items():
                with self._stripe_latches[stripe_index]:
                    heads = self._stripe_heads[stripe_index]
                    for resource in group:
                        head = heads.get(resource)
                        if head is not None:
                            if head.granted.get(owner_id) is not None:
                                # Raced with inheritance replicating onto
                                # a gap this batch also wants: normal path.
                                deferred.append(resource)
                                continue
                        else:
                            head = heads[resource] = _LockHead()
                        detect = self._detection_conflicts(head, owner, mode)
                        if detect:
                            conflicts.extend(detect)
                        lock = Lock(owner, resource, mask=bit)
                        head.granted[owner_id] = lock
                        fresh.append(lock)
                        if not (head.counts >> shift) & 0xFFFF:
                            head.mask |= bit
                        head.counts += 1 << shift
        else:
            # Blocking read modes (SHARED) go strictly in submission
            # order and STOP at the first resource that cannot be
            # granted: granting later resources while an earlier one
            # must wait would invert the scan's lock order against
            # concurrent writers and manufacture deadlocks.  Everything
            # from the stopping point on is deferred, in order, to the
            # caller's normal blocking path; covered prefixes (repeat
            # scans) settle latch-free.
            is_siread = False
            idx = 0
            total = len(resources)
            while idx < total:
                resource = resources[idx]
                held = owner_locks.get(resource) if owner_locks else None
                if held is not None:
                    if held.mask & cover:
                        covered += 1
                        idx += 1
                        continue
                    break  # uncovered upgrade: normal path from here
                stripe_index = hash(resource) & _STRIPE_MASK
                stop = False
                with self._stripe_latches[stripe_index]:
                    heads = self._stripe_heads[stripe_index]
                    head = heads.get(resource)
                    if head is not None and (
                        head.granted.get(owner_id) is not None
                        or head.mask & incompat
                        or head.queue
                    ):
                        stop = True
                    else:
                        if head is None:
                            head = heads[resource] = _LockHead()
                        detect = self._detection_conflicts(head, owner, mode)
                        if detect:
                            conflicts.extend(detect)
                        lock = Lock(owner, resource, mask=bit)
                        head.granted[owner_id] = lock
                        fresh.append(lock)
                        if not (head.counts >> shift) & 0xFFFF:
                            head.mask |= bit
                        head.counts += 1 << shift
                if stop:
                    break
                idx += 1
            if idx < total:
                deferred = list(resources[idx:])
        if covered or fresh:
            with self._owner_latch:
                self.stats["acquires"] += covered + len(fresh)
                if fresh:
                    mine = self._by_owner[owner_id]
                    for lock in fresh:
                        mine[lock.resource] = lock
                    self._granted_count += len(fresh)
                    if is_siread:
                        counts_by_owner = self._siread_counts
                        counts_by_owner[owner_id] = (
                            counts_by_owner.get(owner_id, 0) + len(fresh)
                        )
        return conflicts, deferred

    def _try_acquire(
        self, owner: Any, resource: Resource, mode: LockMode, stripe_index: int
    ) -> AcquireResult | None:
        """Grant without queuing, or return None if the request must wait.

        Caller holds the resource's stripe latch."""
        heads = self._stripe_heads[stripe_index]
        head = heads.get(resource)
        if head is None:
            head = heads[resource] = _LockHead()

        owner_id = owner.id
        owner_locks = self._by_owner.get(owner_id)
        held = owner_locks.get(resource) if owner_locks else None
        if held is not None and held.mask & mode.covered_by_mask:
            # Idempotent re-acquire (or covered request): nothing to do,
            # but still report detection conflicts for retry correctness.
            with self._owner_latch:
                self.stats["acquires"] += 1
            conflicts = self._detection_conflicts(head, owner, mode)
            if not conflicts:
                return _GRANTED_CLEAN
            return AcquireResult(
                AcquireStatus.GRANTED, detection_conflicts=conflicts
            )

        if mode is LockMode.SIREAD:
            # SIREAD never blocks and never waits (Section 3.2).  This is
            # the single hottest call in SSI scan workloads (one per row
            # plus one per gap), so the grant is inlined: no _blockers, no
            # _grant/_add_mode call chain.
            conflicts = self._detection_conflicts(head, owner, mode)
            if held is not None:
                held.mask |= _SIREAD_BIT
                if not (head.counts >> _SIREAD_SHIFT) & 0xFFFF:
                    head.mask |= _SIREAD_BIT
                head.counts += 1 << _SIREAD_SHIFT
                with self._owner_latch:
                    self.stats["acquires"] += 1
                    counts_by_owner = self._siread_counts
                    counts_by_owner[owner_id] = (
                        counts_by_owner.get(owner_id, 0) + 1
                    )
            else:
                lock = Lock(owner, resource, mask=_SIREAD_BIT)
                head.granted[owner_id] = lock
                if not (head.counts >> _SIREAD_SHIFT) & 0xFFFF:
                    head.mask |= _SIREAD_BIT
                head.counts += 1 << _SIREAD_SHIFT
                with self._owner_latch:
                    self.stats["acquires"] += 1
                    self._by_owner[owner_id][resource] = lock
                    self._granted_count += 1
                    counts_by_owner = self._siread_counts
                    counts_by_owner[owner_id] = (
                        counts_by_owner.get(owner_id, 0) + 1
                    )
            if not conflicts:
                return _GRANTED_CLEAN
            return AcquireResult(AcquireStatus.GRANTED, detection_conflicts=conflicts)

        blockers = self._blockers(head, owner, mode, upgrading=held is not None)
        if blockers:
            return None
        conflicts = self._detection_conflicts(head, owner, mode)
        if held is not None:
            with self._owner_latch:
                self.stats["acquires"] += 1
                self.stats["upgrades"] += 1
            self._grant(head, owner, resource, mode)
        else:
            self._grant(head, owner, resource, mode, count_acquire=True)
        if not conflicts:
            return _GRANTED_CLEAN
        return AcquireResult(AcquireStatus.GRANTED, detection_conflicts=conflicts)

    def _enqueue_wait(
        self, owner: Any, resource: Resource, mode: LockMode, stripe_index: int
    ) -> AcquireResult:
        """Queue a blocked request.  Caller holds queue + stripe latches.

        Upgrades queue at the front (standard treatment) so an upgrader
        is not starved behind later plain requests."""
        heads = self._stripe_heads[stripe_index]
        head = heads[resource]  # _try_acquire just ensured it exists
        owner_id = owner.id
        owner_locks = self._by_owner.get(owner_id)
        held = owner_locks.get(resource) if owner_locks else None
        request = LockRequest(owner=owner, resource=resource, mode=mode, _manager=self)
        if head.queue is None:
            head.queue = deque()
        if held is not None:
            head.queue.appendleft(request)
        else:
            head.queue.append(request)
        with self._owner_latch:
            self.stats["acquires"] += 1
            if held is not None:
                self.stats["upgrades"] += 1
            pending = self._waiting.get(owner_id)
            if pending is None:
                pending = self._waiting[owner_id] = set()
            pending.add(request)
            self.stats["waits"] += 1
        if self.trace is not None:
            self.trace.emit(
                EventType.LOCK_WAIT, owner_id,
                resource=repr(resource), mode=mode.value,
            )
        self._refresh_wait_edges(head)

        if self.deadlock_handler is not None:
            self._resolve_deadlocks(request)
            if request.state is RequestState.GRANTED:
                return AcquireResult(AcquireStatus.GRANTED)
            if request.state is RequestState.DENIED:
                # Re-raise through the normal WAIT path: the caller sees a
                # resolved-denied request and surfaces the error.
                return AcquireResult(AcquireStatus.WAIT, request=request)
        return AcquireResult(AcquireStatus.WAIT, request=request)

    def release_all(self, owner: Any, keep_siread: bool = False) -> None:
        """Release every lock held by ``owner`` (commit/abort time).

        With ``keep_siread=True`` (Serializable SI commit, Fig 3.2 line 9)
        the SIREAD locks stay in the table; they are dropped later by
        :meth:`drop_siread_locks` once no concurrent transaction remains.

        Latching: an owner with no granted locks and no waiting requests
        exits immediately with no latch at all (atomic dict probes; an
        owner absent from ``_by_owner`` cannot be granted locks
        concurrently — inheritance only replicates onto existing SIREAD
        holders).  Otherwise the owner's lock set is snapshotted and
        removed stripe by stripe (one stripe latch per group, one
        owner-latch section for all the per-owner bookkeeping); only
        resources with waiters take the queue latch for promotion.  A
        second pass catches most locks that :meth:`inherit_siread_locks`
        or :meth:`promote_sireads` granted to this owner concurrently (a
        gap split replicating a scan's sentinel while its owner aborts),
        and — for SIREAD holders releasing everything — a final
        queue-latched verification sweep closes the in-flight-grant
        window the passes cannot (both granting paths are
        collect-and-grant atomic under the queue latch).
        """
        owner_id = owner.id
        if owner_id not in self._by_owner and owner_id not in self._waiting:
            return
        # Single-lock fast path — the dominant release shape in OLTP
        # runs (a point read/update holds exactly one lock).  The pair is
        # read with atomic dict ops: only this owner's thread and SIREAD
        # inheritance mutate the per-owner dict, a concurrent insert
        # makes the probe below fall through to the general loop, and a
        # mid-read mutation surfaces as RuntimeError (handled likewise).
        locks = self._by_owner.get(owner_id)
        if locks is not None and len(locks) == 1:
            try:
                resource, lock = next(iter(locks.items()))
            except (RuntimeError, StopIteration):
                lock = None
            if lock is not None:
                if keep_siread and lock.mask == _SIREAD_BIT:
                    # Lone retained sentinel: nothing to shed or promote.
                    if (
                        self._waiting.get(owner_id)
                        or owner_id in self.waits_for._edges
                    ):
                        self.cancel_waits(owner)
                    return
                if not keep_siread or not lock.mask & _SIREAD_BIT:
                    stripe_index = hash(resource) & _STRIPE_MASK
                    removed = False
                    promote = False
                    with self._stripe_latches[stripe_index]:
                        heads = self._stripe_heads[stripe_index]
                        head = heads.get(resource)
                        if (
                            head is not None
                            and head.granted.get(owner_id) is lock
                        ):
                            self._detach_lock(heads, head, lock)
                            removed = True
                            promote = bool(head.queue)
                    if removed:
                        self._forget_locks(owner_id, [lock])
                        if promote:
                            with self._queue_latch:
                                with self._stripe_latches[stripe_index]:
                                    self._promote(resource, stripe_index)
                        if (
                            not keep_siread
                            and lock.mask & _SIREAD_BIT
                            and resource.kind != "rec"
                        ):
                            # A coarse sentinel marks a possible
                            # inheritance source: close the in-flight
                            # grant window before declaring the owner
                            # drained (record sentinels cannot be
                            # sources, and a raced promotion self-undoes
                            # or leaves its grant visible below).
                            self._sweep_owner_queued(owner_id, siread_only=False)
                    if not self._by_owner.get(owner_id):
                        if (
                            self._waiting.get(owner_id)
                            or owner_id in self.waits_for._edges
                        ):
                            self.cancel_waits(owner)
                        return
                # mixed keep_siread single lock, a raced detach, or a
                # concurrently inherited sentinel: general loop below.
        saw_siread = False
        for _pass in range(2):
            # Repeat passes only re-snapshot when the atomic probe says
            # locks remain (the common case is that pass one drained them).
            if _pass and not self._by_owner.get(owner_id):
                break
            with self._owner_latch:
                locks = self._by_owner.get(owner_id)
                items = list(locks.items()) if locks else []
            if not items:
                break
            if not saw_siread:
                saw_siread = any(
                    lock.mask & _SIREAD_BIT for _resource, lock in items
                )
            if len(items) == 1:
                by_stripe = {hash(items[0][0]) & _STRIPE_MASK: items}
            else:
                by_stripe = {}
                for resource, lock in items:
                    by_stripe.setdefault(
                        hash(resource) & _STRIPE_MASK, []
                    ).append((resource, lock))
            removed: list[Lock] = []
            promote: list[Resource] = []
            for stripe_index, group in by_stripe.items():
                with self._stripe_latches[stripe_index]:
                    heads = self._stripe_heads[stripe_index]
                    for resource, lock in group:
                        head = heads.get(resource)
                        if head is None or head.granted.get(owner_id) is not lock:
                            continue  # raced with a concurrent cleanup
                        if keep_siread and lock.mask & _SIREAD_BIT:
                            if lock.mask != _SIREAD_BIT:
                                # Shed the blocking modes, retain the sentinel.
                                for mode in _MODES_IN[lock.mask & ~_SIREAD_BIT]:
                                    self._discard_mode(head, lock, mode)
                                if head.queue:
                                    promote.append(resource)
                            continue
                        self._detach_lock(heads, head, lock)
                        removed.append(lock)
                        if head.queue:
                            promote.append(resource)
            if removed:
                self._forget_locks(owner_id, removed)
            for resource in promote:
                stripe_index = hash(resource) & _STRIPE_MASK
                with self._queue_latch:
                    with self._stripe_latches[stripe_index]:
                        self._promote(resource, stripe_index)
            if keep_siread or not removed:
                break
        if not keep_siread and saw_siread:
            # SIREAD holders can be inheritance sources and escalation
            # targets; one queue-latched sweep closes the window where a
            # concurrent inherit/promote grant lands after the passes
            # above snapshotted the owner's set.  (Retaining commits skip
            # this — their sentinels are dropped by drop_siread_locks,
            # which runs its own sweep.)
            self._sweep_owner_queued(owner_id, siread_only=False)
        # Waits-for maintenance is only owed when the owner has waiting
        # requests or stale outgoing edges (a promoted-then-granted waiter
        # keeps its edges until here); stale *incoming* edges cannot
        # survive the promotions above, which refresh every queue the
        # owner's locks were blocking.
        if self._waiting.get(owner_id) or owner_id in self.waits_for._edges:
            self.cancel_waits(owner)

    def retain_all_reads(self, owner: Any) -> bool:
        """Commit-time fast path for a read-only retaining owner.

        When every lock the owner holds is a pure SIREAD sentinel
        (per-owner SIREAD count covers the whole held set), retaining
        them all means :meth:`release_all` would walk the set to shed
        nothing — only pending waits and waits-for edges need
        cancelling.  Returns True when the release was handled here
        (everything retained); False when the owner holds a non-SIREAD
        lock (e.g. a SHARED-read retaining policy) and the caller must
        take the full ``release_all(keep_siread=True)`` path.

        The counts-vs-held comparison runs under the owner latch so it
        cannot tear against a concurrent grant or inheritance, and the
        engine never has to reach into the manager's private indexes.
        """
        owner_id = owner.id
        with self._owner_latch:
            held = self._by_owner.get(owner_id)
            if held is not None and self._siread_counts.get(owner_id, 0) < len(held):
                return False
            pending = bool(self._waiting.get(owner_id))
        if pending or owner_id in self.waits_for._edges:
            self.cancel_waits(owner)
        return True

    def drop_siread_locks(self, owner: Any) -> int:
        """Remove retained SIREAD locks of a cleaned-up suspended txn.

        Locks are dropped stripe group by stripe group (scan-heavy
        suspended transactions hold hundreds of sentinels — one latch per
        lock would dominate cleanup); the bulk passes catch most sentinels
        that :meth:`inherit_siread_locks` replicated onto new gaps for
        this owner while the sweep ran, and a final queue-latched
        verification sweep (:meth:`_sweep_owner_queued`) closes the
        remaining in-flight-grant window for good.  The weighted return
        value counts an escalated coarse sentinel as the record locks it
        replaced.
        """
        owner_id = owner.id
        dropped = 0
        # Single-sentinel fast path (point readers retain exactly one
        # SIREAD); atomic reads as in release_all's fast path.
        locks = self._by_owner.get(owner_id)
        if locks is not None and len(locks) == 1:
            try:
                resource, lock = next(iter(locks.items()))
            except (RuntimeError, StopIteration):
                lock = None
            if lock is not None and lock.mask == _SIREAD_BIT:
                stripe_index = hash(resource) & _STRIPE_MASK
                removed = False
                with self._stripe_latches[stripe_index]:
                    heads = self._stripe_heads[stripe_index]
                    head = heads.get(resource)
                    if head is not None and head.granted.get(owner_id) is lock:
                        self._detach_lock(heads, head, lock)
                        removed = True
                if removed:
                    # The lone sentinel may itself be an escalated coarse
                    # lock; its weight surplus keeps the return value
                    # counting the record locks it replaced.
                    surplus = self._forget_locks(
                        owner_id, [lock], dropped_stat=1
                    )
                    dropped = 1 + surplus
                if resource.kind == "rec" and owner_id not in self._by_owner:
                    # A lone record sentinel is never an inheritance
                    # source, and a racing promotion that failed to find
                    # it undoes its own coarse grant — nothing concurrent
                    # can leave residue behind this probe.
                    return dropped
        for _pass in range(3):
            if owner_id not in self._by_owner:
                break  # atomic probe: nothing (left) to drop
            with self._owner_latch:
                locks = self._by_owner.get(owner_id)
                items = (
                    [
                        (resource, lock)
                        for resource, lock in locks.items()
                        if lock.mask & _SIREAD_BIT
                    ]
                    if locks
                    else []
                )
            if not items:
                break
            if len(items) == 1:
                by_stripe = {hash(items[0][0]) & _STRIPE_MASK: items}
            else:
                by_stripe = {}
                for resource, lock in items:
                    by_stripe.setdefault(
                        hash(resource) & _STRIPE_MASK, []
                    ).append((resource, lock))
            removed: list[Lock] = []
            shed = 0
            for stripe_index, group in by_stripe.items():
                with self._stripe_latches[stripe_index]:
                    heads = self._stripe_heads[stripe_index]
                    for resource, lock in group:
                        head = heads.get(resource)
                        if head is None or head.granted.get(owner_id) is not lock:
                            continue
                        mask = lock.mask
                        if not mask & _SIREAD_BIT:
                            continue
                        if mask == _SIREAD_BIT:
                            self._detach_lock(heads, head, lock)
                            removed.append(lock)
                        else:
                            # Shed just the sentinel mode; the per-owner
                            # SIREAD count is settled below in one batch.
                            lock.mask = mask & ~_SIREAD_BIT
                            head.counts -= 1 << _SIREAD_SHIFT
                            if not (head.counts >> _SIREAD_SHIFT) & 0xFFFF:
                                head.mask &= ~_SIREAD_BIT
                            shed += 1
                        dropped += 1
            if removed or shed:
                # ``siread_dropped`` accounting rides in the same
                # owner-latch section that settles the per-owner indexes;
                # the surplus is the extra records escalated sentinels
                # stood for.
                dropped += self._forget_locks(
                    owner_id, removed, extra_siread=shed,
                    dropped_stat=len(removed) + shed,
                )
        dropped += self._sweep_owner_queued(owner_id, siread_only=True)
        return dropped

    def _detach_lock(
        self, heads: dict[Resource, _LockHead], head: _LockHead, lock: Lock
    ) -> None:
        """Head-side removal of a granted lock (caller holds the stripe
        latch and has verified the lock is current).  The per-owner
        bookkeeping is settled separately via :meth:`_forget_locks`."""
        del head.granted[lock.owner.id]
        for mode in _MODES_IN[lock.mask]:
            shift = mode.index << 4
            head.counts -= 1 << shift
            if not (head.counts >> shift) & 0xFFFF:
                head.mask &= ~mode.bit
        if head.empty():
            heads.pop(lock.resource, None)

    def _forget_locks(
        self,
        owner_id: Hashable,
        removed: list[Lock],
        extra_siread: int = 0,
        dropped_stat: int = 0,
    ) -> int:
        """One owner-latch section settling the per-owner indexes for a
        batch of detached locks (plus ``extra_siread`` shed sentinel
        modes on locks that remain granted); ``dropped_stat`` folds the
        ``siread_dropped`` counter bump into the same section.

        An escalated coarse lock counts as the record locks it replaced:
        its weight entry is popped here, and when the removal is being
        counted as a drop the surplus (weight - 1 per coarse lock) joins
        ``siread_dropped`` so obs snapshots stay comparable before and
        after escalation.  Returns the surplus for callers that report
        weighted totals."""
        with self._owner_latch:
            surplus = 0
            siread_gone = extra_siread
            if removed:
                self._granted_count -= len(removed)
                owner_locks = self._by_owner.get(owner_id)
                weights = self._escalated_weights
                for lock in removed:
                    if lock.mask & _SIREAD_BIT:
                        siread_gone += 1
                    if weights:
                        surplus += weights.pop((owner_id, lock.resource), 1) - 1
                    if owner_locks is not None:
                        owner_locks.pop(lock.resource, None)
                if owner_locks is not None and not owner_locks:
                    del self._by_owner[owner_id]
            if dropped_stat:
                self.stats["siread_dropped"] += dropped_stat + surplus
            if siread_gone:
                remaining = self._siread_counts.get(owner_id, 0) - siread_gone
                if remaining > 0:
                    self._siread_counts[owner_id] = remaining
                else:
                    self._siread_counts.pop(owner_id, None)
        return surplus

    def inherit_siread_locks(
        self,
        from_resource: Resource,
        to_resource: Resource,
        exclude_owner: Any = None,
    ) -> int:
        """Replicate SIREAD locks from one resource onto another.

        When an insert splits a gap, holders of SIREAD locks on the old
        gap (scans whose range covered it, possibly already committed)
        must also cover the new sub-gap, or later inserts between the new
        key and its predecessor would escape phantom detection — InnoDB's
        gap-lock inheritance.  The same replication keeps escalated
        *page* SIREADs sound across B+-tree leaf splits: records moved to
        the new sibling must stay covered.  Returns the number of locks
        inherited.  ``exclude_owner=None`` replicates every holder (the
        page-split case: the splitting writer's own escalated coverage
        must follow its records).

        Latching: holders are collected under the source stripe, grants
        happen under the destination stripe; the queue latch is held
        across both so the two stripes form one atomic step against
        concurrent release/cleanup of the same owners — release paths
        close their race with this grant via their own final
        queue-latched sweep.
        """
        from_index = self._stripe_of(from_resource)
        to_index = self._stripe_of(to_resource)
        exclude_id = exclude_owner.id if exclude_owner is not None else None
        inherited = 0
        with self._queue_latch:
            with self._stripe_latches[from_index]:
                head = self._stripe_heads[from_index].get(from_resource)
                if head is None or not head.mask & _SIREAD_BIT:
                    return 0
                holders = [
                    lock.owner
                    for lock in head.granted.values()
                    if lock.mask & _SIREAD_BIT
                    and lock.owner.id != exclude_id
                ]
            if not holders:
                return 0
            with self._stripe_latches[to_index]:
                to_heads = self._stripe_heads[to_index]
                to_head = to_heads.get(to_resource)
                if to_head is None:
                    to_head = to_heads[to_resource] = _LockHead()
                for holder in holders:
                    existing = self._by_owner.get(holder.id, {}).get(
                        to_resource
                    )
                    if existing is not None and existing.mask & _SIREAD_BIT:
                        continue
                    self._grant(to_head, holder, to_resource, LockMode.SIREAD)
                    inherited += 1
        return inherited

    # ----------------------------------------------------- SIREAD escalation

    def has_escalated_locks(self) -> bool:
        """Atomic gate for the engine's coarse-unit write probes: False
        proves no escalated page/table SIREAD exists.  The weight entry is
        inserted *before* its coarse lock is granted and removed only
        after the lock leaves the table, so a stale True merely sends the
        writer to probe an empty head — safe, never the reverse."""
        return bool(self._escalated_weights)

    def probe_detection(
        self, owner: Any, resource: Resource, mode: LockMode
    ) -> list[Lock]:
        """Detection conflicts on ``resource`` without acquiring anything.

        Two users: write paths probing coarse (page/table) units for
        escalated SIREAD holders, and readers whose fine acquisition was
        skipped because a coarse lock of their own already covers the
        resource (they still owe the Fig 3.4 check against granted
        EXCLUSIVE holders)."""
        stripe_index = self._stripe_of(resource)
        with self._stripe_latches[stripe_index]:
            head = self._stripe_heads[stripe_index].get(resource)
            if head is None:
                return _NO_CONFLICTS
            return self._detection_conflicts(head, owner, mode)

    def probe_detection_batch(
        self, owner: Any, resources: list[Resource], mode: LockMode
    ) -> list[Lock]:
        """Batched :meth:`probe_detection`: group by stripe so a scan
        probing hundreds of covered resources takes one latch per stripe
        (at most ``_STRIPES``) instead of one per resource."""
        if not resources:
            return _NO_CONFLICTS
        by_stripe: dict[int, list[Resource]] = {}
        for resource in resources:
            by_stripe.setdefault(self._stripe_of(resource), []).append(
                resource
            )
        conflicts: list[Lock] = []
        for stripe_index, group in by_stripe.items():
            with self._stripe_latches[stripe_index]:
                heads = self._stripe_heads[stripe_index]
                for resource in group:
                    head = heads.get(resource)
                    if head is not None:
                        found = self._detection_conflicts(head, owner, mode)
                        if found:
                            conflicts.extend(found)
        return conflicts

    def acquire_coarse_sireads(
        self, owner: Any, resources: list[Resource]
    ) -> list[Lock]:
        """Grant SIREADs directly on coarse (page/table) units — the scan
        kernel's up-front page-granularity path: a wide scan covers its
        leaf pages *before* materialising rows instead of flooding the
        table with record sentinels and escalating after the fact.

        Each coarse lock enters ``_escalated_weights`` (weight 1 — it
        replaced nothing) *before* it is granted, exactly as
        :meth:`promote_sireads` gates its grant: a writer that finds no
        fine sentinels must already see :meth:`has_escalated_locks` and
        probe the coarse unit, leaf splits inherit the page lock via
        :meth:`inherit_siread_locks`, and the normal release paths pop
        the weight entry (weight 1 -> zero surplus in the
        ``siread_dropped`` accounting).  Never blocks — SIREAD is
        compatible with every mode.  Returns detection conflicts
        (granted write-mode holders on the coarse units) for the caller
        to dispatch as rw-antidependencies.
        """
        if not resources:
            return _NO_CONFLICTS
        owner_id = owner.id
        conflicts: list[Lock] = []
        with self._queue_latch:
            with self._owner_latch:
                weights = self._escalated_weights
                for resource in resources:
                    weights.setdefault((owner_id, resource), 1)
            by_stripe: dict[int, list[Resource]] = {}
            for resource in resources:
                by_stripe.setdefault(self._stripe_of(resource), []).append(
                    resource
                )
            for stripe_index, group in by_stripe.items():
                with self._stripe_latches[stripe_index]:
                    heads = self._stripe_heads[stripe_index]
                    for resource in group:
                        head = heads.get(resource)
                        if head is None:
                            head = heads[resource] = _LockHead()
                        found = self._detection_conflicts(
                            head, owner, LockMode.SIREAD
                        )
                        if found:
                            conflicts.extend(found)
                        held = self._by_owner.get(owner_id, {}).get(resource)
                        if held is None:
                            self._grant(head, owner, resource, LockMode.SIREAD)
                        elif not held.mask & _SIREAD_BIT:
                            self._add_mode(head, held, LockMode.SIREAD)
        return conflicts

    def siread_owners_by_count(self) -> list[Any]:
        """SIREAD-holding owners, busiest first — the escalation victim
        order (deterministic tie-break on owner id)."""
        with self._owner_latch:
            ranked = sorted(
                self._siread_counts.items(),
                key=lambda item: (-item[1], str(item[0])),
            )
            owners = []
            for owner_id, _count in ranked:
                locks = self._by_owner.get(owner_id)
                if locks:
                    owners.append(next(iter(locks.values())).owner)
            return owners

    def siread_resources(
        self, owner: Any, kinds: tuple[str, ...] = ("rec",)
    ) -> list[Resource]:
        """Resources of the given kinds on which ``owner`` holds a *pure*
        SIREAD sentinel (escalation candidates; a mixed-mode lock belongs
        to an active writer and stays put)."""
        with self._owner_latch:
            locks = self._by_owner.get(owner.id)
            if not locks:
                return []
            return [
                resource
                for resource, lock in locks.items()
                if resource.kind in kinds and lock.mask == _SIREAD_BIT
            ]

    def siread_lock_count(self) -> int:
        """Granted locks carrying SIREAD, across all owners (obs gauge)."""
        with self._owner_latch:
            return sum(self._siread_counts.values())

    def escalated_lock_count(self) -> int:
        """Escalated coarse SIREADs currently granted (obs gauge)."""
        return len(self._escalated_weights)

    def promote_sireads(
        self, owner: Any, fine: list[Resource], coarse: Resource
    ) -> int:
        """Replace ``owner``'s record SIREADs in ``fine`` with one coarse
        (page or table) SIREAD on ``coarse`` — the memory-bounding
        escalation step (Ports & Grittner Section 4).

        Soundness: the coarse lock is granted *before* any fine sentinel
        is removed, so a concurrent writer sees fine or coarse, never
        neither — escalation can add false-positive rw edges but never
        lose one.  The whole promotion holds the queue latch (the licence
        for holding several stripe latches, in rank order), which also
        serialises it against inherit_siread_locks and the release paths'
        final queue-latched sweep: a promotion racing a release either
        lands before that sweep's snapshot (and is swept) or finds no
        fine sentinels left and undoes its own grant.

        Returns the number of record sentinels replaced (added to the
        coarse lock's weight; 0 means nothing was promoted).
        """
        owner_id = owner.id
        weight_key = (owner_id, coarse)
        with self._queue_latch:
            # Gate on *before* the coarse grant: a writer that misses the
            # fine sentinels (removed below) must already see the gate and
            # probe the coarse unit.
            with self._owner_latch:
                base = self._escalated_weights.get(weight_key)
                if base is None:
                    self._escalated_weights[weight_key] = 1
            coarse_index = self._stripe_of(coarse)
            fresh_grant = False
            added_mode = False
            with self._stripe_latches[coarse_index]:
                heads = self._stripe_heads[coarse_index]
                head = heads.get(coarse)
                if head is None:
                    head = heads[coarse] = _LockHead()
                held = self._by_owner.get(owner_id, {}).get(coarse)
                if held is None:
                    fresh_grant = True
                    self._grant(head, owner, coarse, LockMode.SIREAD)
                elif not held.mask & _SIREAD_BIT:
                    added_mode = True
                    self._add_mode(head, held, LockMode.SIREAD)
            if len(fine) == 1:
                by_stripe = {hash(fine[0]) & _STRIPE_MASK: fine}
            else:
                by_stripe = {}
                for resource in fine:
                    by_stripe.setdefault(
                        hash(resource) & _STRIPE_MASK, []
                    ).append(resource)
            removed: list[Lock] = []
            for stripe_index, group in by_stripe.items():
                with self._stripe_latches[stripe_index]:
                    heads = self._stripe_heads[stripe_index]
                    for resource in group:
                        head = heads.get(resource)
                        lock = head.granted.get(owner_id) if head else None
                        if lock is None or lock.mask != _SIREAD_BIT:
                            continue  # released or upgraded since selection
                        self._detach_lock(heads, head, lock)
                        removed.append(lock)
            replaced = len(removed)
            if not replaced:
                # Raced with a release that already took every candidate:
                # undo the grant so a drained owner is not left holding a
                # lock its (already finished) sweep can no longer see.
                undo = None
                with self._stripe_latches[coarse_index]:
                    heads = self._stripe_heads[coarse_index]
                    head = heads.get(coarse)
                    lock = head.granted.get(owner_id) if head else None
                    if lock is not None and lock.mask & _SIREAD_BIT:
                        if fresh_grant and lock.mask == _SIREAD_BIT:
                            self._detach_lock(heads, head, lock)
                            undo = lock
                        elif added_mode:
                            self._discard_mode(head, lock, LockMode.SIREAD)
                if undo is not None:
                    self._forget_locks(owner_id, [undo])
                if base is None:
                    with self._owner_latch:
                        self._escalated_weights.pop(weight_key, None)
                return 0
            # The replaced sentinels are *promoted*, not dropped: no
            # siread_dropped bump — the weight entry carries their count
            # forward to whichever path finally removes the coarse lock.
            # A promoted lock that was itself escalated (page -> table)
            # contributes its whole weight via the surplus.
            surplus = self._forget_locks(owner_id, removed)
            with self._owner_latch:
                prior = base if base is not None else 1
                self._escalated_weights[weight_key] = prior + replaced + surplus
                self.stats["escalations"] += 1
                self.stats["escalated_records"] += replaced
        return replaced

    def _sweep_owner_queued(self, owner_id: Hashable, siread_only: bool) -> int:
        """Final verification sweep of a release path, under the queue
        latch.

        The bulk release passes run without the queue latch, so a SIREAD
        granted concurrently by :meth:`inherit_siread_locks` or
        :meth:`promote_sireads` (both collect-and-grant atomic under the
        queue latch) can land *after* the last bulk snapshot — the window
        the old "second pass" comment papered over.  One queue-latched
        re-snapshot closes it for good: any such grant either completed
        before this sweep (its lock is in the snapshot and is removed) or
        starts after it — and then finds none of this owner's SIREADs
        left to replicate or promote.  Returns the weighted count of
        sentinels removed (``siread_only``) or 0.
        """
        dropped = 0
        with self._queue_latch:
            with self._owner_latch:
                locks = self._by_owner.get(owner_id)
                items = list(locks.items()) if locks else []
            if not items:
                return 0
            removed: list[Lock] = []
            shed = 0
            promote: list[tuple[Resource, int]] = []
            for resource, lock in items:
                stripe_index = hash(resource) & _STRIPE_MASK
                with self._stripe_latches[stripe_index]:
                    heads = self._stripe_heads[stripe_index]
                    head = heads.get(resource)
                    if head is None or head.granted.get(owner_id) is not lock:
                        continue
                    mask = lock.mask
                    if siread_only:
                        if not mask & _SIREAD_BIT:
                            continue
                        if mask == _SIREAD_BIT:
                            self._detach_lock(heads, head, lock)
                            removed.append(lock)
                        else:
                            lock.mask = mask & ~_SIREAD_BIT
                            head.counts -= 1 << _SIREAD_SHIFT
                            if not (head.counts >> _SIREAD_SHIFT) & 0xFFFF:
                                head.mask &= ~_SIREAD_BIT
                            shed += 1
                        dropped += 1
                    else:
                        self._detach_lock(heads, head, lock)
                        removed.append(lock)
                    if head.queue:
                        promote.append((resource, stripe_index))
            if removed or shed:
                if siread_only:
                    dropped += self._forget_locks(
                        owner_id, removed, extra_siread=shed,
                        dropped_stat=len(removed) + shed,
                    )
                else:
                    self._forget_locks(owner_id, removed)
            for resource, stripe_index in promote:
                with self._stripe_latches[stripe_index]:
                    self._promote(resource, stripe_index)
        return dropped

    def cancel_request(self, request: LockRequest, error: Exception | None = None) -> bool:
        """Remove one waiting request (lock-wait timeout path).

        Returns True if the request was still waiting and has now been
        denied; False if it had already resolved.
        """
        if request.state is not RequestState.WAITING:
            return False
        resource = request.resource
        stripe_index = self._stripe_of(resource)
        with self._queue_latch:
            with self._stripe_latches[stripe_index]:
                head = self._stripe_heads[stripe_index].get(resource)
                if head is None or not head.queue or request not in head.queue:
                    return False
                head.queue.remove(request)
                self._waiting_discard(request)
                # Queue membership (checked under the queue latch, which
                # every resolver holds) implies the request is still
                # WAITING, but the terminal transition itself is the
                # arbiter: report cancellation only if this call won it.
                cancelled = request._resolve(RequestState.DENIED, error)
                if cancelled and self.trace is not None:
                    self.trace.emit(
                        EventType.LOCK_DENY, request.owner.id,
                        resource=repr(resource), mode=request.mode.value,
                        error=type(error).__name__ if error else None,
                    )
                self._refresh_wait_edges(head)
                self._promote(resource, stripe_index)
                return cancelled

    def cancel_waits(self, owner: Any, error: Exception | None = None) -> None:
        """Remove any waiting requests of ``owner`` (abort/doom path).

        A non-None ``error`` is delivered to waiters so a blocked executor
        learns the transaction died.  O(requests owned) via the per-owner
        waiting index — this runs on *every* commit and abort, so it must
        not walk the table.
        """
        with self._queue_latch:
            with self._owner_latch:
                pending = self._waiting.pop(owner.id, None)
            if pending:
                by_resource: dict[Resource, list[LockRequest]] = {}
                for request in pending:
                    by_resource.setdefault(request.resource, []).append(request)
                for resource, requests in by_resource.items():
                    stripe_index = self._stripe_of(resource)
                    with self._stripe_latches[stripe_index]:
                        head = self._stripe_heads[stripe_index].get(resource)
                        if head is None or not head.queue:
                            continue
                        removed = False
                        for request in requests:
                            try:
                                head.queue.remove(request)
                            except ValueError:
                                continue
                            removed = True
                            request._resolve(RequestState.DENIED, error)
                            if self.trace is not None:
                                self.trace.emit(
                                    EventType.LOCK_DENY, request.owner.id,
                                    resource=repr(request.resource),
                                    mode=request.mode.value,
                                    error=type(error).__name__ if error else None,
                                )
                        if removed:
                            self._refresh_wait_edges(head)
                            self._promote(resource, stripe_index)
            self.waits_for.remove_node(owner.id)

    # --------------------------------------------------------------- queries

    def locks_on(self, resource: Resource) -> list[Lock]:
        stripe_index = self._stripe_of(resource)
        with self._stripe_latches[stripe_index]:
            head = self._stripe_heads[stripe_index].get(resource)
            return list(head.granted.values()) if head else []

    def locks_held_by(self, owner: Any) -> list[Lock]:
        with self._owner_latch:
            return list(self._by_owner.get(owner.id, {}).values())

    def holds(self, owner: Any, resource: Resource, mode: LockMode | None = None) -> bool:
        owner_locks = self._by_owner.get(owner.id)
        lock = owner_locks.get(resource) if owner_locks else None
        if lock is None:
            return False
        return mode is None or bool(lock.mask & mode.bit)

    def holds_any_siread(self, owner: Any) -> bool:
        return self._siread_counts.get(owner.id, 0) > 0

    def waiting_requests(self) -> list[LockRequest]:
        requests: list[LockRequest] = []
        with self._queue_latch:
            for stripe_index, heads in enumerate(self._stripe_heads):
                with self._stripe_latches[stripe_index]:
                    for head in heads.values():
                        if head.queue:
                            requests.extend(head.queue)
        return requests

    def find_deadlock_victims(self, choose: Callable[[list[Any]], Any]) -> list[Any]:
        """Periodic deadlock sweep: find every cycle and pick victims.

        ``choose`` maps a cycle (list of owner objects) to the victim.
        Returns the victims; the caller is responsible for aborting them
        (which will call :meth:`cancel_waits` and break the cycle).
        """
        victims = []
        seen: set[Hashable] = set()
        with self._queue_latch:
            cycles = self.waits_for.find_cycles()
        for cycle_ids in cycles:
            if seen & set(cycle_ids):
                continue
            seen.update(cycle_ids)
            owners = [self._owner_for(owner_id) for owner_id in cycle_ids]
            owners = [owner for owner in owners if owner is not None]
            if owners:
                victims.append(choose(owners))
        return victims

    def table_size(self) -> int:
        """Number of granted locks — tracks the Section 3.3 growth concern."""
        return self._granted_count

    # -------------------------------------------------------------- internals

    def _owner_for(self, owner_id: Hashable) -> Any | None:
        with self._owner_latch:
            locks = self._by_owner.get(owner_id)
            if locks:
                return next(iter(locks.values())).owner
            pending = self._waiting.get(owner_id)
            if pending:
                return next(iter(pending)).owner
            return None

    def _waiting_discard(self, request: LockRequest) -> None:
        with self._owner_latch:
            pending = self._waiting.get(request.owner.id)
            if pending is not None:
                pending.discard(request)
                if not pending:
                    del self._waiting[request.owner.id]

    def _add_mode(self, head: _LockHead, lock: Lock, mode: LockMode) -> None:
        """Add ``mode`` to a granted lock, keeping all summaries in sync.

        Caller guarantees the lock does not already carry the mode."""
        bit = mode.bit
        lock.mask |= bit
        shift = mode.index << 4
        if not (head.counts >> shift) & 0xFFFF:
            head.mask |= bit
        head.counts += 1 << shift
        if mode is LockMode.SIREAD:
            with self._owner_latch:
                counts_by_owner = self._siread_counts
                owner_id = lock.owner.id
                counts_by_owner[owner_id] = counts_by_owner.get(owner_id, 0) + 1

    def _discard_mode(self, head: _LockHead, lock: Lock, mode: LockMode) -> None:
        """Remove ``mode`` from a granted lock, keeping summaries in sync.

        Caller guarantees the lock carries the mode."""
        bit = mode.bit
        lock.mask &= ~bit
        shift = mode.index << 4
        head.counts -= 1 << shift
        if not (head.counts >> shift) & 0xFFFF:
            head.mask &= ~bit
        if mode is LockMode.SIREAD:
            with self._owner_latch:
                counts_by_owner = self._siread_counts
                owner_id = lock.owner.id
                remaining = counts_by_owner[owner_id] - 1
                if remaining:
                    counts_by_owner[owner_id] = remaining
                else:
                    del counts_by_owner[owner_id]

    def _detection_conflicts(self, head: _LockHead, owner: Any, mode: LockMode) -> list[Lock]:
        """Granted locks of other owners that signal rw-dependencies."""
        interesting = mode.detect_mask
        if not head.mask & interesting:
            return _NO_CONFLICTS
        owner_id = owner.id
        return [
            lock
            for oid, lock in head.granted.items()
            if oid != owner_id and lock.mask & interesting
        ]

    def _blockers(
        self,
        head: _LockHead,
        owner: Any,
        mode: LockMode,
        upgrading: bool = False,
        ahead: Iterable[LockRequest] | None = None,
    ) -> list[Any]:
        """Owners whose granted locks (or requests queued *ahead*) block
        ``mode``.  ``ahead`` defaults to the whole queue (the right view
        for a brand-new request); _promote passes only the true prefix."""
        incompat = mode.incompat_mask
        if head.mask & incompat:
            owner_id = owner.id
            blockers = [
                lock.owner
                for oid, lock in head.granted.items()
                if oid != owner_id and lock.mask & incompat
            ]
        else:
            blockers = []
        if blockers or upgrading:
            # Upgraders only wait for granted incompatible locks; they jump
            # ahead of the queue (appendleft in acquire()).
            return blockers
        # FIFO fairness: an incompatible request already queued ahead (by
        # another owner) blocks too.
        queued_ahead = (head.queue or ()) if ahead is None else ahead
        for queued in queued_ahead:
            if queued.owner.id != owner.id and queued.mode.bit & incompat:
                blockers.append(queued.owner)
        return blockers

    def _grant(
        self,
        head: _LockHead,
        owner: Any,
        resource: Resource,
        mode: LockMode,
        count_acquire: bool = False,
    ) -> None:
        """Caller holds the resource's stripe latch.

        ``count_acquire`` folds the ``acquires`` statistic into the grant's
        own owner-latch section — set by the fresh-grant fast path of
        :meth:`acquire`; promotion and inheritance grants leave it off
        (their acquire was counted at enqueue time, or is not one)."""
        owner_id = owner.id
        owner_locks = self._by_owner.get(owner_id)
        held = owner_locks.get(resource) if owner_locks else None
        if held is not None:
            if not held.mask & mode.bit:
                self._add_mode(head, held, mode)
            # SIREAD->EXCLUSIVE upgrade discards the SIREAD so it is not
            # retained after commit (Section 3.7.3); the new version's
            # first-committer conflicts subsume its detection role.
            if (
                mode is LockMode.EXCLUSIVE
                and self.siread_upgrade
                and held.mask & _SIREAD_BIT
            ):
                self._discard_mode(head, held, LockMode.SIREAD)
                with self._owner_latch:
                    # A discarded escalated sentinel counts as the record
                    # locks it replaced (weight defaults to 1 for plain
                    # record sentinels).
                    self.stats["siread_dropped"] += self._escalated_weights.pop(
                        (owner_id, resource), 1
                    )
        else:
            lock = Lock(owner=owner, resource=resource)
            head.granted[owner_id] = lock
            with self._owner_latch:
                if count_acquire:
                    self.stats["acquires"] += 1
                self._by_owner[owner_id][resource] = lock
                self._granted_count += 1
            self._add_mode(head, lock, mode)

    def _promote(self, resource: Resource, stripe_index: int | None = None) -> None:
        """Grant queued requests now compatible, front-first (FIFO).

        Caller holds the queue latch and the resource's stripe latch."""
        if stripe_index is None:
            stripe_index = hash(resource) & _STRIPE_MASK
        head = self._stripe_heads[stripe_index].get(resource)
        if head is None:
            return
        while head.queue:
            request = head.queue[0]
            owner_locks = self._by_owner.get(request.owner.id)
            upgrading = owner_locks is not None and request.resource in owner_locks
            if self._blockers(
                head, request.owner, request.mode, upgrading=upgrading, ahead=()
            ):
                break
            head.queue.popleft()
            self._waiting_discard(request)
            self._grant(head, request.owner, resource, request.mode)
            request._resolve(RequestState.GRANTED)
            if self.trace is not None:
                self.trace.emit(
                    EventType.LOCK_GRANT, request.owner.id,
                    resource=repr(resource), mode=request.mode.value,
                )
        if head.queue:
            self._refresh_wait_edges(head)
        if head.empty():
            self._stripe_heads[stripe_index].pop(resource, None)

    def _refresh_wait_edges(self, head: _LockHead) -> None:
        """Recompute waits-for edges contributed by this resource's queue."""
        if not head.queue:
            return
        # Remove then re-add: simple and correct; queues are short.
        for request in head.queue:
            self.waits_for.clear_edges_from(request.owner.id)
        # Re-add edges for every waiter of every resource the owner waits on
        # (an owner can wait on at most one resource at a time in this
        # engine, so recomputing from this head alone is sufficient).
        # Waiters key off the *strongest* granted mode, the historical
        # policy — _STRONGEST_BIT keeps that exact behaviour mask-cheap.
        ahead: list[LockRequest] = []
        for request in head.queue:
            incompat = request.mode.incompat_mask
            request_owner_id = request.owner.id
            for lock in head.granted.values():
                if lock.owner_id != request_owner_id and _STRONGEST_BIT[lock.mask] & incompat:
                    self.waits_for.add_edge(request_owner_id, lock.owner_id)
            for earlier in ahead:
                if earlier.owner.id != request_owner_id and earlier.mode.bit & incompat:
                    self.waits_for.add_edge(request_owner_id, earlier.owner.id)
            ahead.append(request)

    def _resolve_deadlocks(self, request: LockRequest) -> None:
        """Immediate detection: break every cycle through the new waiter."""
        guard = 0
        while request.state is RequestState.WAITING:
            cycle_ids = self.waits_for.find_cycle_through(request.owner.id)
            if not cycle_ids:
                return
            owners = [self._owner_for(owner_id) for owner_id in cycle_ids]
            owners = [owner for owner in owners if owner is not None]
            victim = self.deadlock_handler(owners, request)
            if victim is None:
                return
            guard += 1
            if guard > 100:
                raise RuntimeError("deadlock resolution did not converge")
