"""The lock manager.

A classic FIFO-queued lock manager extended with the paper's requirements:

* a non-blocking ``SIREAD`` mode whose conflicts are *reported* rather than
  enforced (Section 3.2);
* SIREAD locks retained after their owner commits, until no concurrent
  transaction remains (Section 3.3) — released via :meth:`LockManager.release_all`
  with ``keep_siread=True`` and cleaned later by :meth:`LockManager.drop_siread_locks`;
* SIREAD -> EXCLUSIVE upgrade: acquiring an EXCLUSIVE lock discards the
  owner's SIREAD lock on the same resource (Section 3.7.3 / 4.3 item 4);
* gap resources for next-key locking (Section 2.5.2/3.5): a gap is simply
  a distinct key in the lock table derived from the same data item.

Lock acquisition never blocks the calling thread.  When a request must
wait it is enqueued and an :class:`AcquireResult` with ``status=WAIT`` is
returned; engine operations translate that into a
:class:`~repro.errors.LockWaitRequired` control-flow exception which
executors handle.  Acquisition is idempotent: re-requesting a held lock in
the same or weaker mode is a no-op, which is what makes operation retry
after a wait safe.
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, NamedTuple

from repro.locking.deadlock import WaitsForGraph
from repro.locking.modes import LockMode, compatible
from repro.obs.registry import CounterGroup
from repro.obs.trace import EventType


class Resource(NamedTuple):
    """A key in the lock table.

    ``kind`` distinguishes record locks (``"rec"``), gap locks (``"gap"``,
    conceptually the open interval just before ``key``), and page locks
    (``"page"``, used by the Berkeley DB-style page-granularity mode).
    """

    kind: str
    table: str
    key: Hashable

    def __repr__(self) -> str:
        return f"{self.kind}:{self.table}[{self.key!r}]"


def record_resource(table: str, key: Hashable) -> Resource:
    return Resource("rec", table, key)


def gap_resource(table: str, key: Hashable) -> Resource:
    return Resource("gap", table, key)


def page_resource(table: str, page_id: int) -> Resource:
    return Resource("page", table, page_id)


@dataclass(slots=True)
class Lock:
    """A granted lock: one owner's claim on one resource.

    A lock can carry several *modes* at once — e.g. a transaction that
    scanned a gap (SIREAD) and then inserts into it (INSERT_INTENTION)
    keeps both semantics; discarding the SIREAD there would blind phantom
    detection for later inserts by others.
    """

    owner: Any  # transaction-like object with a hashable .id
    resource: Resource
    modes: set[LockMode]

    def __repr__(self) -> str:
        names = "+".join(sorted(m.value for m in self.modes))
        return f"Lock({self.owner_id}, {self.resource!r}, {names})"

    @property
    def owner_id(self) -> int:
        return self.owner.id

    @property
    def mode(self) -> LockMode:
        """The strongest held mode (convenience for displays/tests)."""
        return max(self.modes, key=_STRENGTH.__getitem__)

    def blocks(self, requested: LockMode) -> bool:
        return any(not compatible(mode, requested) for mode in self.modes)


class RequestState(enum.Enum):
    WAITING = "waiting"
    GRANTED = "granted"
    DENIED = "denied"


@dataclass(eq=False)
class LockRequest:
    """A pending (or resolved) lock request.

    Executors subscribe to resolution via :meth:`on_resolve`; the callback
    fires exactly once, with the request already in its final state.
    """

    owner: Any
    resource: Resource
    mode: LockMode
    state: RequestState = RequestState.WAITING
    error: Exception | None = None
    _callbacks: list[Callable[["LockRequest"], None]] = field(default_factory=list)

    def on_resolve(self, callback: Callable[["LockRequest"], None]) -> None:
        if self.state is not RequestState.WAITING:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _resolve(self, state: RequestState, error: Exception | None = None) -> None:
        self.state = state
        self.error = error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        return (
            f"LockRequest({self.owner.id}, {self.resource!r}, "
            f"{self.mode.value}, {self.state.value})"
        )


class AcquireStatus(enum.Enum):
    GRANTED = "granted"
    WAIT = "wait"


@dataclass(slots=True)
class AcquireResult:
    """Outcome of :meth:`LockManager.acquire`.

    Attributes:
        status: GRANTED or WAIT.
        request: the pending request when ``status == WAIT``.
        detection_conflicts: granted locks held by *other* transactions
            that are interesting to the SSI layer even though they do not
            block — EXCLUSIVE holders seen by a SIREAD request, and SIREAD
            holders seen by an EXCLUSIVE request (Figs 3.4/3.5 line "for
            each conflicting ... lock").  Populated on GRANTED results.
    """

    status: AcquireStatus
    request: LockRequest | None = None
    detection_conflicts: list[Lock] = field(default_factory=list)

    @property
    def granted(self) -> bool:
        return self.status is AcquireStatus.GRANTED


class _LockHead:
    """Per-resource state: granted locks plus the FIFO wait queue."""

    __slots__ = ("granted", "queue")

    def __init__(self):
        self.granted: list[Lock] = []
        self.queue: deque[LockRequest] = deque()

    def empty(self) -> bool:
        return not self.granted and not self.queue


#: Modes that actually participate in blocking decisions.
_BLOCKING_MODES = (LockMode.SHARED, LockMode.EXCLUSIVE)

#: Lock strength order (display/victim heuristics).
_STRENGTH = {
    LockMode.SIREAD: 0,
    LockMode.SHARED: 1,
    LockMode.INSERT_INTENTION: 2,
    LockMode.EXCLUSIVE: 3,
}

#: What a held mode subsumes: re-requesting a covered mode is a no-op.
#: EXCLUSIVE covers everything (the Section 3.7.3 upgrade rationale:
#: conflicts with the new version replace SIREAD detection).  Note that
#: INSERT_INTENTION does NOT cover SIREAD — a gap scan's sentinel must
#: survive the owner's own insert into that gap.
_COVERS = {
    LockMode.EXCLUSIVE: {
        LockMode.EXCLUSIVE,
        LockMode.SHARED,
        LockMode.SIREAD,
        LockMode.INSERT_INTENTION,
    },
    LockMode.SHARED: {LockMode.SHARED},
    LockMode.INSERT_INTENTION: {LockMode.INSERT_INTENTION},
    LockMode.SIREAD: {LockMode.SIREAD},
}


def _is_covered(held_modes: set[LockMode], requested: LockMode) -> bool:
    return any(requested in _COVERS[held] for held in held_modes)


class LockManager:
    """Lock table with FIFO queuing, upgrades and waits-for maintenance.

    The manager is single-threaded by design: the engine serialises calls
    under its kernel mutex, mirroring InnoDB's design (Section 4.4 notes
    InnoDB's lock table is protected by a global kernel mutex).

    Args:
        deadlock_handler: called with (cycle, requesting LockRequest) when
            immediate detection finds a cycle; must return the victim
            transaction object.  ``None`` disables immediate detection —
            the caller must then run :meth:`find_deadlock_victims`
            periodically (this is the Berkeley DB db_perf configuration
            whose detection latency shapes Figure 6.2).
        siread_upgrade: enable the Section 3.7.3 optimisation.
    """

    def __init__(
        self,
        deadlock_handler: Callable[[list[Any], LockRequest], Any] | None = None,
        siread_upgrade: bool = True,
    ):
        self._heads: dict[Resource, _LockHead] = {}
        self._by_owner: dict[Hashable, dict[Resource, Lock]] = defaultdict(dict)
        self.waits_for = WaitsForGraph()
        self.deadlock_handler = deadlock_handler
        self.siread_upgrade = siread_upgrade
        #: cumulative counters for the overhead benchmarks (registry-adoptable)
        self.stats = CounterGroup(
            {"acquires": 0, "waits": 0, "upgrades": 0, "siread_dropped": 0}
        )
        #: event trace, installed by Database.enable_tracing (None = off)
        self.trace = None

    # ------------------------------------------------------------------ API

    def acquire(self, owner: Any, resource: Resource, mode: LockMode) -> AcquireResult:
        """Request ``mode`` on ``resource`` for ``owner``.

        Never blocks.  Returns GRANTED (possibly with detection conflicts)
        or WAIT with the enqueued request.  Raises nothing: deadlock
        resolution happens through the injected handler which may doom a
        transaction via its own side effects.
        """
        self.stats["acquires"] += 1
        head = self._heads.get(resource)
        if head is None:
            head = self._heads[resource] = _LockHead()

        held = self._by_owner[owner.id].get(resource)
        if held is not None and _is_covered(held.modes, mode):
            # Idempotent re-acquire (or covered request): nothing to do,
            # but still report detection conflicts for retry correctness.
            return AcquireResult(
                AcquireStatus.GRANTED,
                detection_conflicts=self._detection_conflicts(head, owner, mode),
            )

        if mode is LockMode.SIREAD:
            # SIREAD never blocks and never waits (Section 3.2).
            conflicts = self._detection_conflicts(head, owner, mode)
            self._grant(head, owner, resource, mode)
            return AcquireResult(AcquireStatus.GRANTED, detection_conflicts=conflicts)

        blockers = self._blockers(head, owner, mode, upgrading=held is not None)
        if not blockers:
            conflicts = self._detection_conflicts(head, owner, mode)
            if held is not None:
                self.stats["upgrades"] += 1
            self._grant(head, owner, resource, mode)
            return AcquireResult(AcquireStatus.GRANTED, detection_conflicts=conflicts)

        # Must wait.  Upgrades queue at the front (standard treatment) so
        # an upgrader is not starved behind later plain requests.
        request = LockRequest(owner=owner, resource=resource, mode=mode)
        if held is not None:
            head.queue.appendleft(request)
            self.stats["upgrades"] += 1
        else:
            head.queue.append(request)
        self.stats["waits"] += 1
        if self.trace is not None:
            self.trace.emit(
                EventType.LOCK_WAIT, owner.id,
                resource=repr(resource), mode=mode.value,
            )
        self._refresh_wait_edges(head)

        if self.deadlock_handler is not None:
            self._resolve_deadlocks(request)
            if request.state is RequestState.GRANTED:
                return AcquireResult(AcquireStatus.GRANTED)
            if request.state is RequestState.DENIED:
                # Re-raise through the normal WAIT path: the caller sees a
                # resolved-denied request and surfaces the error.
                return AcquireResult(AcquireStatus.WAIT, request=request)
        return AcquireResult(AcquireStatus.WAIT, request=request)

    def release_all(self, owner: Any, keep_siread: bool = False) -> None:
        """Release every lock held by ``owner`` (commit/abort time).

        With ``keep_siread=True`` (Serializable SI commit, Fig 3.2 line 9)
        the SIREAD locks stay in the table; they are dropped later by
        :meth:`drop_siread_locks` once no concurrent transaction remains.
        """
        locks = self._by_owner.get(owner.id)
        if not locks:
            self.cancel_waits(owner)
            return
        touched: list[Resource] = []
        for resource, lock in list(locks.items()):
            if keep_siread and LockMode.SIREAD in lock.modes:
                if lock.modes != {LockMode.SIREAD}:
                    # Shed the blocking modes, retain only the sentinel.
                    lock.modes = {LockMode.SIREAD}
                    touched.append(resource)
                continue
            self._remove_lock(lock)  # drops the owner's entry when empty
            touched.append(resource)
        self.cancel_waits(owner)
        for resource in touched:
            self._promote(resource)

    def drop_siread_locks(self, owner: Any) -> int:
        """Remove retained SIREAD locks of a cleaned-up suspended txn."""
        locks = self._by_owner.get(owner.id)
        if not locks:
            return 0
        dropped = 0
        for lock in list(locks.values()):
            if LockMode.SIREAD in lock.modes:
                lock.modes.discard(LockMode.SIREAD)
                dropped += 1
                if not lock.modes:
                    self._remove_lock(lock)  # drops owner's entry when empty
        self.stats["siread_dropped"] += dropped
        return dropped

    def inherit_siread_locks(
        self, from_resource: Resource, to_resource: Resource, exclude_owner: Any
    ) -> int:
        """Replicate SIREAD locks from one gap onto another.

        When an insert splits a gap, holders of SIREAD locks on the old
        gap (scans whose range covered it, possibly already committed)
        must also cover the new sub-gap, or later inserts between the new
        key and its predecessor would escape phantom detection — InnoDB's
        gap-lock inheritance.  Returns the number of locks inherited.
        """
        head = self._heads.get(from_resource)
        if head is None:
            return 0
        inherited = 0
        for lock in list(head.granted):
            if LockMode.SIREAD not in lock.modes:
                continue
            if lock.owner.id == exclude_owner.id:
                continue
            existing = self._by_owner.get(lock.owner.id, {}).get(to_resource)
            if existing is not None and LockMode.SIREAD in existing.modes:
                continue
            to_head = self._heads.get(to_resource)
            if to_head is None:
                to_head = self._heads[to_resource] = _LockHead()
            self._grant(to_head, lock.owner, to_resource, LockMode.SIREAD)
            inherited += 1
        return inherited

    def cancel_request(self, request: LockRequest, error: Exception | None = None) -> bool:
        """Remove one waiting request (lock-wait timeout path).

        Returns True if the request was still waiting and has now been
        denied; False if it had already resolved.
        """
        if request.state is not RequestState.WAITING:
            return False
        head = self._heads.get(request.resource)
        if head is None or request not in head.queue:
            return False
        head.queue.remove(request)
        request._resolve(RequestState.DENIED, error)
        if self.trace is not None:
            self.trace.emit(
                EventType.LOCK_DENY, request.owner.id,
                resource=repr(request.resource), mode=request.mode.value,
                error=type(error).__name__ if error else None,
            )
        self._refresh_wait_edges(head)
        self._promote(request.resource)
        return True

    def cancel_waits(self, owner: Any, error: Exception | None = None) -> None:
        """Remove any waiting requests of ``owner`` (abort/doom path).

        A non-None ``error`` is delivered to waiters so a blocked executor
        learns the transaction died.
        """
        for resource, head in list(self._heads.items()):
            pending = [r for r in head.queue if r.owner.id == owner.id]
            if not pending:
                continue
            for request in pending:
                head.queue.remove(request)
                request._resolve(RequestState.DENIED, error)
                if self.trace is not None:
                    self.trace.emit(
                        EventType.LOCK_DENY, request.owner.id,
                        resource=repr(request.resource), mode=request.mode.value,
                        error=type(error).__name__ if error else None,
                    )
            self._refresh_wait_edges(head)
            self._promote(resource)
        self.waits_for.remove_node(owner.id)

    # --------------------------------------------------------------- queries

    def locks_on(self, resource: Resource) -> list[Lock]:
        head = self._heads.get(resource)
        return list(head.granted) if head else []

    def locks_held_by(self, owner: Any) -> list[Lock]:
        return list(self._by_owner.get(owner.id, {}).values())

    def holds(self, owner: Any, resource: Resource, mode: LockMode | None = None) -> bool:
        lock = self._by_owner.get(owner.id, {}).get(resource)
        if lock is None:
            return False
        return mode is None or mode in lock.modes

    def holds_any_siread(self, owner: Any) -> bool:
        return any(
            LockMode.SIREAD in lock.modes
            for lock in self._by_owner.get(owner.id, {}).values()
        )

    def waiting_requests(self) -> list[LockRequest]:
        return [request for head in self._heads.values() for request in head.queue]

    def find_deadlock_victims(self, choose: Callable[[list[Any]], Any]) -> list[Any]:
        """Periodic deadlock sweep: find every cycle and pick victims.

        ``choose`` maps a cycle (list of owner objects) to the victim.
        Returns the victims; the caller is responsible for aborting them
        (which will call :meth:`cancel_waits` and break the cycle).
        """
        victims = []
        seen: set[Hashable] = set()
        for cycle_ids in self.waits_for.find_cycles():
            if seen & set(cycle_ids):
                continue
            seen.update(cycle_ids)
            owners = [self._owner_for(owner_id) for owner_id in cycle_ids]
            owners = [owner for owner in owners if owner is not None]
            if owners:
                victims.append(choose(owners))
        return victims

    def table_size(self) -> int:
        """Number of granted locks — tracks the Section 3.3 growth concern."""
        return sum(len(head.granted) for head in self._heads.values())

    # -------------------------------------------------------------- internals

    def _owner_for(self, owner_id: Hashable) -> Any | None:
        locks = self._by_owner.get(owner_id)
        if locks:
            return next(iter(locks.values())).owner
        for head in self._heads.values():
            for request in head.queue:
                if request.owner.id == owner_id:
                    return request.owner
        return None

    def _detection_conflicts(self, head: _LockHead, owner: Any, mode: LockMode) -> list[Lock]:
        """Granted locks of other owners that signal rw-dependencies."""
        if mode is LockMode.SIREAD:
            interesting = {LockMode.EXCLUSIVE, LockMode.INSERT_INTENTION}
        elif mode in (LockMode.EXCLUSIVE, LockMode.INSERT_INTENTION):
            interesting = {LockMode.SIREAD}
        else:
            return []
        return [
            lock
            for lock in head.granted
            if lock.owner.id != owner.id and lock.modes & interesting
        ]

    def _blockers(
        self,
        head: _LockHead,
        owner: Any,
        mode: LockMode,
        upgrading: bool = False,
        ahead: Iterable[LockRequest] | None = None,
    ) -> list[Any]:
        """Owners whose granted locks (or requests queued *ahead*) block
        ``mode``.  ``ahead`` defaults to the whole queue (the right view
        for a brand-new request); _promote passes only the true prefix."""
        blockers = [
            lock.owner
            for lock in head.granted
            if lock.owner.id != owner.id and lock.blocks(mode)
        ]
        if blockers or upgrading:
            # Upgraders only wait for granted incompatible locks; they jump
            # ahead of the queue (appendleft in acquire()).
            return blockers
        # FIFO fairness: an incompatible request already queued ahead (by
        # another owner) blocks too.
        for queued in head.queue if ahead is None else ahead:
            if queued.owner.id != owner.id and not compatible(queued.mode, mode):
                blockers.append(queued.owner)
        return blockers

    def _grant(self, head: _LockHead, owner: Any, resource: Resource, mode: LockMode) -> None:
        held = self._by_owner[owner.id].get(resource)
        if held is not None:
            held.modes.add(mode)
            # SIREAD->EXCLUSIVE upgrade discards the SIREAD so it is not
            # retained after commit (Section 3.7.3); the new version's
            # first-committer conflicts subsume its detection role.
            if (
                mode is LockMode.EXCLUSIVE
                and self.siread_upgrade
                and LockMode.SIREAD in held.modes
            ):
                held.modes.discard(LockMode.SIREAD)
                self.stats["siread_dropped"] += 1
        else:
            lock = Lock(owner=owner, resource=resource, modes={mode})
            head.granted.append(lock)
            self._by_owner[owner.id][resource] = lock

    def _remove_lock(self, lock: Lock) -> None:
        head = self._heads.get(lock.resource)
        if head is not None:
            try:
                head.granted.remove(lock)
            except ValueError:
                pass
            if head.empty():
                del self._heads[lock.resource]
        owner_locks = self._by_owner.get(lock.owner_id)
        if owner_locks is not None:
            owner_locks.pop(lock.resource, None)
            if not owner_locks:
                self._by_owner.pop(lock.owner_id, None)

    def _promote(self, resource: Resource) -> None:
        """Grant queued requests now compatible, front-first (FIFO)."""
        head = self._heads.get(resource)
        if head is None:
            return
        granted_any = False
        while head.queue:
            request = head.queue[0]
            upgrading = request.resource in self._by_owner.get(request.owner.id, {})
            if self._blockers(
                head, request.owner, request.mode, upgrading=upgrading, ahead=()
            ):
                break
            head.queue.popleft()
            self._grant(head, request.owner, resource, request.mode)
            request._resolve(RequestState.GRANTED)
            if self.trace is not None:
                self.trace.emit(
                    EventType.LOCK_GRANT, request.owner.id,
                    resource=repr(resource), mode=request.mode.value,
                )
            granted_any = True
        if granted_any or True:
            self._refresh_wait_edges(head)
        if head.empty():
            self._heads.pop(resource, None)

    def _refresh_wait_edges(self, head: _LockHead) -> None:
        """Recompute waits-for edges contributed by this resource's queue."""
        # Remove then re-add: simple and correct; queues are short.
        for request in head.queue:
            self.waits_for.clear_edges_from(request.owner.id)
        # Re-add edges for every waiter of every resource the owner waits on
        # (an owner can wait on at most one resource at a time in this
        # engine, so recomputing from this head alone is sufficient).
        ahead: list[LockRequest] = []
        for request in head.queue:
            for lock in head.granted:
                if lock.owner.id != request.owner.id and not compatible(lock.mode, request.mode):
                    self.waits_for.add_edge(request.owner.id, lock.owner_id)
            for earlier in ahead:
                if earlier.owner.id != request.owner.id and not compatible(
                    earlier.mode, request.mode
                ):
                    self.waits_for.add_edge(request.owner.id, earlier.owner.id)
            ahead.append(request)

    def _resolve_deadlocks(self, request: LockRequest) -> None:
        """Immediate detection: break every cycle through the new waiter."""
        guard = 0
        while request.state is RequestState.WAITING:
            cycle_ids = self.waits_for.find_cycle_through(request.owner.id)
            if not cycle_ids:
                return
            owners = [self._owner_for(owner_id) for owner_id in cycle_ids]
            owners = [owner for owner in owners if owner is not None]
            victim = self.deadlock_handler(owners, request)
            if victim is None:
                return
            guard += 1
            if guard > 100:
                raise RuntimeError("deadlock resolution did not converge")
