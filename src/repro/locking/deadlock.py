"""Waits-for graph and deadlock detection.

Two detection disciplines are supported, matching the two prototypes in
the paper:

* **Immediate** (InnoDB-style): a cycle check runs on every enqueue; the
  lock manager invokes its deadlock handler at once.
* **Periodic** (Berkeley DB ``db_perf``-style, Section 6.1.3): nobody
  checks at enqueue time; a sweep runs on an interval (twice a second in
  the paper), which is why blocked S2PL transactions stall visibly in the
  log-flush experiments — the simulator reproduces that delay.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable


class WaitsForGraph:
    """Directed graph: edge A -> B means transaction A waits for B."""

    def __init__(self):
        self._edges: dict[Hashable, set[Hashable]] = defaultdict(set)

    def add_edge(self, waiter: Hashable, holder: Hashable) -> None:
        if waiter != holder:
            self._edges[waiter].add(holder)

    def clear_edges_from(self, waiter: Hashable) -> None:
        self._edges.pop(waiter, None)

    def remove_node(self, node: Hashable) -> None:
        self._edges.pop(node, None)
        for targets in self._edges.values():
            targets.discard(node)

    def edges_from(self, waiter: Hashable) -> set[Hashable]:
        return set(self._edges.get(waiter, ()))

    def find_cycle_through(self, start: Hashable) -> list[Hashable]:
        """Return a cycle containing ``start``, or [] if none exists.

        DFS from ``start``; a path back to ``start`` is a deadlock.
        """
        path: list[Hashable] = [start]
        on_path = {start}
        visited: set[Hashable] = set()

        def dfs(node: Hashable) -> list[Hashable]:
            for target in self._edges.get(node, ()):
                if target == start:
                    return list(path)
                if target in on_path or target in visited:
                    continue
                path.append(target)
                on_path.add(target)
                found = dfs(target)
                if found:
                    return found
                on_path.discard(target)
                path.pop()
            visited.add(node)
            return []

        return dfs(start)

    def find_cycles(self) -> list[list[Hashable]]:
        """Return one representative cycle per strongly connected component
        of size > 1 (plus self-loops), via Tarjan's algorithm."""
        index_counter = [0]
        stack: list[Hashable] = []
        lowlink: dict[Hashable, int] = {}
        index: dict[Hashable, int] = {}
        on_stack: set[Hashable] = set()
        cycles: list[list[Hashable]] = []

        nodes = set(self._edges)
        for targets in self._edges.values():
            nodes.update(targets)

        def strongconnect(node: Hashable) -> None:
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for target in self._edges.get(node, ()):
                if target not in index:
                    strongconnect(target)
                    lowlink[node] = min(lowlink[node], lowlink[target])
                elif target in on_stack:
                    lowlink[node] = min(lowlink[node], index[target])
            if lowlink[node] == index[node]:
                component: list[Hashable] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in self._edges.get(node, ()):
                    cycles.append(component)

        for node in nodes:
            if node not in index:
                strongconnect(node)
        return cycles

    def __len__(self) -> int:
        return sum(len(targets) for targets in self._edges.values())


class DeadlockDetector:
    """Periodic-sweep detector used by the discrete-event simulator.

    ``victim_policy`` maps a cycle (list of transaction objects) to the
    victim to abort; the default aborts the youngest (largest begin
    timestamp), the policy the paper suggests reduces wasted work.
    """

    def __init__(
        self,
        victim_policy: Callable[[list], object] | None = None,
    ):
        self.victim_policy = victim_policy or self.youngest
        self.detected = 0

    @staticmethod
    def youngest(cycle: list) -> object:
        return max(cycle, key=lambda txn: getattr(txn, "begin_seq", None) or txn.begin_ts or 0)

    @staticmethod
    def oldest(cycle: list) -> object:
        return min(cycle, key=lambda txn: getattr(txn, "begin_seq", None) or txn.begin_ts or 0)

    def sweep(self, lock_manager, abort: Callable[[object], None]) -> list:
        """Find deadlocks and abort one victim per cycle via ``abort``."""
        victims = lock_manager.find_deadlock_victims(self.victim_policy)
        for victim in victims:
            self.detected += 1
            abort(victim)
        return victims
