"""Locking subsystem.

Implements the lock modes, compatibility matrix, FIFO wait queues,
waits-for graph and deadlock detection used by every isolation level, plus
the paper's additions: the non-blocking SIREAD mode, SIREAD retention
after commit, and SIREAD->EXCLUSIVE upgrades (Sections 3.2, 3.7.3, 4.3).
"""

from repro.locking.modes import LockMode, compatible, is_siread
from repro.locking.manager import (
    AcquireResult,
    Lock,
    LockManager,
    LockRequest,
    Resource,
    gap_resource,
    record_resource,
    page_resource,
)
from repro.locking.deadlock import DeadlockDetector, WaitsForGraph

__all__ = [
    "LockMode",
    "compatible",
    "is_siread",
    "AcquireResult",
    "Lock",
    "LockManager",
    "LockRequest",
    "Resource",
    "record_resource",
    "gap_resource",
    "page_resource",
    "DeadlockDetector",
    "WaitsForGraph",
]
