"""repro — Serializable Snapshot Isolation for Python.

A from-scratch reproduction of Cahill, Fekete & Röhm, *Serializable
Isolation for Snapshot Databases* (SIGMOD 2008 / Cahill's 2009 thesis):
a multiversion transactional engine offering snapshot isolation, strict
two-phase locking, and the paper's Serializable SI algorithm, plus the
benchmarks (SmallBank, sibench, TPC-C++) and analysis tools (static
dependency graphs, multiversion serialization graph checking) used in its
evaluation.

Quickstart::

    from repro import Database, IsolationLevel

    db = Database()
    db.create_table("accounts")
    db.load("accounts", [("x", 50), ("y", 50)])

    txn = db.begin(IsolationLevel.SERIALIZABLE_SSI)
    balance = txn.read("accounts", "x") + txn.read("accounts", "y")
    txn.write("accounts", "x", balance - 80)
    txn.commit()
"""

from repro.engine.config import DeadlockMode, EngineConfig, LockGranularity
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.engine.transaction import Transaction, TransactionStatus
from repro.errors import (
    ConstraintError,
    DeadlockError,
    DuplicateKeyError,
    KeyNotFoundError,
    ReproError,
    TransactionAbortedError,
    UnsafeError,
    UpdateConflictError,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Transaction",
    "TransactionStatus",
    "IsolationLevel",
    "EngineConfig",
    "LockGranularity",
    "DeadlockMode",
    "ReproError",
    "TransactionAbortedError",
    "UnsafeError",
    "UpdateConflictError",
    "DeadlockError",
    "ConstraintError",
    "KeyNotFoundError",
    "DuplicateKeyError",
    "__version__",
]
