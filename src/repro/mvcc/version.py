"""Versioned data items.

Each data item is a :class:`VersionChain` of committed :class:`Version`
objects ordered by commit timestamp.  Deletes install *tombstone* versions
(paper Section 3.5) so that a predicate read interleaved after a delete
still observes a "newer version" and triggers rw-conflict detection.

Version order under snapshot isolation is simply commit-timestamp order:
the first-committer-wins rule guarantees that among two transactions that
produce versions of the same item, one commits before the other starts
(paper Section 2.5.1).

Storage layout (PR-4 hot-path pass): versions are kept oldest->newest with
a parallel ``commit_ts`` array, so ``install`` is an O(1) append instead
of an O(n) front-insert, visibility is a tail check (the common "snapshot
sees the newest version" case) falling back to one ``bisect``, and "does a
newer version exist" — the first-committer-wins probe — is O(1).  The
public view is unchanged: iteration and :meth:`newer_than` still yield
newest-first.

Concurrency protocol (PR-5 latching pass): *writers* — ``install`` and
``prune`` — are serialised by the owning table's latch.  *Readers* take no
latch at all.  That works because both lists live in a single
``_data = (versions, ts)`` tuple slot:

* ``install`` appends in place, version first, then timestamp.  Readers
  treat ``len(ts)`` as the authoritative length, so a half-finished append
  (version present, timestamp not yet) is simply invisible; and any
  version being installed concurrently carries a ``commit_ts`` newer than
  every live snapshot (snapshot assignment and version install are both
  under the commit latch), so it would be invisible anyway.
* ``prune`` never mutates the lists a reader may hold — it builds pruned
  copies and swaps the ``_data`` tuple in one reference store.  A reader
  that grabbed the old tuple keeps a consistent (merely stale) pair; the
  old in-place ``del list[:removed]`` could shift entries under a
  concurrent ``bisect`` and return a version misaligned with its
  timestamp.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


class _Tombstone:
    """Sentinel value stored by delete operations."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


#: Singleton marking a deleted version.
TOMBSTONE = _Tombstone()


@dataclass(frozen=True, slots=True)
class Version:
    """One committed version of a data item.

    Attributes:
        value: the payload, or :data:`TOMBSTONE` for a delete.
        commit_ts: timestamp at which the creating transaction committed.
            Initial bulk-loaded data uses ``commit_ts == 0``.
        creator_id: transaction id of the creator (0 for bulk-loaded data).
    """

    value: Any
    commit_ts: int
    creator_id: int
    # Precomputed at construction: every read checks it, versions are
    # immutable, and a plain slot load beats a property call on the scan
    # hot path.
    is_tombstone: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "is_tombstone", self.value is TOMBSTONE)

    def __repr__(self) -> str:
        return f"Version(ts={self.commit_ts}, txn={self.creator_id}, value={self.value!r})"


class VersionChain:
    """All committed versions of one data item.

    The chain only ever contains *committed* versions: in-flight writes
    live in each transaction's private write set and are installed at
    commit, under the exclusive lock held since the write (this is the
    "most implementations of SI use locking during updates" behaviour of
    paper Section 2.5).
    """

    __slots__ = ("_data",)

    def __init__(self, versions: Iterable[Version] | None = None):
        # Legacy constructor argument is newest-first; storage is ascending.
        ordered = list(versions or [])
        ordered.reverse()
        self._data: tuple[list[Version], list[int]] = (
            ordered,
            [version.commit_ts for version in ordered],
        )

    def install(self, version: Version) -> int:
        """Append a newly committed version; returns the new chain length
        (the engine's version-chain-length histogram observes it without
        re-walking the chain).

        Caller holds the table latch; commit timestamps are handed out
        under the engine's commit latch, so installs always arrive in
        increasing commit_ts order.  Append order (version, then ts)
        matters: latch-free readers use ``len(ts)`` as the length.
        """
        versions, ts = self._data
        if ts and version.commit_ts <= ts[-1]:
            raise ValueError(
                f"version install out of order: {version.commit_ts} "
                f"<= {ts[-1]}"
            )
        versions.append(version)
        ts.append(version.commit_ts)
        return len(ts)

    def visible(self, read_ts: int) -> Version | None:
        """Return the version a snapshot taken at ``read_ts`` sees.

        That is the newest version with ``commit_ts <= read_ts``; ``None``
        if the item did not exist at that time.  The caller is responsible
        for treating a visible tombstone as "not present".  Latch-free:
        the length is captured once and every index stays below it.
        """
        versions, ts = self._data
        length = len(ts)
        if not length:
            return None
        if ts[length - 1] <= read_ts:  # common case: sees the newest
            return versions[length - 1]
        index = bisect_right(ts, read_ts, 0, length)
        return versions[index - 1] if index else None

    def newer_than(self, read_ts: int) -> Iterator[Version]:
        """Yield every committed version ignored by a snapshot at ``read_ts``,
        newest first.

        These are exactly the versions whose existence signals a
        rw-dependency from the reader to the version creator (Fig 3.4,
        lines 8-9).
        """
        versions, ts = self._data
        length = len(ts)
        if not length or ts[length - 1] <= read_ts:
            return
        for index in range(
            length - 1, bisect_right(ts, read_ts, 0, length) - 1, -1
        ):
            yield versions[index]

    def has_newer(self, read_ts: int) -> bool:
        """O(1): does any committed version postdate a snapshot at
        ``read_ts``?  (The first-committer-wins probe, Section 2.5.1.)"""
        _versions, ts = self._data
        length = len(ts)
        return length > 0 and ts[length - 1] > read_ts

    def latest(self) -> Version | None:
        """Return the most recent committed version, if any."""
        versions, ts = self._data
        length = len(ts)
        return versions[length - 1] if length else None

    def prune(self, horizon_ts: int) -> int:
        """Garbage-collect versions no active snapshot can read.

        Keeps the newest version with ``commit_ts <= horizon_ts`` (it is
        still visible to a snapshot at ``horizon_ts``) and drops everything
        older.  A tombstone that becomes the oldest kept version is also
        dropped once nothing older survives, mirroring the paper's note
        that tombstones can be reclaimed when no transaction could read
        the last valid version (Section 3.5).

        Caller holds the table latch.  Copy-on-write: the surviving
        suffix is copied into fresh lists and published with one tuple
        store, so concurrent latch-free readers keep a consistent view.

        Returns the number of versions removed.
        """
        versions, ts = self._data
        visible_at_horizon = bisect_right(ts, horizon_ts)
        if visible_at_horizon == 0:
            return 0  # every version is newer than the horizon
        keep_from = visible_at_horizon - 1
        # Reclaim a leading tombstone: nothing older remains for it to
        # shadow, and every surviving snapshot sees "absent" either way.
        if versions[keep_from].is_tombstone and ts[keep_from] <= horizon_ts:
            keep_from += 1
        if not keep_from:
            return 0
        self._data = (versions[keep_from:], ts[keep_from:])
        return keep_from

    def __len__(self) -> int:
        return len(self._data[1])

    def __iter__(self) -> Iterator[Version]:
        versions, ts = self._data
        return reversed(versions[: len(ts)])

    def __repr__(self) -> str:
        versions, ts = self._data
        return f"VersionChain({list(reversed(versions[: len(ts)]))!r})"
