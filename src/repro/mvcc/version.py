"""Versioned data items.

Each data item is a :class:`VersionChain`: a list of committed
:class:`Version` objects ordered by commit timestamp (newest first).
Deletes install *tombstone* versions (paper Section 3.5) so that a
predicate read interleaved after a delete still observes a "newer version"
and triggers rw-conflict detection.

Version order under snapshot isolation is simply commit-timestamp order:
the first-committer-wins rule guarantees that among two transactions that
produce versions of the same item, one commits before the other starts
(paper Section 2.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


class _Tombstone:
    """Sentinel value stored by delete operations."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<TOMBSTONE>"


#: Singleton marking a deleted version.
TOMBSTONE = _Tombstone()


@dataclass(frozen=True, slots=True)
class Version:
    """One committed version of a data item.

    Attributes:
        value: the payload, or :data:`TOMBSTONE` for a delete.
        commit_ts: timestamp at which the creating transaction committed.
            Initial bulk-loaded data uses ``commit_ts == 0``.
        creator_id: transaction id of the creator (0 for bulk-loaded data).
    """

    value: Any
    commit_ts: int
    creator_id: int

    @property
    def is_tombstone(self) -> bool:
        return self.value is TOMBSTONE

    def __repr__(self) -> str:
        return f"Version(ts={self.commit_ts}, txn={self.creator_id}, value={self.value!r})"


class VersionChain:
    """All committed versions of one data item, newest first.

    The chain only ever contains *committed* versions: in-flight writes
    live in each transaction's private write set and are installed at
    commit, under the exclusive lock held since the write (this is the
    "most implementations of SI use locking during updates" behaviour of
    paper Section 2.5).
    """

    __slots__ = ("_versions",)

    def __init__(self, versions: list[Version] | None = None):
        self._versions: list[Version] = versions or []

    def install(self, version: Version) -> int:
        """Append a newly committed version; returns the new chain length
        (the engine's version-chain-length histogram observes it without
        re-walking the chain).

        Commit timestamps are handed out under the engine's commit mutex,
        so installs always arrive in increasing commit_ts order.
        """
        if self._versions and version.commit_ts <= self._versions[0].commit_ts:
            raise ValueError(
                f"version install out of order: {version.commit_ts} "
                f"<= {self._versions[0].commit_ts}"
            )
        self._versions.insert(0, version)
        return len(self._versions)

    def visible(self, read_ts: int) -> Version | None:
        """Return the version a snapshot taken at ``read_ts`` sees.

        That is the newest version with ``commit_ts <= read_ts``; ``None``
        if the item did not exist at that time.  The caller is responsible
        for treating a visible tombstone as "not present".
        """
        for version in self._versions:
            if version.commit_ts <= read_ts:
                return version
        return None

    def newer_than(self, read_ts: int) -> Iterator[Version]:
        """Yield every committed version ignored by a snapshot at ``read_ts``.

        These are exactly the versions whose existence signals a
        rw-dependency from the reader to the version creator (Fig 3.4,
        lines 8-9).
        """
        for version in self._versions:
            if version.commit_ts > read_ts:
                yield version
            else:
                break

    def latest(self) -> Version | None:
        """Return the most recent committed version, if any."""
        return self._versions[0] if self._versions else None

    def prune(self, horizon_ts: int) -> int:
        """Garbage-collect versions no active snapshot can read.

        Keeps the newest version with ``commit_ts <= horizon_ts`` (it is
        still visible to a snapshot at ``horizon_ts``) and drops everything
        older.  A tombstone that becomes the oldest kept version is also
        dropped once nothing older survives, mirroring the paper's note
        that tombstones can be reclaimed when no transaction could read
        the last valid version (Section 3.5).

        Returns the number of versions removed.
        """
        keep = 0
        while keep < len(self._versions) and self._versions[keep].commit_ts > horizon_ts:
            keep += 1
        if keep == len(self._versions):
            return 0  # every version is newer than the horizon
        # self._versions[keep] is the version visible at horizon_ts; drop
        # everything older.
        removed = len(self._versions) - (keep + 1)
        del self._versions[keep + 1:]
        # Reclaim a trailing tombstone: nothing older remains for it to
        # shadow, and every surviving snapshot sees "absent" either way.
        if self._versions[-1].is_tombstone and self._versions[-1].commit_ts <= horizon_ts:
            del self._versions[-1]
            removed += 1
        return removed

    def __len__(self) -> int:
        return len(self._versions)

    def __iter__(self) -> Iterator[Version]:
        return iter(self._versions)

    def __repr__(self) -> str:
        return f"VersionChain({self._versions!r})"
