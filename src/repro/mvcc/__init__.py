"""Multiversion concurrency control substrate.

Provides the logical clock, version chains with tombstones, and snapshot
visibility rules used by the engine (paper Sections 2.4-2.5).
"""

from repro.mvcc.timestamps import LogicalClock
from repro.mvcc.version import TOMBSTONE, Version, VersionChain
from repro.mvcc.snapshot import Snapshot

__all__ = ["LogicalClock", "Version", "VersionChain", "TOMBSTONE", "Snapshot"]
