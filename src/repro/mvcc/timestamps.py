"""Logical timestamps.

The engine orders events with a single monotonically increasing integer
counter.  Begin timestamps and commit timestamps are drawn from the same
sequence, so two transactions are *concurrent* exactly when their
``[begin, commit)`` intervals intersect (paper Section 2.1).
"""

from __future__ import annotations

import itertools
import threading


class LogicalClock:
    """A thread-safe monotonically increasing logical clock.

    Timestamps start at 1; 0 is reserved as "before everything" so that
    initial data loaded at timestamp 0 is visible to every snapshot.
    """

    def __init__(self):
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._last = 0

    def next(self) -> int:
        """Return a fresh timestamp, strictly greater than all before it."""
        with self._lock:
            self._last = next(self._counter)
            return self._last

    def now(self) -> int:
        """Return the most recently issued timestamp (0 if none yet)."""
        return self._last

    def __repr__(self) -> str:
        return f"LogicalClock(now={self._last})"
