"""Snapshots (read views).

A snapshot fixes the database state a transaction reads: everything
committed at or before ``read_ts`` plus the transaction's own writes
(paper Section 2.5).

The engine supports *deferred snapshot allocation* (paper Section 4.5):
the read view of a transaction that starts with a locking operation is not
chosen until after that first lock is granted, which guarantees that
single-statement update transactions never abort under the
first-committer-wins rule.
"""

from __future__ import annotations

from repro.mvcc.version import Version, VersionChain


class Snapshot:
    """An immutable read view anchored at a logical timestamp."""

    __slots__ = ("read_ts",)

    def __init__(self, read_ts: int):
        self.read_ts = read_ts

    def visible(self, chain: VersionChain) -> Version | None:
        """The version of ``chain`` this snapshot sees (may be a tombstone)."""
        return chain.visible(self.read_ts)

    def ignored_versions(self, chain: VersionChain) -> list[Version]:
        """Committed versions newer than this snapshot (rw-conflict evidence)."""
        return list(chain.newer_than(self.read_ts))

    def sees(self, commit_ts: int) -> bool:
        """True if a transaction that committed at ``commit_ts`` is visible."""
        return commit_ts <= self.read_ts

    def __repr__(self) -> str:
        return f"Snapshot(read_ts={self.read_ts})"
