"""Snapshots (read views).

A snapshot fixes the database state a transaction reads: everything
committed at or before ``read_ts`` plus the transaction's own writes
(paper Section 2.5).

The engine supports *deferred snapshot allocation* (paper Section 4.5):
the read view of a transaction that starts with a locking operation is not
chosen until after that first lock is granted, which guarantees that
single-statement update transactions never abort under the
first-committer-wins rule.
"""

from __future__ import annotations

from repro.mvcc.version import Version, VersionChain


class Snapshot:
    """An immutable read view anchored at a logical timestamp.

    :meth:`visible` keeps a one-slot last-visible memo: a snapshot's view
    of a chain can never change, because commit timestamps are handed out
    by the same monotonic clock that anchored ``read_ts`` — every version
    installed after this snapshot was taken carries ``commit_ts >
    read_ts`` and is invisible by definition.  Consecutive re-reads of the
    same item (read-modify-write, and operation retry after a lock wait)
    therefore skip the chain lookup.  A single slot beats a per-chain dict
    here: chain lookups are already O(1) on the newest version, so a dict
    memo costs more on scans than it saves on re-reads.
    """

    __slots__ = ("read_ts", "_memo_chain", "_memo_version")

    def __init__(self, read_ts: int):
        self.read_ts = read_ts
        self._memo_chain: VersionChain | None = None
        self._memo_version: Version | None = None

    def visible(self, chain: VersionChain) -> Version | None:
        """The version of ``chain`` this snapshot sees (may be a tombstone)."""
        if chain is self._memo_chain:
            return self._memo_version
        # Inlined tail fast path of VersionChain.visible: on the dominant
        # "snapshot sees the newest version" case this saves a call per row.
        # Latch-free read of the chain's (versions, ts) tuple; len(ts) is
        # the authoritative length during a concurrent install.
        versions, ts = chain._data
        length = len(ts)
        if length and ts[length - 1] <= self.read_ts:
            version = versions[length - 1]
        else:
            version = chain.visible(self.read_ts)
        self._memo_chain = chain
        self._memo_version = version
        return version

    def ignored_versions(self, chain: VersionChain) -> list[Version]:
        """Committed versions newer than this snapshot (rw-conflict evidence)."""
        return list(chain.newer_than(self.read_ts))

    def sees(self, commit_ts: int) -> bool:
        """True if a transaction that committed at ``commit_ts`` is visible."""
        return commit_ts <= self.read_ts

    def __repr__(self) -> str:
        return f"Snapshot(read_ts={self.read_ts})"
