"""The concurrency-control policy interface.

The paper's central claim is that Serializable SI is a *modular* runtime
addition to a snapshot-isolation engine (Chapter 3), and both follow-up
systems the literature compares against — PostgreSQL's SSI (Ports &
Grittner, VLDB 2012) and SSN (Wang et al., VLDBJ 2017) — structure their
serializability certifiers as a layer over a CC-agnostic kernel.  This
module is that seam: :class:`~repro.engine.database.Database` is a pure
MVCC + locking kernel, and every discipline-specific decision is a hook on
the :class:`CCPolicy` owned by each transaction.

One policy instance exists per (database, isolation level); transactions
carry a reference to theirs (``txn.policy``), assigned by the single
registry lookup in ``Database.begin`` — the only place the kernel maps an
:class:`~repro.engine.isolation.IsolationLevel` to behavior.

Mixed-level rw edges (Section 3.8) are resolved by *pairwise dispatch*:
the kernel offers the edge to the reader's and writer's policies in
descending :attr:`CCPolicy.edge_precedence` order and the first policy
whose :meth:`CCPolicy.handles_rw_edge` accepts it records the edge.  If
neither accepts, the kernel counts a ``mixed_edges_dropped`` and moves on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.engine.isolation import IsolationLevel
from repro.locking.modes import LockMode

if TYPE_CHECKING:
    from repro.engine.database import Database
    from repro.engine.transaction import Transaction
    from repro.errors import TransactionAbortedError


class CCPolicy:
    """Strategy interface for one concurrency-control discipline.

    Subclasses set :attr:`level` and override the hooks they need; the
    defaults implement the most permissive discipline (plain snapshot
    isolation: no read locks, no dependency tracking, no certification).
    """

    #: the isolation level this policy implements (registry key).
    level: IsolationLevel

    #: reads resolve against a begin-time snapshot (False only for S2PL's
    #: current reads).
    uses_snapshots: bool = True

    #: pairwise rw-edge dispatch order: the higher-precedence side of an
    #: edge is offered it first (SGT outranks SSI so any edge touching an
    #: SGT transaction lands in the full serialization graph).
    edge_precedence: int = 0

    def __init__(self, db: "Database"):
        self.db = db
        # Precomputed hook-override flags: the kernel serialises every
        # policy hook under its tracker latch, and these let the hot
        # read/write/begin paths skip both the latch and a no-op call
        # when the policy does not override the hook (plain SI reads,
        # for instance, pay nothing).
        cls = type(self)
        self.tracks_begin = cls.on_begin is not CCPolicy.on_begin
        self.tracks_reads = cls.on_read is not CCPolicy.on_read
        self.tracks_writes = cls.on_write is not CCPolicy.on_write
        # Commit-side analogues: a policy with no certification hooks
        # commits without the tracker latch, and one with no retention
        # hooks finalizes without it (plain SI and S2PL hit both fast
        # paths — their commits touch only the commit latch, if that).
        self.certifies = (
            cls.before_commit is not CCPolicy.before_commit
            or cls.after_commit is not CCPolicy.after_commit
        )
        self.retains = (
            cls.retain_read_locks is not CCPolicy.retain_read_locks
            or cls.retain_record is not CCPolicy.retain_record
        )

    def install(self, db: "Database") -> None:
        """Attach policy-owned subsystems to the database (called once,
        after every registered policy is constructed).  Policies that own
        shared engine state — the SSI conflict tracker, the SGT certifier
        — publish it and register its metrics group here."""

    # ------------------------------------------------------------ lifecycle

    def on_begin(self, txn: "Transaction") -> None:
        """Per-transaction setup at begin (Fig 3.1: conflict slots,
        certifier node registration...)."""

    def on_abort(self, txn: "Transaction") -> None:
        """The transaction is rolling back (own-policy cleanup)."""

    def on_transaction_retired(self, txn: "Transaction") -> None:
        """``txn`` — of *any* level — is leaving the system (aborted, or
        committed-suspended and now cleaned up).  Called on every
        registered policy, because cross-level edges mean one policy's
        bookkeeping can reference another policy's transactions."""

    # ------------------------------------------------------------ read path

    def read_lock_mode(self, txn: "Transaction") -> Optional[LockMode]:
        """The lock mode a read acquires: SHARED (blocking, S2PL), SIREAD
        (non-blocking sentinel, SSI/SGT) or None (no read locks, SI)."""
        return None

    def on_read(
        self, txn: "Transaction", table_name: str, key, chain, version
    ) -> None:
        """A read resolved ``version`` (possibly None/tombstone) from
        ``chain``.  SSI marks rw edges to creators of ignored newer
        versions (Fig 3.4 lines 8-9); SGT additionally records the wr
        edge to the creator of the version read."""

    # ----------------------------------------------------------- write path

    def on_write(self, txn: "Transaction", table_name: str, key) -> None:
        """A write of ``(table_name, key)`` passed its conflict checks and
        is about to enter the write set.  SGT certifies the ww edge from
        the superseded version's creator here."""

    def on_write_conflict(
        self, writer: "Transaction", reader: "Transaction"
    ) -> None:
        """``writer`` (owned by this policy) acquired a write lock and
        found ``reader`` holding a SIREAD lock on the same resource — the
        Fig 3.5 / Fig 3.7 detection point.  Policies that track
        rw-antidependencies apply their concurrency filter and hand the
        edge to the kernel's pairwise dispatch; the default (a
        non-tracking writer) records the dropped mixed edge so Section
        3.8 mixed-workload runs stay auditable."""
        self.db.count_dropped_mixed_edge(reader=reader, writer=writer)

    # ------------------------------------------------------------- rw edges

    def handles_rw_edge(
        self, reader: "Transaction", writer: "Transaction"
    ) -> bool:
        """Can this policy record the rw edge ``reader -> writer``?  Part
        of the pairwise mixed-level dispatch (see the module docstring)."""
        return False

    def on_rw_edge(self, reader: "Transaction", writer: "Transaction") -> None:
        """Record the rw edge (only called when :meth:`handles_rw_edge`
        accepted it)."""

    # --------------------------------------------------------------- commit

    def before_commit(
        self, txn: "Transaction"
    ) -> Optional["TransactionAbortedError"]:
        """Commit certification (Fig 3.2 / Fig 3.10's unsafe test).
        Return an abort error to veto the commit — the kernel rolls the
        transaction back and raises it — or None to allow."""
        return None

    def after_commit(self, txn: "Transaction") -> None:
        """Post-commit bookkeeping while locks are still held (Fig 3.10
        lines 9-12: conflict-slot maintenance)."""

    def excuses_unsafe(self, txn: "Transaction") -> bool:
        """Consulted by the enhanced conflict tracker when ``txn``'s slots
        form a dangerous structure: return True to excuse it (commit
        anyway).  The hook behind read-only-style optimizations — stock
        policies never excuse."""
        return False

    def retain_read_locks(self, txn: "Transaction") -> bool:
        """Should the committing transaction's SIREAD locks outlive it
        (Section 3.3)?  The kernel passes the answer to the lock manager
        as ``keep_siread``."""
        return False

    def retain_record(self, txn: "Transaction", keep_siread: bool) -> bool:
        """Should the committed transaction's record stay findable (the
        suspended set, Section 3.3)?  Defaults to following the SIREAD
        decision; SGT retains every committed node."""
        return keep_siread

    def needs_findable_record(self, txn: "Transaction") -> bool:
        """When the record is *not* retained (no SIREADs, no
        out-conflict), must it nonetheless stay findable in the registry
        while a concurrent snapshot predates its commit?  SSI answers yes
        for writers: the newer-version read check (Fig 3.4 lines 8-9)
        resolves reader -> writer edges by creator id, and a write-only
        committed transaction dropped from the registry loses them."""
        return False

    def may_cleanup(self, txn: "Transaction") -> bool:
        """May this suspended committed transaction be dropped now that no
        active snapshot overlaps it (Sections 4.3.1/4.6.1)?  SGT vetoes
        while incoming graph edges remain."""
        return True

    # ------------------------------------------------------------- plumbing

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.level.value})"
