"""Serializable Snapshot Isolation — the paper's algorithm (Chapter 3) —
plus the Ports & Grittner read-only optimization as a derived policy.

:class:`SSIPolicy` owns the conflict tracker (:mod:`repro.core.conflicts`)
and translates the kernel's detection events into the pseudocode of
Figs 3.1-3.10: SIREAD read locks, newer-version marking on reads,
the Fig 3.5 concurrency filter on writes, the commit-time unsafe test,
and SIREAD/record retention after commit.

:class:`SSIReadOnlyOptPolicy` shares the same tracker — its transactions
interoperate with stock-SSI transactions edge-for-edge — and only relaxes
the dangerous-structure test via :meth:`CCPolicy.excuses_unsafe`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cc.policy import CCPolicy
from repro.core.conflicts import (
    SafeSnapshotMonitor,
    conflict_ref_id,
    make_tracker,
    pivot_triple,
)
from repro.engine.isolation import IsolationLevel
from repro.errors import TransactionAbortedError, UnsafeError
from repro.locking.modes import LockMode
from repro.obs.trace import EventType

if TYPE_CHECKING:
    from repro.engine.database import Database
    from repro.engine.transaction import Transaction


class SSIPolicy(CCPolicy):
    """The paper's Serializable SI discipline."""

    level = IsolationLevel.SERIALIZABLE_SSI
    edge_precedence = 5

    def install(self, db: "Database") -> None:
        self.tracker = make_tracker(
            precise=db.config.precise_conflicts,
            victim_policy=db.config.victim_policy,
            abort_early=db.config.abort_early,
        )
        # Published on the database for tests/benchmarks that inspect
        # tracker state, and adopted by the unified metrics registry.
        db.tracker = self.tracker
        db.metrics.register_group("tracker", self.tracker.stats)
        # Safe-snapshot monitor (Ports & Grittner §2.4): watches declared
        # read-only transactions and tells them when their snapshot can no
        # longer join a dangerous structure.
        db.safe_snapshots = SafeSnapshotMonitor(db, family=SSIPolicy)
        db.metrics.register_group("safe_snapshots", db.safe_snapshots.stats)

    # ------------------------------------------------------------ lifecycle

    def on_begin(self, txn: "Transaction") -> None:
        self.tracker.init_transaction(txn)

    # ------------------------------------------------------------ read path

    def read_lock_mode(self, txn: "Transaction") -> Optional[LockMode]:
        if txn.snapshot_safe:
            # Safe snapshot: this transaction can never be the T_in of a
            # dangerous structure, so its reads need no SIREAD sentinels.
            return None
        return LockMode.SIREAD

    def on_read(
        self, txn: "Transaction", table_name: str, key, chain, version
    ) -> None:
        if txn.snapshot_safe:
            return  # edges from a safe snapshot cannot close a cycle
        # Fig 3.4 lines 8-9: every newer version this snapshot ignores is
        # an rw-dependency to its creator (if its record survives).
        read_ts = txn.snapshot.read_ts
        if not chain.has_newer(read_ts):  # O(1) common case: none ignored
            return
        for newer in chain.newer_than(read_ts):
            creator = self.db.find_transaction(newer.creator_id)
            if creator is not None:
                self.db.dispatch_rw_edge(reader=txn, writer=creator)

    # ----------------------------------------------------------- write path

    def on_write_conflict(
        self, writer: "Transaction", reader: "Transaction"
    ) -> None:
        """The Fig 3.5 concurrency filter, then pairwise edge dispatch."""
        if reader.is_aborted or reader.doom_error is not None:
            return
        if reader.is_committed and reader.commit_ts is not None:
            begin = writer.read_ts
            if begin is None or reader.commit_ts <= begin:
                # Not concurrent: the reader committed before the writer's
                # snapshot — including the deferred-snapshot case, where
                # the snapshot will be allocated after this lock grant and
                # hence after the reader's commit (Section 4.5).
                return
        self.db.dispatch_rw_edge(reader=reader, writer=writer)

    # ------------------------------------------------------------- rw edges

    def handles_rw_edge(
        self, reader: "Transaction", writer: "Transaction"
    ) -> bool:
        # Both ends must live in this tracker's conflict-slot world; the
        # read-only-optimized variant subclasses SSIPolicy and shares the
        # tracker, so ssi/ssi-ro transactions interoperate freely.
        return isinstance(reader.policy, SSIPolicy) and isinstance(
            writer.policy, SSIPolicy
        )

    def on_rw_edge(self, reader: "Transaction", writer: "Transaction") -> None:
        db = self.db
        victim = self.tracker.mark_conflict(reader, writer)
        if db.trace is not None:
            # Conflict-flag transition: the slot states *after* marking
            # (Fig 3.4/3.5's inConflict/outConflict bookkeeping).
            db.trace.emit(
                EventType.RW_CONFLICT, reader.id, peer=writer.id,
                reader_out=conflict_ref_id(reader.out_conflict, reader),
                writer_in=conflict_ref_id(writer.in_conflict, writer),
            )
        if victim is not None:
            if db.trace is not None:
                self._trace_victim(victim, reader, writer)
            db.doom(
                victim,
                UnsafeError("unsafe pattern of conflicts", txn_id=victim.id),
            )

    def _trace_victim(
        self,
        victim: "Transaction",
        reader: "Transaction",
        writer: "Transaction",
    ) -> None:
        """Emit the victim-selection event with the full pivot triple.

        The pivot is whichever edge party carries both an incoming and an
        outgoing conflict (the victim itself under the default policy; the
        committed party when the tracker's closing-edge rule fired)."""
        candidates = [
            txn for txn in (victim, writer, reader)
            if bool(txn.in_conflict) and bool(txn.out_conflict)
        ]
        pivot = candidates[0] if candidates else victim
        t_in, pivot_id, t_out = pivot_triple(pivot)
        self.db.trace.emit(
            EventType.VICTIM, victim.id, cause="unsafe",
            pivot=pivot_id, t_in=t_in, t_out=t_out,
            policy=self.db.config.victim_policy,
        )

    # --------------------------------------------------------------- commit

    def before_commit(
        self, txn: "Transaction"
    ) -> Optional[TransactionAbortedError]:
        if not self.tracker.check_commit(txn):
            return None
        db = self.db
        if db.trace is not None:
            t_in, pivot_id, t_out = pivot_triple(txn)
            db.trace.emit(
                EventType.UNSAFE, txn.id, at="commit",
                pivot=pivot_id, t_in=t_in, t_out=t_out,
            )
        return UnsafeError(
            "commit would risk a non-serializable execution", txn_id=txn.id
        )

    def after_commit(self, txn: "Transaction") -> None:
        self.tracker.after_commit(txn)

    def retain_read_locks(self, txn: "Transaction") -> bool:
        if txn.snapshot_safe:
            # Safe snapshots retain nothing: their SIREADs were already
            # dropped when the monitor proved safety.
            return False
        # Suspend if SIREAD locks are held OR an outgoing conflict was
        # detected (the Section 3.7.3 adjustment).
        return self.db.locks.holds_any_siread(txn) or bool(txn.out_conflict)

    def needs_findable_record(self, txn: "Transaction") -> bool:
        # A committed writer must stay findable while concurrent
        # transactions remain: Fig 3.4's newer-version branch resolves
        # reader -> writer edges by creator id, so dropping a write-only
        # committed record from the registry silently loses those edges.
        # (Registry-only retention — the record is not *suspended*: with
        # no SIREADs and no outgoing conflict it can never be a pivot.)
        return bool(txn.write_set)


class SSIReadOnlyOptPolicy(SSIPolicy):
    """SSI plus the read-only optimization of Ports & Grittner
    (*Serializable Snapshot Isolation in PostgreSQL*, VLDB 2012, §2.4).

    A dangerous structure ``T_in --rw--> pivot --rw--> T_out`` with a
    *read-only* ``T_in`` only threatens serializability when ``T_out``
    committed before ``T_in`` took its snapshot: otherwise ``T_in`` can be
    serialized before ``T_out`` and the cycle cannot complete.  The excuse
    needs the enhanced tracker's transaction references (precise slot
    identities); under the basic boolean tracker it never fires and the
    policy degrades to stock SSI.
    """

    level = IsolationLevel.SERIALIZABLE_SSI_RO

    def install(self, db: "Database") -> None:
        # Share SSIPolicy's tracker (installed earlier in registration
        # order) so ssi and ssi-ro transactions see each other's edges.
        self.tracker = db.tracker

    def excuses_unsafe(self, txn: "Transaction") -> bool:
        t_in = txn.in_conflict
        t_out = txn.out_conflict
        if t_in is None or t_in is txn or t_in is True:
            return False  # T_in identity unknown: assume the worst.
        if getattr(t_in, "snapshot_safe", False):
            # T_in runs under a proven-safe snapshot: it can always be
            # serialized before the pivot; no cycle can complete.
            return True
        if t_in.write_set:
            return False  # not read-only: the excuse does not apply.
        if not (t_in.is_committed or getattr(t_in, "read_only", False)):
            # An active T_in that has not *declared* read-only may still
            # write; only a finished or declared-RO T_in is excusable.
            return False
        if t_out is None or t_out is txn or t_out is True:
            return False  # T_out identity unknown.
        if not t_out.is_committed:
            return False
        if t_in.read_ts is None:
            return False
        # Safe exactly when T_out committed after T_in's snapshot.
        return t_out.commit_ts > t_in.read_ts
