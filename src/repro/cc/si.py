"""Plain snapshot isolation (Section 2.3).

Reads come from the begin-time snapshot with no read locks of any kind;
writes take EXCLUSIVE locks under first-updater/first-committer-wins.
Write skew and phantom anomalies are permitted — this is the discipline
the paper's algorithm upgrades.  Every hook is the kernel default (the
base class *is* the SI policy); the subclass exists only to carry the
level key.
"""

from __future__ import annotations

from repro.cc.policy import CCPolicy
from repro.engine.isolation import IsolationLevel


class SIPolicy(CCPolicy):
    """Snapshot isolation: the unmodified substrate."""

    level = IsolationLevel.SNAPSHOT
