"""Strict two-phase locking (Section 2.2).

Reads take blocking SHARED locks (next-key locked in scans, so phantoms
are impossible) and see the latest committed version rather than a
snapshot.  No dependency tracking, no certification: serializability
comes entirely from the lock table, so every hook except the read-lock
mode keeps its kernel default.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cc.policy import CCPolicy
from repro.engine.isolation import IsolationLevel
from repro.locking.modes import LockMode

if TYPE_CHECKING:
    from repro.engine.transaction import Transaction


class S2PLPolicy(CCPolicy):
    """The lock-based serializable baseline."""

    level = IsolationLevel.SERIALIZABLE_2PL
    uses_snapshots = False

    def read_lock_mode(self, txn: "Transaction") -> Optional[LockMode]:
        return LockMode.SHARED
