"""The serialization-graph-testing baseline (Section 2.7).

Owns the :class:`~repro.sgt.scheduler.SGTCertifier` and feeds it every
dependency the kernel surfaces: wr edges from reads, ww edges from
version supersession, rw edges from the SIREAD detection machinery.  No
concurrency filter applies — even a non-concurrent edge can lie on a
cycle — and committed nodes are retained until their incoming edges
drain, the cost the paper holds against SGT schedulers.

With the highest :attr:`~repro.cc.policy.CCPolicy.edge_precedence`, any
rw edge touching an SGT transaction lands in the full graph even when the
other end runs SSI or SI.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cc.policy import CCPolicy
from repro.engine.isolation import IsolationLevel
from repro.errors import UnsafeError
from repro.locking.modes import LockMode
from repro.sgt.scheduler import SGTCertifier

if TYPE_CHECKING:
    from repro.engine.database import Database
    from repro.engine.transaction import Transaction


class SGTPolicy(CCPolicy):
    """Online serialization-graph certification."""

    level = IsolationLevel.SGT
    edge_precedence = 10

    def install(self, db: "Database") -> None:
        self.certifier = SGTCertifier()
        # Published for tests/benchmarks that inspect the graph, and
        # adopted by the unified metrics registry.
        db.certifier = self.certifier
        db.metrics.register_group("sgt", self.certifier.stats)

    # ------------------------------------------------------------ lifecycle

    def on_begin(self, txn: "Transaction") -> None:
        self.certifier.register(txn.id)

    def on_transaction_retired(self, txn: "Transaction") -> None:
        # Any level's transaction may have been drawn into the graph by a
        # mixed-level edge; drop its node once it leaves the system.
        self.certifier.remove(txn.id)

    # ------------------------------------------------------------ read path

    def read_lock_mode(self, txn: "Transaction") -> Optional[LockMode]:
        return LockMode.SIREAD

    def on_read(
        self, txn: "Transaction", table_name: str, key, chain, version
    ) -> None:
        # Newer ignored versions are rw edges, exactly as for SSI.
        read_ts = txn.snapshot.read_ts
        if chain.has_newer(read_ts):
            for newer in chain.newer_than(read_ts):
                creator = self.db.find_transaction(newer.creator_id)
                if creator is not None:
                    self.db.dispatch_rw_edge(reader=txn, writer=creator)
        # wr edge to the creator of the version actually read.
        if (
            version is not None
            and not version.is_tombstone
            and version.commit_ts > 0
        ):
            creator = self.db.find_transaction(version.creator_id)
            if creator is not None:
                self.certify_edge(creator, txn)

    # ----------------------------------------------------------- write path

    def on_write(self, txn: "Transaction", table_name: str, key) -> None:
        # ww edge from the creator of the version this write supersedes
        # (rw/wr edges come from locks and reads).
        chain = self.db.table(table_name).chain(key)
        latest = chain.latest() if chain is not None else None
        if latest is not None:
            creator = self.db.find_transaction(latest.creator_id)
            if creator is not None:
                self.certify_edge(creator, txn)

    def on_write_conflict(
        self, writer: "Transaction", reader: "Transaction"
    ) -> None:
        # The certifier tracks the full graph: even a non-concurrent rw
        # edge (reader committed before writer began) can lie on a cycle,
        # so no concurrency filter applies (Section 2.7).
        self.db.dispatch_rw_edge(reader=reader, writer=writer)

    # ------------------------------------------------------------- rw edges

    def handles_rw_edge(
        self, reader: "Transaction", writer: "Transaction"
    ) -> bool:
        return True

    def on_rw_edge(self, reader: "Transaction", writer: "Transaction") -> None:
        self.certify_edge(reader, writer)

    def certify_edge(self, src: "Transaction", dst: "Transaction") -> None:
        """Install the edge; abort an active participant if it closes a
        real cycle."""
        cycle = self.certifier.add_dependency(src.id, dst.id)
        if cycle:
            victim = src if src.is_active else dst
            self.db.doom(
                victim, UnsafeError("SGT cycle detected", txn_id=victim.id)
            )

    # --------------------------------------------------------------- commit

    def retain_read_locks(self, txn: "Transaction") -> bool:
        return self.db.locks.holds_any_siread(txn) or bool(txn.out_conflict)

    def retain_record(self, txn: "Transaction", keep_siread: bool) -> bool:
        # Every committed node stays findable while the graph may still
        # grow edges through it.
        return True

    def may_cleanup(self, txn: "Transaction") -> bool:
        # SGT nodes additionally wait out their incoming edges: future
        # wr/ww edges out of this node could otherwise complete a cycle we
        # already hold half of.
        return not self.certifier.has_incoming(txn.id)
