"""The policy registry: IsolationLevel -> CCPolicy class.

Policies self-register at import time (the package ``__init__`` imports
the built-ins in a deliberate order);
:func:`build_policies` instantiates one policy per registered level for a
database and runs their two-phase installation — construct everything
first, then :meth:`~repro.cc.policy.CCPolicy.install` in registration
order, so a policy that piggybacks on another's subsystem (the read-only
optimization sharing SSI's tracker) finds it published.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Type

from repro.cc.policy import CCPolicy
from repro.engine.isolation import IsolationLevel

if TYPE_CHECKING:
    from repro.engine.database import Database

_REGISTRY: Dict[IsolationLevel, Type[CCPolicy]] = {}


def register_policy(policy_cls: Type[CCPolicy]) -> Type[CCPolicy]:
    """Register (or replace) the policy class for its declared level.
    Usable as a class decorator; returns the class unchanged."""
    level = getattr(policy_cls, "level", None)
    if not isinstance(level, IsolationLevel):
        raise TypeError(
            f"{policy_cls.__name__} must declare a `level` IsolationLevel"
        )
    _REGISTRY[level] = policy_cls
    return policy_cls


def registered_levels() -> tuple[IsolationLevel, ...]:
    """The levels with a registered policy, in registration order."""
    return tuple(_REGISTRY)


def build_policies(db: "Database") -> Dict[IsolationLevel, CCPolicy]:
    """Instantiate and install one policy per registered level for ``db``."""
    policies = {
        level: policy_cls(db) for level, policy_cls in _REGISTRY.items()
    }
    for policy in policies.values():
        policy.install(db)
    return policies
