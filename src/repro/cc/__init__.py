"""Pluggable concurrency-control policies.

One :class:`~repro.cc.policy.CCPolicy` per isolation level, registered by
level in :mod:`repro.cc.registry`; the database kernel dispatches every
discipline-specific decision through the owning transaction's policy.

Import order below is registration/installation order and is deliberate:
SSI installs the shared conflict tracker before SGT installs the
certifier (fixing the metrics-group layout ``tracker`` then ``sgt``), and
before the read-only-optimized variant binds to that tracker.
"""

from repro.cc.policy import CCPolicy
from repro.cc.registry import build_policies, register_policy, registered_levels
from repro.cc.s2pl import S2PLPolicy
from repro.cc.si import SIPolicy
from repro.cc.ssi import SSIPolicy, SSIReadOnlyOptPolicy
from repro.cc.sgt import SGTPolicy

register_policy(S2PLPolicy)
register_policy(SIPolicy)
register_policy(SSIPolicy)
register_policy(SGTPolicy)
register_policy(SSIReadOnlyOptPolicy)

__all__ = [
    "CCPolicy",
    "S2PLPolicy",
    "SIPolicy",
    "SSIPolicy",
    "SSIReadOnlyOptPolicy",
    "SGTPolicy",
    "build_policies",
    "register_policy",
    "registered_levels",
]
