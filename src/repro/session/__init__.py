"""Sessions: transactions decoupled from OS threads.

The blocking client API (:class:`repro.engine.transaction.Transaction`)
parks one thread per in-flight transaction.  A :class:`Session` instead
*suspends* whenever the engine reports a pending wait — a lock request
(:class:`~repro.errors.LockWaitRequired`), a deferrable safe-snapshot
wait (:class:`~repro.errors.SafeSnapshotWaitRequired`), or a group-commit
ticket (:class:`~repro.errors.GroupCommitWaitRequired`) — by subscribing
its own resumption to the wait's completion object and returning the
worker to the pool.  A :class:`SessionScheduler` drives N sessions over
M worker threads with M ≪ N; the asyncio wire-protocol server
(:mod:`repro.server`) multiplexes one session per TCP connection onto
such a pool.

Execution model
---------------
Every public session method enqueues an *invocation* (an engine thunk
plus an ``on_done(result, error)`` callback) and returns immediately.
A worker runs the session's invocations in FIFO order; engine thunks
are idempotent-on-retry exactly as in the blocking path, so a thunk
interrupted by ``LockWaitRequired`` is simply re-run after the grant.
Resume callbacks may fire on a resolver's thread **while it holds lock
manager latches**, so they do nothing but mark the session runnable and
enqueue it — no engine re-entry, mirroring the latch-vs-await rule (no
latch may be held across a suspension point, and no suspension handler
may take a latch).

Timeouts and periodic deadlock sweeps cannot ride on a blocked client
thread here, so the scheduler owns them: a tick thread exists *only*
when ``lock_timeout`` is configured or the PERIODIC deadlock mode needs
sweeping, and that thread is the sole consumer of
``Database.wait_poll_interval`` — the lock-wait path itself never polls.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Hashable, Optional

from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.engine.latches import assert_no_latches_held
from repro.errors import (
    GroupCommitWaitRequired,
    LockWaitRequired,
    ReproError,
    SafeSnapshotWaitRequired,
    TransactionAbortedError,
    TransactionStateError,
)
from repro.locking.manager import LockRequest, RequestState
from repro.sim.ops import apply_op

__all__ = [
    "Session",
    "SessionClosedError",
    "SessionScheduler",
]

OnDone = Callable[[Any, Optional[BaseException]], None]


class SessionClosedError(ReproError):
    """An invocation was submitted to (or pending on) a closed session."""


class _Invocation:
    __slots__ = ("fn", "on_done", "label")

    def __init__(self, fn: Callable[[], Any], on_done: OnDone, label: str):
        self.fn = fn
        self.on_done = on_done
        self.label = label


# Session lifecycle states.  IDLE: no queued work, not enqueued.
# READY: enqueued on (or claimed by) the scheduler run queue.
# RUNNING: a worker is inside _step.  SUSPENDED: parked on a wait
# completion; the resume callback moves it back to READY.
_IDLE = "idle"
_READY = "ready"
_RUNNING = "running"
_SUSPENDED = "suspended"


class Session:
    """One client's transaction context, scheduled without a dedicated
    thread.  Create through :meth:`SessionScheduler.session`.

    All transaction-surface methods (:meth:`begin`, :meth:`read`,
    :meth:`get`, :meth:`read_for_update`, :meth:`write`, :meth:`insert`,
    :meth:`delete`, :meth:`scan`, :meth:`index_scan`,
    :meth:`index_lookup`, :meth:`commit`, :meth:`abort`,
    :meth:`run_program`, :meth:`close`) are asynchronous: they enqueue
    work and deliver the outcome through ``on_done(result, error)``.
    :meth:`call` is a small blocking facade for tests and tools.
    """

    def __init__(self, scheduler: "SessionScheduler") -> None:
        self._scheduler = scheduler
        self._db = scheduler.db
        #: the transaction this session currently owns (None between txns)
        self.txn = None
        self._state_lock = threading.Lock()
        self._state = _IDLE
        self._inbox: deque[_Invocation] = deque()
        self._current: _Invocation | None = None
        self._closed = False
        #: wait bookkeeping, written only by the owning worker while
        #: RUNNING and read by the scheduler's tick thread / interrupt()
        self._pending_request: LockRequest | None = None
        self._pending_completion = None
        self._wait_started: float | None = None
        self._wait_deadline: float | None = None

    # ------------------------------------------------------ public API

    def begin(
        self,
        isolation: IsolationLevel | str = IsolationLevel.SERIALIZABLE_SSI,
        read_only: bool = False,
        deferrable: bool = False,
        global_id: int | None = None,
        *,
        on_done: OnDone,
    ) -> None:
        """Begin a transaction; delivers its id.  A deferrable begin
        suspends the session (no worker thread is held) until the
        safe-snapshot monitor fires a safe verdict.  ``global_id`` tags
        the transaction with a coordinator-assigned id (sharding)."""
        state: dict = {"txn": None, "defer": False}

        def fn():
            txn = state["txn"]
            if txn is None:
                try:
                    state["txn"] = self._db.begin(
                        isolation, read_only=read_only,
                        deferrable=deferrable, wait=False,
                        global_id=global_id,
                    )
                except SafeSnapshotWaitRequired as wait:
                    # The transaction exists and is being watched; expose
                    # it immediately so interrupt()/close() can doom it.
                    state["txn"] = wait.txn
                    state["defer"] = True
                    self.txn = wait.txn
                    raise
            elif state["defer"]:
                if not txn.is_active or txn.doom_error is not None:
                    error = txn.doom_error or TransactionStateError(
                        f"transaction {txn.id} is {txn.status.value}"
                    )
                    if txn.is_active:
                        self._db.abort(txn)
                    self.txn = None
                    raise error
                self._db.resume_deferrable(txn)  # may raise again
                state["defer"] = False
            self.txn = state["txn"]
            return state["txn"].id

        self._submit(fn, on_done, "begin")

    def read(self, table: str, key: Hashable, *, on_done: OnDone) -> None:
        self._submit(lambda: self._db.read(self._need_txn(), table, key),
                     on_done, "read")

    def get(self, table: str, key: Hashable, default: Any = None,
            *, on_done: OnDone) -> None:
        self._submit(lambda: self._db.get(self._need_txn(), table, key, default),
                     on_done, "get")

    def read_for_update(self, table: str, key: Hashable, *, on_done: OnDone) -> None:
        self._submit(
            lambda: self._db.read_for_update(self._need_txn(), table, key),
            on_done, "read_for_update")

    def write(self, table: str, key: Hashable, value: Any,
              *, on_done: OnDone) -> None:
        self._submit(lambda: self._db.write(self._need_txn(), table, key, value),
                     on_done, "write")

    def insert(self, table: str, key: Hashable, value: Any,
               *, on_done: OnDone) -> None:
        self._submit(lambda: self._db.insert(self._need_txn(), table, key, value),
                     on_done, "insert")

    def delete(self, table: str, key: Hashable, *, on_done: OnDone) -> None:
        self._submit(lambda: self._db.delete(self._need_txn(), table, key),
                     on_done, "delete")

    def scan(self, table: str, lo: Hashable | None = None,
             hi: Hashable | None = None, *, on_done: OnDone) -> None:
        self._submit(lambda: self._db.scan(self._need_txn(), table, lo, hi),
                     on_done, "scan")

    def index_scan(self, index: str, lo: Hashable | None = None,
                   hi: Hashable | None = None, *, on_done: OnDone) -> None:
        self._submit(lambda: self._db.index_scan(self._need_txn(), index, lo, hi),
                     on_done, "index_scan")

    def index_lookup(self, index: str, key: Hashable, *, on_done: OnDone) -> None:
        self._submit(lambda: self._db.index_lookup(self._need_txn(), index, key),
                     on_done, "index_lookup")

    def commit(self, *, on_done: OnDone) -> None:
        """Commit the open transaction.  Under group commit a follower
        suspends on its ticket's completion
        (:class:`~repro.errors.GroupCommitWaitRequired`), releasing the
        worker while it rides the group; the retry consumes the
        resolved ticket.  ``self.txn`` is only cleared on a terminal
        outcome — the batch leader may flip the transaction COMMITTED
        while this session is still suspended, so the wait path must
        not conclude anything from the status alone."""
        def fn():
            txn = self._need_txn()
            try:
                self._db.commit(txn, wait=False)
            except (LockWaitRequired, GroupCommitWaitRequired):
                raise  # suspend; the retry re-drives (or consumes) it
            except BaseException:
                if not txn.is_active:
                    self.txn = None
                raise
            self.txn = None
        self._submit(fn, on_done, "commit")

    def abort(self, *, on_done: OnDone) -> None:
        def fn():
            txn = self.txn
            self.txn = None
            if txn is not None:
                self._db.abort(txn)
        self._submit(fn, on_done, "abort")

    def prepare(self, *, on_done: OnDone) -> None:
        """Two-phase commit phase one: certify locally, keep the
        transaction open and prepared, deliver the shard's conflict
        summary.  A failed certification aborts and raises, so the
        session forgets the transaction exactly as commit() would."""
        def fn():
            txn = self._need_txn()
            try:
                return self._db.prepare_for_commit(txn)
            finally:
                if not txn.is_active:
                    self.txn = None
        self._submit(fn, on_done, "prepare")

    def commit_prepared(
        self, import_in: bool = False, import_out: bool = False,
        *, on_done: OnDone,
    ) -> None:
        """Two-phase commit phase two: commit the prepared transaction
        unconditionally, folding in the coordinator's merged flags."""
        def fn():
            txn = self._need_txn()
            try:
                self._db.commit_prepared(
                    txn, import_in=import_in, import_out=import_out,
                )
                self._db.finalize_commit(txn)
            finally:
                if not txn.is_active:
                    self.txn = None
        self._submit(fn, on_done, "commit_prepared")

    def run_program(
        self,
        program,
        isolation: IsolationLevel | str = IsolationLevel.SERIALIZABLE_SSI,
        *,
        on_done: OnDone,
    ) -> None:
        """Run a transaction-program generator (see :mod:`repro.sim.ops`)
        to completion in one transaction, committing at the end —
        :func:`repro.sim.direct.run_program`, but suspending instead of
        blocking through waits.  Delivers the program's return value."""
        state: dict = {
            "txn": None, "pending": None, "to_send": None,
            "done": False, "value": None,
        }

        def fn():
            txn = state["txn"]
            if txn is None:
                txn = state["txn"] = self._db.begin(isolation)
                self.txn = txn
            try:
                while not state["done"]:
                    if state["pending"] is None:
                        try:
                            state["pending"] = program.send(state["to_send"])
                            state["to_send"] = None
                        except StopIteration as stop:
                            # Record completion before committing: the
                            # generator is spent, so a commit that
                            # suspends must re-enter here, not re-send.
                            state["done"] = True
                            state["value"] = stop.value
                            break
                    state["to_send"] = apply_op(self._db, txn, state["pending"])
                    state["pending"] = None
                self._db.commit(txn, wait=False)
                self.txn = None
                return state["value"]
            except (LockWaitRequired, SafeSnapshotWaitRequired,
                    GroupCommitWaitRequired):
                raise  # suspend; the retry resumes from recorded state
            except BaseException:
                if txn.is_active:
                    self._db.abort(txn)
                self.txn = None
                raise

        self._submit(fn, on_done, "program")

    def close(self, *, on_done: OnDone | None = None) -> None:
        """Abort any open transaction and refuse further invocations.
        Pending queued invocations fail with :class:`SessionClosedError`."""
        def fn():
            txn = self.txn
            self.txn = None
            if txn is not None and txn.is_active:
                self._db.abort(txn)
            with self._state_lock:
                self._closed = True
                pending = list(self._inbox)
                self._inbox.clear()
            for invocation in pending:
                self._deliver(invocation, None, SessionClosedError("session closed"))
            self._scheduler._forget(self)
        self._submit(fn, on_done or (lambda result, error: None), "close",
                     allow_closed=True)

    def interrupt(self, error: TransactionAbortedError | None = None) -> None:
        """Doom the session's transaction and wake it if suspended.

        Callable from any thread (the server uses it when a client
        disconnects mid-wait).  A suspended lock wait is woken through
        the doom path's ``cancel_waits``; a suspended deferrable wait is
        woken by firing its completion, after which the begin thunk
        observes the doom and fails."""
        txn = self.txn
        if txn is not None and txn.is_active:
            self._db.doom(
                txn,
                error or TransactionAbortedError(
                    "session interrupted", txn_id=txn.id),
            )
        completion = self._pending_completion
        if completion is not None:
            completion.set()

    # blocking facade -------------------------------------------------

    def call(self, method: str, /, *args: Any, **kwargs: Any) -> Any:
        """Blocking convenience: invoke ``method`` and wait for its
        outcome on the *calling* thread (which must not be a scheduler
        worker).  Returns the result or raises the delivered error."""
        done = threading.Event()
        box: dict = {}

        def on_done(result, error):
            box["result"], box["error"] = result, error
            done.set()

        getattr(self, method)(*args, on_done=on_done, **kwargs)
        done.wait()
        if box["error"] is not None:
            raise box["error"]
        return box["result"]

    # ------------------------------------------------------ internals

    def _need_txn(self):
        txn = self.txn
        if txn is None:
            raise TransactionStateError("session has no open transaction")
        return txn

    def _submit(self, fn: Callable[[], Any], on_done: OnDone, label: str,
                allow_closed: bool = False) -> None:
        invocation = _Invocation(fn, on_done, label)
        with self._state_lock:
            if self._closed and not allow_closed:
                closed = True
            else:
                closed = False
                self._inbox.append(invocation)
                wake = self._state is _IDLE
                if wake:
                    self._state = _READY
        if closed:
            self._deliver(invocation, None, SessionClosedError("session closed"))
            return
        if wake:
            self._scheduler._enqueue(self)

    def _step(self) -> None:
        """Run queued invocations until the inbox drains or one suspends.
        Executed by exactly one worker at a time (the state machine
        guarantees a session is enqueued at most once)."""
        assert_no_latches_held("session step")
        with self._state_lock:
            self._state = _RUNNING
        while True:
            invocation = self._current
            if invocation is None:
                with self._state_lock:
                    if not self._inbox:
                        self._state = _IDLE
                        return
                    invocation = self._inbox.popleft()
            else:
                self._current = None
                denied = self._denied_wait_error()
                if denied is not None:
                    self._deliver(invocation, None, denied)
                    continue
            try:
                result = invocation.fn()
            except LockWaitRequired as wait:
                self._current = invocation
                self._suspend_on_request(wait.request)
                return
            except SafeSnapshotWaitRequired as wait:
                self._current = invocation
                self._suspend_on_completion(wait.completion)
                return
            except GroupCommitWaitRequired as wait:
                # Ride the commit group without occupying a worker: the
                # batch leader fires the ticket's completion after the
                # group's certification, flush and finalize.
                self._current = invocation
                self._suspend_on_completion(wait.completion)
                return
            except BaseException as error:
                self._deliver(invocation, None, error)
            else:
                self._deliver(invocation, result, None)

    def _denied_wait_error(self) -> BaseException | None:
        """Mirror of the blocking path's post-wait denial check: a DENIED
        request means the wait was cancelled (timeout, deadlock victim,
        owner doomed) — abort and surface the error instead of retrying."""
        request = self._pending_request
        self._pending_request = None
        if request is None or request.state is not RequestState.DENIED:
            return None
        txn = request.owner
        error = request.error or TransactionAbortedError(txn_id=txn.id)
        self._db.abort(txn)
        if txn is self.txn:
            self.txn = None
        return error

    def _suspend_on_request(self, request: LockRequest) -> None:
        self._pending_request = request
        timeout = self._db.config.lock_timeout
        self._suspend(
            lambda resume: request.on_resolve(resume),
            deadline=None if timeout is None else time.monotonic() + timeout,
        )

    def _suspend_on_completion(self, completion) -> None:
        self._pending_completion = completion
        self._suspend(lambda resume: completion.on_fire(resume), deadline=None)

    def _suspend(self, subscribe, deadline: float | None) -> None:
        self._wait_started = time.monotonic()
        self._wait_deadline = deadline
        with self._state_lock:
            self._state = _SUSPENDED
        self._scheduler._note_suspended(self)
        # May fire _resume synchronously (already-resolved request) on
        # this thread, or later on a resolver's thread that holds lock
        # manager latches — either way _resume only enqueues.
        subscribe(self._resume)

    def _resume(self, _source=None) -> None:
        with self._state_lock:
            if self._state is not _SUSPENDED:
                return
            self._state = _READY
        self._pending_completion = None
        started, self._wait_started = self._wait_started, None
        self._wait_deadline = None
        self._scheduler._note_resumed(self, started)
        self._scheduler._enqueue(self)

    def _deliver(self, invocation: _Invocation, result: Any,
                 error: BaseException | None) -> None:
        try:
            invocation.on_done(result, error)
        except Exception:  # noqa: BLE001 - a client callback must not kill the worker
            pass

    def _fail_queued(self, error: BaseException) -> None:
        """The scheduler is gone: no worker will ever run this session
        again, so every queued invocation must be failed — a dropped
        ``on_done`` leaves callers (e.g. a server connection awaiting a
        close future) hanging forever.  An invocation a worker is
        actively running is left to that worker."""
        with self._state_lock:
            doomed = []
            if self._current is not None and self._state is not _RUNNING:
                doomed.append(self._current)
                self._current = None
            doomed.extend(self._inbox)
            self._inbox.clear()
            if self._state is not _RUNNING:
                self._state = _IDLE
        for invocation in doomed:
            self._deliver(invocation, None, error)


class SessionScheduler:
    """Drives N sessions over ``workers`` threads.

    Registers observability with the database's metrics registry:
    ``sessions_open`` / ``sessions_suspended`` gauges and the
    ``session_wait_time`` histogram (wall-clock suspend → resume,
    feeding the same latency story as ``lock_wait_time``).

    The scheduler owns the deadline duties a parked client thread would
    otherwise poll for: when the engine is configured with a
    ``lock_timeout`` or PERIODIC deadlock detection, one tick thread
    wakes every ``Database.wait_poll_interval`` to cancel overdue
    requests and run the sweep.  With neither configured there is no
    tick thread and nothing on the wait path ever polls.
    """

    def __init__(self, db: Database, workers: int = 4,
                 name: str = "session") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.db = db
        self.workers = workers
        self._cv = threading.Condition()
        self._runq: deque[Session] = deque()
        self._closed = False
        self._sessions: set[Session] = set()
        self._suspended: set[Session] = set()
        self._registry_lock = threading.Lock()
        self._wait_histogram = db.metrics.histogram("session_wait_time")
        db.metrics.register_gauge("sessions_open", lambda: len(self._sessions))
        db.metrics.register_gauge(
            "sessions_suspended", lambda: len(self._suspended))
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"{name}-worker-{index}", daemon=True)
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        self._ticker: threading.Thread | None = None
        if db.config.lock_timeout is not None or db.needs_wait_polling:
            self._ticker = threading.Thread(
                target=self._tick_loop, name=f"{name}-ticker", daemon=True)
            self._ticker.start()

    # ------------------------------------------------------ public API

    def session(self) -> Session:
        """Open a new session on this scheduler."""
        with self._cv:
            if self._closed:
                raise SessionClosedError("scheduler is shut down")
        session = Session(self)
        with self._registry_lock:
            self._sessions.add(session)
        return session

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting work and join the worker pool.  Sessions still
        suspended keep their engine state; callers that need a clean
        lock table abort/close their sessions first."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        if self._ticker is not None:
            self._ticker.join(max(0.0, deadline - time.monotonic()))
        # Invocations still queued (or stranded in the runq) can never
        # run now — fail them so no caller waits on a dead scheduler.
        with self._registry_lock:
            stranded = list(self._sessions)
        error = SessionClosedError("scheduler is shut down")
        for session in stranded:
            session._fail_queued(error)

    @property
    def open_sessions(self) -> int:
        return len(self._sessions)

    @property
    def suspended_sessions(self) -> int:
        return len(self._suspended)

    # ------------------------------------------------------ internals

    def _enqueue(self, session: Session) -> None:
        # Called from worker threads and from resume callbacks that may
        # run under lock manager latches: append + notify only.
        with self._cv:
            if not self._closed:
                self._runq.append(session)
                self._cv.notify()
                return
        # Closed scheduler: the session will never be run again, so its
        # queued invocations must fail loudly rather than hang silently.
        session._fail_queued(SessionClosedError("scheduler is shut down"))

    def _forget(self, session: Session) -> None:
        with self._registry_lock:
            self._sessions.discard(session)
            self._suspended.discard(session)

    def _note_suspended(self, session: Session) -> None:
        with self._registry_lock:
            self._suspended.add(session)

    def _note_resumed(self, session: Session, started: float | None) -> None:
        with self._registry_lock:
            self._suspended.discard(session)
        if started is not None:
            self._wait_histogram.observe(time.monotonic() - started)

    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._runq and not self._closed:
                    self._cv.wait()
                if self._closed:
                    return
                session = self._runq.popleft()
            session._step()

    def _tick_loop(self) -> None:
        """Deadline duties for suspended sessions — the scheduler-side
        twin of the blocking path's timed waits.  This is the only
        consumer of ``wait_poll_interval`` in session mode."""
        db = self.db
        interval = db.wait_poll_interval
        while True:
            with self._cv:
                if self._closed:
                    return
            time.sleep(interval)
            if db.config.lock_timeout is not None:
                now = time.monotonic()
                with self._registry_lock:
                    suspended = list(self._suspended)
                for session in suspended:
                    request = session._pending_request
                    deadline = session._wait_deadline
                    if (
                        request is not None
                        and deadline is not None
                        and now >= deadline
                        and not request.resolved
                    ):
                        db.cancel_lock_request(request)
            if db.needs_wait_polling:
                db.poll_waiters()
