"""The threaded stress executor.

:func:`run_threaded_stress` is the harness behind the race-condition
tests and the threaded benchmark cases: it splits a transaction budget
across real threads, runs every program through the blocking client API
(:func:`repro.sim.direct.run_program`), then quiesces the engine and
audits what is left behind.

The audit is the point.  A latching bug rarely crashes — it loses a
SIREAD lock, leaks a granted row in the lock table, or commits a
non-serializable interleaving.  The returned :class:`StressResult`
therefore carries, besides throughput numbers:

- the MVSG serializability verdict over the recorded history (when
  ``check_serializability`` is set — the commit-order oracle of
  :mod:`repro.sgt.checker`),
- residual lock-table state after suspended-transaction cleanup
  (``lock_table_clean`` — a lost ``release_all`` or an orphaned SIREAD
  sentinel shows up here),
- per-program commit/abort tallies, so workload-level invariants (e.g.
  sibench's "sum of rows == committed updates") can be checked by the
  caller against the final table contents.

Determinism: thread ``i`` draws from ``random.Random(seed * 1000 + i)``,
so a stress run's *program sequence* is reproducible per thread even
though the OS interleaving is not.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Hashable, Optional

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import TransactionAbortedError
from repro.sgt.checker import check_serializable
from repro.sim.direct import run_program
from repro.sim.workload import Workload


@dataclass(slots=True)
class StressResult:
    """Outcome of one threaded stress run, including the post-quiesce
    engine audit."""

    workload: str
    level: str
    threads: int
    #: transactions attempted (``txns_per_thread * threads``)
    txns: int
    commits: int
    aborts: int
    wall_clock_s: float
    #: per-program-name tallies (the workload mix names)
    commits_by_name: dict
    aborts_by_name: dict
    #: MVSG verdict over the recorded history; None when not requested
    serializable: Optional[bool]
    serialization_detail: str
    #: lock-table rows still granted after cleanup (should be 0)
    residual_granted: int
    #: owners still registered in the lock table after cleanup
    residual_owners: int
    #: owners still queued on a lock after cleanup
    residual_waiters: int
    #: committed-suspended records cleanup could not retire
    residual_suspended: int
    #: SIREAD sentinels (weighted: an escalated coarse lock counts as the
    #: records it replaced) still in the manager's per-owner accounting
    #: after the quiesce — the SIREAD-lifecycle leak detector: a grant
    #: that landed after its owner's release pass shows up here
    residual_siread: int = 0

    @property
    def lock_table_clean(self) -> bool:
        """No locks, owners, waiters or SIREAD sentinels survived the
        quiesce — every commit/abort path released what it acquired."""
        return (
            self.residual_granted == 0
            and self.residual_owners == 0
            and self.residual_waiters == 0
            and self.residual_siread == 0
        )

    @property
    def throughput(self) -> float:
        """Commits per wall-clock second."""
        return self.commits / self.wall_clock_s if self.wall_clock_s > 0 else 0.0

    def describe(self) -> str:
        verdict = (
            "unchecked" if self.serializable is None
            else ("serializable" if self.serializable else "NON-SERIALIZABLE")
        )
        return (
            f"{self.workload} @{self.level} x{self.threads}thr: "
            f"{self.commits} commits / {self.aborts} aborts in "
            f"{self.wall_clock_s:.2f}s ({verdict}, "
            f"{'clean' if self.lock_table_clean else 'DIRTY'} lock table)"
        )


def run_threaded_stress(
    workload: Workload,
    level: str = "ssi",
    threads: int = 4,
    txns_per_thread: int = 125,
    seed: int = 20080501,
    config: EngineConfig | None = None,
    check_serializability: bool = False,
    invariant: Callable[[Database], None] | None = None,
    on_database: Callable[[Database], None] | None = None,
) -> StressResult:
    """Run ``threads`` real threads, each executing ``txns_per_thread``
    workload transactions at ``level`` against one shared database.

    Aborts raised by the engine (SSI unsafe, deadlock victim,
    first-committer-wins...) are expected outcomes and tallied; any other
    exception in a client thread fails the run.  After all threads join,
    the engine is quiesced (suspended-transaction cleanup runs with no
    one active) and the lock table audited; ``invariant`` — if given —
    then inspects the final database state and raises on violation.
    ``on_database`` runs right after workload setup, before any client
    thread starts — the seam for attaching samplers (e.g. a peak
    lock-table-gauge watcher) or tracing to the shared database.
    """
    if config is None:
        config = EngineConfig(record_history=check_serializability)
    elif check_serializability and not config.record_history:
        config = replace(config, record_history=True)
    db = Database(config)
    workload.setup(db)
    if on_database is not None:
        on_database(db)

    barrier = threading.Barrier(threads)
    tally = threading.Lock()
    commits_by_name: dict = {}
    aborts_by_name: dict = {}
    totals = {"commits": 0, "aborts": 0}
    failures: list[BaseException] = []

    def client(index: int) -> None:
        rng = random.Random(seed * 1000 + index)
        local_commits: dict = {}
        local_aborts: dict = {}
        commits = aborts = 0
        barrier.wait()
        try:
            for _ in range(txns_per_thread):
                name, program = workload.next_transaction(rng)
                try:
                    run_program(db, program, level)
                    commits += 1
                    local_commits[name] = local_commits.get(name, 0) + 1
                except TransactionAbortedError:
                    aborts += 1
                    local_aborts[name] = local_aborts.get(name, 0) + 1
        except BaseException as exc:  # engine bug, not a CC outcome
            with tally:
                failures.append(exc)
        finally:
            with tally:
                totals["commits"] += commits
                totals["aborts"] += aborts
                for name, count in local_commits.items():
                    commits_by_name[name] = commits_by_name.get(name, 0) + count
                for name, count in local_aborts.items():
                    aborts_by_name[name] = aborts_by_name.get(name, 0) + count

    workers = [
        threading.Thread(target=client, args=(index,), name=f"stress-{index}")
        for index in range(threads)
    ]
    start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - start
    if failures:
        raise failures[0]

    # Quiesce: with no transaction active the cleanup horizon is
    # unbounded, so one sweep retires every suspended record a policy
    # allows.  Whatever survives is a leak and lands in the result.
    db.cleanup_suspended()
    lm = db.locks
    residual_granted = lm.table_size()
    residual_owners = len(lm._by_owner)
    residual_waiters = len(lm._waiting)
    residual_suspended = len(db._suspended)
    residual_siread = lm.siread_lock_count()

    serializable: Optional[bool] = None
    detail = ""
    if check_serializability:
        report = check_serializable(db.history)
        serializable = report.serializable
        detail = report.describe()

    if invariant is not None:
        invariant(db)

    return StressResult(
        workload=workload.name,
        level=level,
        threads=threads,
        txns=txns_per_thread * threads,
        commits=totals["commits"],
        aborts=totals["aborts"],
        wall_clock_s=wall,
        commits_by_name=commits_by_name,
        aborts_by_name=aborts_by_name,
        serializable=serializable,
        serialization_detail=detail,
        residual_granted=residual_granted,
        residual_owners=residual_owners,
        residual_waiters=residual_waiters,
        residual_suspended=residual_suspended,
        residual_siread=residual_siread,
    )


def run_session_stress(
    workload: Workload,
    level: str = "ssi",
    sessions: int = 32,
    workers: int = 4,
    txns_per_session: int = 16,
    seed: int = 20080501,
    config: EngineConfig | None = None,
    check_serializability: bool = False,
    invariant: Callable[[Database], None] | None = None,
    on_database: Callable[[Database], None] | None = None,
) -> StressResult:
    """Session-scheduler twin of :func:`run_threaded_stress`: N sessions
    multiplexed onto M ≪ N scheduler workers, no thread parked on any
    lock or safe-snapshot wait.

    Each session runs ``txns_per_session`` workload programs
    sequentially (the next submitted from the previous one's completion
    callback), drawing from ``random.Random(seed * 1000 + index)`` like
    thread ``index`` would — so the per-session program sequence is as
    reproducible as the threaded runner's.  The same post-quiesce audit
    applies: MVSG verdict, residual lock-table state, invariants.
    """
    from repro.session import SessionScheduler

    if config is None:
        config = EngineConfig(record_history=check_serializability)
    elif check_serializability and not config.record_history:
        config = replace(config, record_history=True)
    db = Database(config)
    workload.setup(db)
    if on_database is not None:
        on_database(db)

    scheduler = SessionScheduler(db, workers=workers)
    tally = threading.Lock()
    commits_by_name: dict = {}
    aborts_by_name: dict = {}
    totals = {"commits": 0, "aborts": 0}
    failures: list[BaseException] = []
    done = threading.Event()
    remaining = {"sessions": sessions}

    def drive(session, rng, left: int) -> None:
        """Submit one program; its completion submits the next."""
        if left == 0:
            session.close()
            with tally:
                remaining["sessions"] -= 1
                if remaining["sessions"] == 0:
                    done.set()
            return
        name, program = workload.next_transaction(rng)

        def on_done(_result, error):
            if error is None:
                with tally:
                    totals["commits"] += 1
                    commits_by_name[name] = commits_by_name.get(name, 0) + 1
            elif isinstance(error, TransactionAbortedError):
                with tally:
                    totals["aborts"] += 1
                    aborts_by_name[name] = aborts_by_name.get(name, 0) + 1
            else:  # engine bug, not a CC outcome
                with tally:
                    failures.append(error)
                    remaining["sessions"] -= 1
                    if remaining["sessions"] == 0:
                        done.set()
                return
            drive(session, rng, left - 1)

        session.run_program(program, level, on_done=on_done)

    start = time.perf_counter()
    for index in range(sessions):
        drive(scheduler.session(), random.Random(seed * 1000 + index),
              txns_per_session)
    done.wait()
    wall = time.perf_counter() - start
    scheduler.shutdown()
    if failures:
        raise failures[0]

    db.cleanup_suspended()
    lm = db.locks
    residual_granted = lm.table_size()
    residual_owners = len(lm._by_owner)
    residual_waiters = len(lm._waiting)
    residual_suspended = len(db._suspended)
    residual_siread = lm.siread_lock_count()

    serializable: Optional[bool] = None
    detail = ""
    if check_serializability:
        report = check_serializable(db.history)
        serializable = report.serializable
        detail = report.describe()

    if invariant is not None:
        invariant(db)

    return StressResult(
        workload=workload.name,
        level=level,
        threads=workers,
        txns=txns_per_session * sessions,
        commits=totals["commits"],
        aborts=totals["aborts"],
        wall_clock_s=wall,
        commits_by_name=commits_by_name,
        aborts_by_name=aborts_by_name,
        serializable=serializable,
        serialization_detail=detail,
        residual_granted=residual_granted,
        residual_owners=residual_owners,
        residual_waiters=residual_waiters,
        residual_suspended=residual_suspended,
        residual_siread=residual_siread,
    )


def final_rows(db: Database, table: str) -> dict[Hashable, object]:
    """The committed contents of ``table`` as seen by a fresh snapshot —
    the state workload invariants are checked against."""
    with db.begin("si") as txn:
        return dict(txn.scan(table))
