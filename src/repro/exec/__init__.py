"""Threaded stress execution.

Drives real OS threads through the blocking transaction API — the
concurrency regime the fine-grained latch hierarchy exists for.  The
discrete-event simulator (:mod:`repro.sim`) measures the paper's
*algorithms* under controlled interleavings; this package instead
stresses the *implementation*: N threads hammer one database through
:func:`repro.sim.direct.run_program` and the result is checked against
workload invariants, the MVSG serializability oracle, and lock-table
cleanliness.
"""

from repro.exec.stress import (
    StressResult,
    final_rows,
    run_session_stress,
    run_threaded_stress,
)

__all__ = [
    "StressResult",
    "final_rows",
    "run_session_stress",
    "run_threaded_stress",
]
