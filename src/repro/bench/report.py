"""Plain-text rendering of experiment results, in the paper's layout:
a throughput-vs-MPL table and an errors-per-commit table per figure."""

from __future__ import annotations

from repro.bench.harness import ExperimentResult

_ERROR_KINDS = ("conflict", "unsafe", "deadlock")


def format_throughput_table(outcome: ExperimentResult) -> str:
    experiment = outcome.experiment
    levels = list(outcome.series)
    mpls = [result.mpl for result in outcome.series[levels[0]]]
    lines = [
        f"{experiment.exp_id}: {experiment.title}",
        f"  paper expectation: {experiment.expectation}" if experiment.expectation else "",
        "  throughput (commits / simulated second)",
        "  " + "MPL".rjust(5) + "".join(level.rjust(12) for level in levels),
    ]
    for mpl in mpls:
        row = f"  {mpl:>5}"
        for level in levels:
            row += f"{outcome.throughput(level, mpl):>12.0f}"
        lines.append(row)
    return "\n".join(line for line in lines if line)


def format_error_table(outcome: ExperimentResult) -> str:
    levels = list(outcome.series)
    mpls = [result.mpl for result in outcome.series[levels[0]]]
    header = "  " + "MPL".rjust(5) + "".join(
        f"{level}:{kind}".rjust(15) for level in levels for kind in _ERROR_KINDS
    )
    lines = ["  errors per commit (conflict / unsafe / deadlock)", header]
    for mpl in mpls:
        row = f"  {mpl:>5}"
        for level in levels:
            result = outcome.result(level, mpl)
            for kind in _ERROR_KINDS:
                row += f"{result.abort_rate(kind):>15.4f}"
        lines.append(row)
    return "\n".join(lines)


def summarize(outcome: ExperimentResult) -> str:
    return format_throughput_table(outcome) + "\n" + format_error_table(outcome)
