"""Rendering of experiment results: the paper's plain-text layout (a
throughput-vs-MPL table and an errors-per-commit table per figure) plus a
strictly-valid JSON export for trajectory files."""

from __future__ import annotations

import json

from repro.bench.harness import ExperimentResult

_ERROR_KINDS = ("conflict", "unsafe", "deadlock")


def _reject_constant(value: str) -> None:
    raise ValueError(f"non-standard JSON constant in report: {value}")


def render_json(outcome: ExperimentResult, indent: int | None = 2) -> str:
    """Serialise the grid as strictly-valid JSON.

    ``allow_nan=False`` makes ``json.dumps`` raise rather than emit the
    non-standard ``Infinity``/``NaN`` literals, and the result is parsed
    back with a rejecting ``parse_constant`` before being returned — a
    corrupt ``BENCH_*.json`` can never be written silently.
    """
    text = json.dumps(outcome.to_dict(), indent=indent, allow_nan=False)
    json.loads(text, parse_constant=_reject_constant)  # round-trip check
    return text


def write_json(outcome: ExperimentResult, path) -> str:
    """Validate and write the JSON report; returns the rendered text."""
    text = render_json(outcome)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.write("\n")
    return text


def format_throughput_table(outcome: ExperimentResult) -> str:
    experiment = outcome.experiment
    levels = list(outcome.series)
    mpls = [result.mpl for result in outcome.series[levels[0]]]
    lines = [
        f"{experiment.exp_id}: {experiment.title}",
        f"  paper expectation: {experiment.expectation}" if experiment.expectation else "",
        "  throughput (commits / simulated second)",
        "  " + "MPL".rjust(5) + "".join(level.rjust(12) for level in levels),
    ]
    for mpl in mpls:
        row = f"  {mpl:>5}"
        for level in levels:
            row += f"{outcome.throughput(level, mpl):>12.0f}"
        lines.append(row)
    return "\n".join(line for line in lines if line)


def format_error_table(outcome: ExperimentResult) -> str:
    levels = list(outcome.series)
    mpls = [result.mpl for result in outcome.series[levels[0]]]
    header = "  " + "MPL".rjust(5) + "".join(
        f"{level}:{kind}".rjust(15) for level in levels for kind in _ERROR_KINDS
    )
    lines = ["  errors per commit (conflict / unsafe / deadlock)", header]
    for mpl in mpls:
        row = f"  {mpl:>5}"
        for level in levels:
            result = outcome.result(level, mpl)
            for kind in _ERROR_KINDS:
                row += f"{result.abort_rate(kind):>15.4f}"
        lines.append(row)
    return "\n".join(lines)


def summarize(outcome: ExperimentResult) -> str:
    return format_throughput_table(outcome) + "\n" + format_error_table(outcome)
