"""Benchmark harness: one experiment per figure/table of Chapter 6."""

from repro.bench.harness import Experiment, ExperimentResult, run_experiment
from repro.bench.report import format_throughput_table, format_error_table

__all__ = [
    "Experiment",
    "ExperimentResult",
    "run_experiment",
    "format_throughput_table",
    "format_error_table",
]
