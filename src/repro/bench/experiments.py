"""The experiment catalogue: every figure and table of Chapter 6.

Each ``fig6_*`` function returns an :class:`~repro.bench.harness.Experiment`
whose defaults mirror the paper's setup (engine style, contention level,
log-flush regime, transaction mix).  The ``benchmarks/`` files execute
them on reduced grids; a full run is recorded in EXPERIMENTS.md.

Simulation-scale notes (see DESIGN.md "Substitutions"): contention knobs
are set so the *ratios* the paper reports are reproduced — e.g. the
SmallBank tables span ~100 B+-tree leaf pages (the paper's 1% page-
conflict probability), and TPC-C++ uses the reduced cardinalities of
:class:`~repro.workloads.tpcc.TpccScale`.
"""

from __future__ import annotations

from repro.bench.harness import Experiment
from repro.engine.config import EngineConfig
from repro.sim.scheduler import SimConfig
from repro.workloads.sibench import make_sibench
from repro.workloads.smallbank import make_smallbank
from repro.workloads.tpcc import TpccScale
from repro.workloads.tpccpp import make_stock_level_mix, make_tpccpp

#: SmallBank sizing: ~100 leaf pages per table at page_size=8
_SB_CUSTOMERS = 800
_SB_LOW_CONTENTION = 8_000
_SB_PAGE = 8


def _bdb_config() -> EngineConfig:
    return EngineConfig.berkeleydb_style(page_size=_SB_PAGE)


def _innodb_config() -> EngineConfig:
    return EngineConfig.innodb_style()


def _sb_sim(flush: bool) -> SimConfig:
    return SimConfig(duration=0.8, warmup=0.1, commit_flush=flush, flush_time=0.010)


def _tpcc_sim() -> SimConfig:
    # Writers pay a 10 ms log flush while holding locks (group commit on);
    # at S2PL the flush window also stalls readers of the written rows,
    # which is what separates the levels in the TPC-C++ figures.
    return SimConfig(duration=0.4, warmup=0.05, commit_flush=True, flush_time=0.010)


def fig6_1() -> Experiment:
    return Experiment(
        exp_id="fig6.1",
        title="Berkeley DB SmallBank, short transactions, no log flush",
        workload_factory=lambda: make_smallbank(customers=_SB_CUSTOMERS),
        engine_config_factory=_bdb_config,
        sim_config=_sb_sim(flush=False),
        expectation=(
            "SI and Serializable SI comparable and ~10x S2PL by MPL 20 "
            "(S2PL read/write blocking + slow deadlock detection); SSI "
            "errors mostly 'unsafe', slightly above SI's total abort rate"
        ),
    )


def fig6_2() -> Experiment:
    return Experiment(
        exp_id="fig6.2",
        title="Berkeley DB SmallBank, log flushed at commit",
        workload_factory=lambda: make_smallbank(customers=_SB_CUSTOMERS),
        engine_config_factory=_bdb_config,
        sim_config=_sb_sim(flush=True),
        expectation=(
            "I/O bound: all three levels scale together with group commit "
            "up to ~MPL 10; S2PL falls behind by MPL 20 as deadlock stalls "
            "(periodic detection) bite; SSI error rate higher than Fig 6.1"
        ),
    )


def fig6_3() -> Experiment:
    # Contention calibration: ten ops per transaction touch ~10x the
    # pages, so the table is scaled 10x to keep the *per-transaction*
    # page-conflict probability at the short workload's level — the
    # regime in which the paper observes "results very similar to
    # Fig 6.2" (see DESIGN.md substitutions).
    return Experiment(
        exp_id="fig6.3",
        title="Berkeley DB SmallBank, complex transactions (10 ops), log flush",
        workload_factory=lambda: make_smallbank(
            customers=_SB_CUSTOMERS * 10, ops_per_txn=10
        ),
        engine_config_factory=_bdb_config,
        sim_config=SimConfig(
            duration=1.5, warmup=0.2, commit_flush=True, flush_time=0.010
        ),
        expectation=(
            "still I/O bound (one flush per txn): curves resemble Fig 6.2 "
            "despite 10x work per transaction"
        ),
    )


def fig6_4() -> Experiment:
    return Experiment(
        exp_id="fig6.4",
        title="Berkeley DB SmallBank, 1/10th contention (10x data), log flush",
        workload_factory=lambda: make_smallbank(customers=_SB_LOW_CONTENTION),
        engine_config_factory=_bdb_config,
        sim_config=_sb_sim(flush=True),
        expectation=(
            "S2PL and SI nearly identical; Serializable SI 10-15% below "
            "them from page-granularity false-positive aborts"
        ),
    )


def fig6_5() -> Experiment:
    # Complex transactions at 1/10th the per-transaction contention of
    # Fig 6.3 (30x the short baseline's table; see fig6_3's calibration
    # note).
    return Experiment(
        exp_id="fig6.5",
        title="Berkeley DB SmallBank, complex transactions and low contention",
        workload_factory=lambda: make_smallbank(
            customers=_SB_CUSTOMERS * 30, ops_per_txn=10
        ),
        engine_config_factory=_bdb_config,
        sim_config=SimConfig(
            duration=1.5, warmup=0.2, commit_flush=True, flush_time=0.010
        ),
        expectation="as Fig 6.4, with smaller gaps (more I/O per transaction)",
    )


def _sibench_experiment(exp_id: str, items: int, queries_per_update: float) -> Experiment:
    regime = "mixed 1:1" if queries_per_update == 1 else "query-mostly 10:1"
    return Experiment(
        exp_id=exp_id,
        title=f"InnoDB sibench, {items} items, {regime}",
        workload_factory=lambda: make_sibench(
            items=items, queries_per_update=queries_per_update
        ),
        engine_config_factory=_innodb_config,
        # Updates flush the log while holding their locks (the InnoDB
        # flush-then-release ordering); queries are free of I/O.  This is
        # the regime where S2PL queries stall behind committing updates.
        sim_config=SimConfig(
            duration=0.8, warmup=0.1, commit_flush=True, flush_time=0.002
        ),
        expectation=(
            "SI highest, Serializable SI close behind (SIREAD overhead "
            "grows with items); S2PL lowest - queries block updates"
        ),
    )


def fig6_6() -> Experiment:
    return _sibench_experiment("fig6.6", 10, 1)


def fig6_7() -> Experiment:
    return _sibench_experiment("fig6.7", 100, 1)


def fig6_8() -> Experiment:
    return _sibench_experiment("fig6.8", 1000, 1)


def fig6_9() -> Experiment:
    return _sibench_experiment("fig6.9", 10, 10)


def fig6_10() -> Experiment:
    return _sibench_experiment("fig6.10", 100, 10)


def fig6_11() -> Experiment:
    return _sibench_experiment("fig6.11", 1000, 10)


def _tpccpp_experiment(
    exp_id: str,
    title: str,
    scale: TpccScale,
    skip_ytd: bool,
    expectation: str,
    stock_level: bool = False,
) -> Experiment:
    def factory():
        if stock_level:
            return make_stock_level_mix(scale, skip_ytd=skip_ytd)
        return make_tpccpp(scale, skip_ytd=skip_ytd)

    return Experiment(
        exp_id=exp_id,
        title=title,
        workload_factory=factory,
        engine_config_factory=_innodb_config,
        sim_config=_tpcc_sim(),
        expectation=expectation,
    )


def fig6_12() -> Experiment:
    return _tpccpp_experiment(
        "fig6.12",
        "InnoDB TPC-C++, 1 warehouse, skipping year-to-date updates",
        TpccScale.standard(1),
        skip_ytd=True,
        expectation=(
            "Serializable SI within ~10% of SI throughout; S2PL behind "
            "once MPL exceeds a handful (reads block order entry)"
        ),
    )


def fig6_13() -> Experiment:
    return _tpccpp_experiment(
        "fig6.13",
        "InnoDB TPC-C++, 10 warehouses, standard scale",
        TpccScale.standard(10),
        skip_ytd=False,
        expectation=(
            "larger data: all levels closer together; YTD hot rows gate "
            "Payment throughput similarly at SI and Serializable SI"
        ),
    )


def fig6_14() -> Experiment:
    return _tpccpp_experiment(
        "fig6.14",
        "InnoDB TPC-C++, 10 warehouses, skipping year-to-date updates",
        TpccScale.standard(10),
        skip_ytd=True,
        expectation="SSI tracks SI closely; S2PL lower at higher MPL",
    )


def fig6_15() -> Experiment:
    return _tpccpp_experiment(
        "fig6.15",
        "InnoDB TPC-C++, 10 warehouses, tiny data (high contention)",
        TpccScale.tiny(10),
        skip_ytd=False,
        expectation=(
            "high contention: update conflicts penalise SI/SSI while S2PL "
            "serialises through blocking; SSI stays close to SI"
        ),
    )


def fig6_16() -> Experiment:
    return _tpccpp_experiment(
        "fig6.16",
        "InnoDB TPC-C++, tiny data, skipping year-to-date updates",
        TpccScale.tiny(10),
        skip_ytd=True,
        expectation="contention reduced: SI/SSI recover relative to S2PL",
    )


def fig6_17() -> Experiment:
    return _tpccpp_experiment(
        "fig6.17",
        "InnoDB TPC-C++ Stock Level Mix, 10 warehouses",
        TpccScale.standard(10),
        skip_ytd=True,
        expectation=(
            "read-dominated (~100 reads per row written): multiversion "
            "levels clearly ahead of S2PL; SSI pays SIREAD bookkeeping"
        ),
        stock_level=True,
    )


def fig6_18() -> Experiment:
    return _tpccpp_experiment(
        "fig6.18",
        "InnoDB TPC-C++ Stock Level Mix, tiny data",
        TpccScale.tiny(10),
        skip_ytd=True,
        expectation="as Fig 6.17 with more lock-manager contention",
        stock_level=True,
    )


#: every figure experiment, keyed by id
FIGURES = {
    factory().exp_id: factory
    for factory in (
        fig6_1, fig6_2, fig6_3, fig6_4, fig6_5,
        fig6_6, fig6_7, fig6_8, fig6_9, fig6_10, fig6_11,
        fig6_12, fig6_13, fig6_14, fig6_15, fig6_16, fig6_17, fig6_18,
    )
}
