"""Experiment runner.

An :class:`Experiment` names a workload, an engine configuration, the
isolation levels to compare and the MPL sweep — one per figure in the
paper's Chapter 6.  :func:`run_experiment` executes the full grid and
returns the throughput/error series that the benchmark files print.

Grid cells are independent — each builds its own database, regenerates
its workload data and seeds its RNG streams from ``sim_config.seed``
alone — so ``run_experiment(..., parallel=N)`` farms them out to worker
*processes* and reassembles an :class:`ExperimentResult` identical to the
sequential one.  Processes, not threads: a simulation cell is pure Python
compute, and the grid is the one place the reproduction is embarrassingly
parallel.  Workers are forked (the factory attributes are closures, which
do not pickle; fork inherits them), so on platforms without ``fork`` the
runner silently degrades to sequential execution.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.metrics import SimResult
from repro.sim.scheduler import SimConfig, Simulator
from repro.sim.workload import Workload

#: isolation levels compared in most figures, in the paper's order
DEFAULT_LEVELS = ("si", "ssi", "s2pl")


@dataclass(slots=True)
class Experiment:
    """One reproducible experiment (a figure or table of the paper).

    Attributes:
        exp_id: e.g. "fig6.1".
        title: human-readable description (the figure caption).
        workload_factory: builds a fresh Workload (data regenerated per run).
        engine_config_factory: builds the engine configuration.
        sim_config: simulation parameters.
        levels: isolation levels to sweep.
        mpls: multiprogramming levels to sweep.
        expectation: one line describing the paper's qualitative result,
            echoed into EXPERIMENTS.md.
    """

    exp_id: str
    title: str
    workload_factory: Callable[[], Workload]
    engine_config_factory: Callable[[], EngineConfig]
    sim_config: SimConfig
    levels: Sequence[str] = DEFAULT_LEVELS
    mpls: Sequence[int] = (1, 2, 5, 10, 20)
    expectation: str = ""


@dataclass(slots=True)
class ExperimentResult:
    """Grid of SimResults: series[level] = [result per MPL]."""

    experiment: Experiment
    series: dict = field(default_factory=dict)
    #: lazily built lookup: (level, mpl) -> SimResult.  Rebuilt whenever
    #: the series grid grows, so callers may keep appending results.
    _index: dict = field(default_factory=dict, repr=False, compare=False)

    def result(self, level: str, mpl: int) -> SimResult:
        """The run at ``(level, mpl)`` — an indexed lookup, with errors
        that name what the grid actually holds."""
        if level not in self.series:
            available = ", ".join(sorted(self.series)) or "<none>"
            raise KeyError(
                f"no series for isolation level {level!r}; "
                f"available levels: {available}"
            )
        if len(self._index) != sum(len(runs) for runs in self.series.values()):
            self._index = {
                (lvl, run.mpl): run
                for lvl, runs in self.series.items()
                for run in runs
            }
        found = self._index.get((level, mpl))
        if found is None:
            mpls = ", ".join(
                str(run.mpl) for run in self.series[level]
            ) or "<none>"
            raise KeyError(
                f"no run at mpl={mpl} for level {level!r}; "
                f"available MPLs: {mpls}"
            )
        return found

    def throughput(self, level: str, mpl: int) -> float:
        return self.result(level, mpl).throughput

    def best_mpl(self, level: str) -> int:
        return max(self.series[level], key=lambda r: r.throughput).mpl

    def peak_throughput(self, level: str) -> float:
        return max(result.throughput for result in self.series[level])

    def to_dict(self) -> dict:
        """Strictly-JSON-safe export of the whole grid: experiment
        identity plus every per-(level, MPL) result including the engine
        telemetry snapshot (see :meth:`SimResult.to_dict`)."""
        experiment = self.experiment
        return {
            "experiment": {
                "exp_id": experiment.exp_id,
                "title": experiment.title,
                "expectation": experiment.expectation,
                "levels": list(experiment.levels),
                "mpls": list(experiment.mpls),
            },
            "series": {
                level: [result.to_dict() for result in results]
                for level, results in self.series.items()
            },
        }


def _run_cell(experiment: Experiment, level: str, mpl: int) -> SimResult:
    """One grid cell: fresh database, fresh data, one simulation run.
    Deterministic given (experiment, level, mpl) — every RNG stream
    derives from ``sim_config.seed`` — which is what makes the parallel
    runner's output bit-identical to the sequential one."""
    database = Database(experiment.engine_config_factory())
    workload = experiment.workload_factory()
    workload.setup(database)
    simulator = Simulator(database, workload, level, mpl, experiment.sim_config)
    return simulator.run()


def _parallel_worker(experiment, assigned, results) -> None:
    """Forked worker: run the assigned cells, report each as it lands.
    Failures travel back as strings — exceptions from app code may not
    pickle, and the parent only needs the diagnosis."""
    for index, level, mpl in assigned:
        try:
            outcome = _run_cell(experiment, level, mpl)
        except BaseException as exc:  # noqa: BLE001 — reported, then fatal
            results.put((index, None, f"cell ({level}, mpl={mpl}): "
                                      f"{type(exc).__name__}: {exc}"))
        else:
            results.put((index, outcome, None))


def _run_cells_parallel(
    experiment: Experiment,
    cells: Sequence[tuple[str, int]],
    parallel: int,
) -> list[SimResult]:
    """Fan the grid cells out over ``parallel`` forked processes,
    round-robin, and return results in the cells' original order."""
    ctx = multiprocessing.get_context("fork")
    workers = min(parallel, len(cells))
    results: multiprocessing.Queue = ctx.Queue()
    assignments: list[list] = [[] for _ in range(workers)]
    for index, (level, mpl) in enumerate(cells):
        assignments[index % workers].append((index, level, mpl))
    processes = [
        ctx.Process(
            target=_parallel_worker, args=(experiment, chunk, results), daemon=True
        )
        for chunk in assignments
    ]
    for process in processes:
        process.start()
    collected: dict[int, SimResult] = {}
    errors: list[str] = []
    try:
        while len(collected) + len(errors) < len(cells):
            try:
                index, outcome, error = results.get(timeout=1.0)
            except queue_module.Empty:
                if any(process.is_alive() for process in processes):
                    continue
                # Every worker exited without delivering the remaining
                # cells — a crash (OOM kill, segfault) rather than a
                # Python exception, which would have been reported above.
                missing = len(cells) - len(collected) - len(errors)
                raise RuntimeError(
                    f"parallel experiment workers died with {missing} "
                    f"cell(s) unreported"
                )
            if error is not None:
                errors.append(error)
            else:
                collected[index] = outcome
    finally:
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
    if errors:
        raise RuntimeError("parallel experiment failed: " + "; ".join(errors))
    return [collected[index] for index in range(len(cells))]


def run_experiment(
    experiment: Experiment,
    mpls: Sequence[int] | None = None,
    levels: Sequence[str] | None = None,
    parallel: int = 1,
) -> ExperimentResult:
    """Run the full (level x MPL) grid.  ``mpls``/``levels`` override the
    experiment's sweep (benchmark files use shorter grids than a full
    reproduction run).  ``parallel=N`` runs cells on up to N forked
    worker processes; the result is bit-identical to ``parallel=1``
    because each cell is independently seeded (falls back to sequential
    where ``fork`` is unavailable)."""
    level_list = list(levels or experiment.levels)
    mpl_list = list(mpls or experiment.mpls)
    cells = [(level, mpl) for level in level_list for mpl in mpl_list]
    use_parallel = parallel > 1 and len(cells) > 1
    if use_parallel:
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            use_parallel = False
    if use_parallel:
        flat = _run_cells_parallel(experiment, cells, parallel)
    else:
        flat = [_run_cell(experiment, level, mpl) for level, mpl in cells]
    outcome = ExperimentResult(experiment=experiment)
    for (level, _mpl), result in zip(cells, flat):
        outcome.series.setdefault(level, []).append(result)
    return outcome
