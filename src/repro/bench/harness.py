"""Experiment runner.

An :class:`Experiment` names a workload, an engine configuration, the
isolation levels to compare and the MPL sweep — one per figure in the
paper's Chapter 6.  :func:`run_experiment` executes the full grid and
returns the throughput/error series that the benchmark files print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.metrics import SimResult
from repro.sim.scheduler import SimConfig, Simulator
from repro.sim.workload import Workload

#: isolation levels compared in most figures, in the paper's order
DEFAULT_LEVELS = ("si", "ssi", "s2pl")


@dataclass(slots=True)
class Experiment:
    """One reproducible experiment (a figure or table of the paper).

    Attributes:
        exp_id: e.g. "fig6.1".
        title: human-readable description (the figure caption).
        workload_factory: builds a fresh Workload (data regenerated per run).
        engine_config_factory: builds the engine configuration.
        sim_config: simulation parameters.
        levels: isolation levels to sweep.
        mpls: multiprogramming levels to sweep.
        expectation: one line describing the paper's qualitative result,
            echoed into EXPERIMENTS.md.
    """

    exp_id: str
    title: str
    workload_factory: Callable[[], Workload]
    engine_config_factory: Callable[[], EngineConfig]
    sim_config: SimConfig
    levels: Sequence[str] = DEFAULT_LEVELS
    mpls: Sequence[int] = (1, 2, 5, 10, 20)
    expectation: str = ""


@dataclass(slots=True)
class ExperimentResult:
    """Grid of SimResults: series[level] = [result per MPL]."""

    experiment: Experiment
    series: dict = field(default_factory=dict)
    #: lazily built lookup: (level, mpl) -> SimResult.  Rebuilt whenever
    #: the series grid grows, so callers may keep appending results.
    _index: dict = field(default_factory=dict, repr=False, compare=False)

    def result(self, level: str, mpl: int) -> SimResult:
        """The run at ``(level, mpl)`` — an indexed lookup, with errors
        that name what the grid actually holds."""
        if level not in self.series:
            available = ", ".join(sorted(self.series)) or "<none>"
            raise KeyError(
                f"no series for isolation level {level!r}; "
                f"available levels: {available}"
            )
        if len(self._index) != sum(len(runs) for runs in self.series.values()):
            self._index = {
                (lvl, run.mpl): run
                for lvl, runs in self.series.items()
                for run in runs
            }
        found = self._index.get((level, mpl))
        if found is None:
            mpls = ", ".join(
                str(run.mpl) for run in self.series[level]
            ) or "<none>"
            raise KeyError(
                f"no run at mpl={mpl} for level {level!r}; "
                f"available MPLs: {mpls}"
            )
        return found

    def throughput(self, level: str, mpl: int) -> float:
        return self.result(level, mpl).throughput

    def best_mpl(self, level: str) -> int:
        return max(self.series[level], key=lambda r: r.throughput).mpl

    def peak_throughput(self, level: str) -> float:
        return max(result.throughput for result in self.series[level])

    def to_dict(self) -> dict:
        """Strictly-JSON-safe export of the whole grid: experiment
        identity plus every per-(level, MPL) result including the engine
        telemetry snapshot (see :meth:`SimResult.to_dict`)."""
        experiment = self.experiment
        return {
            "experiment": {
                "exp_id": experiment.exp_id,
                "title": experiment.title,
                "expectation": experiment.expectation,
                "levels": list(experiment.levels),
                "mpls": list(experiment.mpls),
            },
            "series": {
                level: [result.to_dict() for result in results]
                for level, results in self.series.items()
            },
        }


def run_experiment(
    experiment: Experiment,
    mpls: Sequence[int] | None = None,
    levels: Sequence[str] | None = None,
) -> ExperimentResult:
    """Run the full (level x MPL) grid.  ``mpls``/``levels`` override the
    experiment's sweep (benchmark files use shorter grids than a full
    reproduction run)."""
    outcome = ExperimentResult(experiment=experiment)
    for level in levels or experiment.levels:
        results = []
        for mpl in mpls or experiment.mpls:
            database = Database(experiment.engine_config_factory())
            workload = experiment.workload_factory()
            workload.setup(database)
            simulator = Simulator(
                database, workload, level, mpl, experiment.sim_config
            )
            results.append(simulator.run())
        outcome.series[level] = results
    return outcome
