"""Checkpoints: bounding the redo log.

A checkpoint materialises the committed state of every table (with the
original commit timestamps, so recovered snapshots behave identically),
stamps the log with a checkpoint record, and allows the log prefix to be
truncated.  Recovery becomes: restore the newest checkpoint, then redo
the log suffix past its checkpoint record.

Index *contents* are checkpointed like any table; index *definitions*
(the key functions) are code, not data, and must be re-registered by the
application after restore — the same contract as the schema itself.
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.mvcc.version import TOMBSTONE, Version
from repro.wal.log import WriteAheadLog
from repro.wal.recovery import replay


def take_checkpoint(db: Database, path: str | None = None) -> dict:
    """Snapshot the committed state of ``db``.

    Flushes and stamps the attached WAL (if any) so the returned image
    pairs with a checkpoint LSN; with ``path``, the image is pickled to
    disk.  Returns the image (a plain dict).
    """
    # The txn latch (taken first, per the rank order) freezes the table
    # dict against concurrent DDL and bulk load — create_table/load
    # mutate it under that latch, so iterating it latch-free could raise
    # mid-iteration or capture a half-loaded table.  The commit latch
    # then excludes version installation, so the image is a
    # transactionally consistent committed prefix (commits are entirely
    # before or entirely after the checkpoint).
    with db._txn_latch, db._commit_latch:
        tables: dict[str, list[tuple[Any, Any, int, int, bool]]] = {}
        for name, table in db._tables.items():
            rows = []
            # Chunked walk (PR 10): the commit latch above is what makes
            # the image consistent — version installs are excluded — so
            # the table latch need not be held across the whole table;
            # dropping it between chunks lets concurrent readers proceed.
            for chunk in table.scan_chunks(None, None):
                for key, chain in chunk:
                    version = chain.latest()
                    if version is None:
                        continue
                    rows.append((
                        key, None if version.is_tombstone else version.value,
                        version.commit_ts, version.creator_id,
                        version.is_tombstone,
                    ))
            tables[name] = rows
        checkpoint_lsn = 0
        if db.wal is not None:
            record = db.wal.log_checkpoint()
            db.wal.flush()
            checkpoint_lsn = record.lsn
        image = {
            "tables": tables,
            "checkpoint_lsn": checkpoint_lsn,
            "clock": db.clock.now(),
        }
    if path is not None:
        with open(path, "wb") as handle:
            pickle.dump(image, handle)
    return image


def restore_checkpoint(
    image: dict | str, config: EngineConfig | None = None
) -> Database:
    """Rebuild a database from a checkpoint image (or its file path)."""
    if isinstance(image, str):
        with open(image, "rb") as handle:
            image = pickle.load(handle)
    db = Database(config or EngineConfig())
    for name, rows in image["tables"].items():
        table = db.create_table(name)
        for key, value, commit_ts, creator_id, is_tombstone in rows:
            if is_tombstone and commit_ts == 0:
                continue
            chain, _pages = table.ensure_chain(key)
            chain.install(Version(
                value=TOMBSTONE if is_tombstone else value,
                commit_ts=commit_ts,
                creator_id=creator_id,
            ))
    while db.clock.now() < image["clock"]:
        db.clock.next()
    return db


def recover_from_checkpoint(
    image: dict | str,
    wal: WriteAheadLog,
    config: EngineConfig | None = None,
) -> Database:
    """Full recovery: restore the checkpoint, redo the log suffix."""
    if isinstance(image, str):
        with open(image, "rb") as handle:
            image = pickle.load(handle)
    base = restore_checkpoint(image, config)
    return replay(wal, base=base, start_lsn=image["checkpoint_lsn"])
