"""The write-ahead log.

An append-only sequence of records with an explicit *flushed* watermark:
everything at or below ``flushed_lsn`` survives a crash, everything above
is lost.  ``flush()`` advances the watermark (the 10 ms the benchmarks
charge); :meth:`crash` simulates power loss by discarding the unflushed
suffix.

Group commit falls out naturally: any number of commit records appended
between two flushes are made durable by the single flush that follows.

Optional file persistence uses pickle (values are arbitrary Python
objects); the file is written on flush, giving the same durability
boundary as the in-memory watermark.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Hashable, Iterable, Iterator

from repro.engine.latches import make_latch
from repro.wal.records import (
    AbortRecord,
    BeginRecord,
    CheckpointRecord,
    CommitRecord,
    LogRecord,
    WriteRecord,
)


class WriteAheadLog:
    """An append-only redo log with a flush watermark.

    Args:
        path: optional file path; when set, :meth:`flush` persists the
            flushed prefix and :meth:`load` can rebuild the log from disk.
    """

    def __init__(self, path: str | None = None):
        self._records: list[LogRecord] = []
        self._flushed_lsn = 0
        self._next_lsn = 1
        self.path = path
        self.stats = {"appends": 0, "flushes": 0}
        # Leaf latch (rank "wal", the bottom of the hierarchy): serialises
        # LSN allocation, appends and the flush watermark.  Engine callers
        # invoke the WAL outside every engine latch, so log-file I/O never
        # blocks latched critical sections — only other WAL operations.
        self._latch = make_latch("wal")

    # ------------------------------------------------------------- append

    def _append(self, factory, txn_id: int, **fields) -> LogRecord:
        with self._latch:
            record = factory(lsn=self._next_lsn, txn_id=txn_id, **fields)
            self._next_lsn += 1
            self._records.append(record)
            self.stats["appends"] += 1
            return record

    def log_begin(self, txn_id: int) -> LogRecord:
        return self._append(BeginRecord, txn_id)

    def log_write(
        self,
        txn_id: int,
        table: str,
        key: Hashable,
        value: Any,
        tombstone: bool = False,
        kind: str = "write",
    ) -> LogRecord:
        return self._append(
            WriteRecord, txn_id, table=table, key=key, value=value,
            tombstone=tombstone, kind=kind,
        )

    def log_commit(self, txn_id: int, commit_ts: int) -> LogRecord:
        return self._append(CommitRecord, txn_id, commit_ts=commit_ts)

    def log_abort(self, txn_id: int) -> LogRecord:
        return self._append(AbortRecord, txn_id)

    def log_checkpoint(self) -> LogRecord:
        return self._append(CheckpointRecord, 0)

    # -------------------------------------------------------- durability

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def flushed_lsn(self) -> int:
        return self._flushed_lsn

    def flush(self) -> int:
        """Make everything appended so far durable; returns the new
        watermark.  One flush covers every commit queued behind it
        (group commit)."""
        with self._latch:
            self._flushed_lsn = self.last_lsn
            self.stats["flushes"] += 1
            if self.path is not None:
                durable = [
                    r for r in self._records if r.lsn <= self._flushed_lsn
                ]
                with open(self.path, "wb") as handle:
                    pickle.dump(durable, handle)
            return self._flushed_lsn

    def crash(self) -> int:
        """Simulate power loss: the unflushed suffix disappears.
        Returns the number of records lost."""
        with self._latch:
            survivors = [r for r in self._records if r.lsn <= self._flushed_lsn]
            lost = len(self._records) - len(survivors)
            self._records = survivors
            self._next_lsn = self._flushed_lsn + 1
            return lost

    @classmethod
    def load(cls, path: str) -> "WriteAheadLog":
        """Rebuild a log from its persisted (flushed) prefix."""
        log = cls(path=path)
        if os.path.exists(path) and os.path.getsize(path) > 0:
            with open(path, "rb") as handle:
                log._records = pickle.load(handle)
            log._flushed_lsn = max((r.lsn for r in log._records), default=0)
            log._next_lsn = log._flushed_lsn + 1
        return log

    # ----------------------------------------------------------- reading

    def records(self, durable_only: bool = True) -> Iterator[LogRecord]:
        """Iterate records; by default only the flushed (durable) prefix —
        what recovery is allowed to see."""
        with self._latch:
            if durable_only:
                return iter(
                    [r for r in self._records if r.lsn <= self._flushed_lsn]
                )
            return iter(list(self._records))

    def committed_txn_ids(self) -> list[int]:
        return [
            record.txn_id
            for record in self.records()
            if isinstance(record, CommitRecord)
        ]

    def truncate_before(self, lsn: int) -> int:
        """Drop records below ``lsn`` (after a checkpoint made them
        redundant).  Returns the number removed.  LSNs are preserved —
        the log keeps a base offset."""
        with self._latch:
            keep = [record for record in self._records if record.lsn >= lsn]
            removed = len(self._records) - len(keep)
            self._records = keep
            return removed

    def __len__(self) -> int:
        return len(self._records)
