"""Write-ahead logging and crash recovery.

The paper's engines pair their concurrency control with a redo log whose
flush-at-commit cost dominates the "long transactions" experiments
(Section 6.1.3) and whose flush-then-release ordering the authors had to
fix in InnoDB (Section 4.4).  This package provides the durability leg
for this engine:

* :mod:`repro.wal.records` — typed log records;
* :mod:`repro.wal.log` — an append-only log with explicit flush points,
  group commit and optional file persistence;
* :mod:`repro.wal.recovery` — redo recovery: rebuild the database from
  the flushed prefix of a log.

The engine buffers writes privately until commit (no-steal), so recovery
is pure redo: committed-and-flushed transactions are replayed in commit
order, everything else vanishes — which is exactly the crash semantics
the tests assert.
"""

from repro.wal.records import (
    BeginRecord,
    CommitRecord,
    AbortRecord,
    WriteRecord,
    CheckpointRecord,
    LogRecord,
)
from repro.wal.log import WriteAheadLog
from repro.wal.recovery import recover_database, replay
from repro.wal.checkpoint import (
    recover_from_checkpoint,
    restore_checkpoint,
    take_checkpoint,
)

__all__ = [
    "LogRecord",
    "BeginRecord",
    "CommitRecord",
    "AbortRecord",
    "WriteRecord",
    "CheckpointRecord",
    "WriteAheadLog",
    "recover_database",
    "replay",
    "take_checkpoint",
    "restore_checkpoint",
    "recover_from_checkpoint",
]
