"""Redo recovery.

Rebuilds database state from the durable prefix of a write-ahead log.
Because the engine is no-steal, recovery is a single redo pass:

1. collect the commit record of every committed transaction;
2. replay the write records of committed transactions, in commit-
   timestamp order, installing versions with their original commit
   timestamps (so post-recovery snapshots see exactly the pre-crash
   version history);
3. everything else — uncommitted, aborted, or committed-but-unflushed —
   contributes nothing.

A checkpoint record allows the scan to skip the truncated prefix; the
checkpointed state is supplied as a base database.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.mvcc.version import TOMBSTONE, Version
from repro.wal.log import WriteAheadLog
from repro.wal.records import CheckpointRecord, CommitRecord, WriteRecord


def replay(log: WriteAheadLog, base: Database | None = None,
           config: EngineConfig | None = None,
           start_lsn: int | None = None) -> Database:
    """Redo the durable prefix of ``log`` into a database.

    ``base`` supplies checkpointed state (tables already loaded); when
    None a fresh database is created and tables materialise on demand.
    ``start_lsn`` pins the replay start (records at or below it are
    assumed captured by the base); by default the newest checkpoint
    record in the log is used.
    """
    db = base if base is not None else Database(config or EngineConfig())

    commit_ts_of: dict[int, int] = {}
    writes: dict[int, list[WriteRecord]] = defaultdict(list)
    if start_lsn is None:
        start_lsn = 0
        for record in log.records(durable_only=True):
            if isinstance(record, CheckpointRecord):
                start_lsn = record.lsn

    for record in log.records(durable_only=True):
        if record.lsn <= start_lsn:
            continue
        if isinstance(record, CommitRecord):
            commit_ts_of[record.txn_id] = record.commit_ts
        elif isinstance(record, WriteRecord):
            writes[record.txn_id].append(record)

    max_ts = 0
    for txn_id, commit_ts in sorted(commit_ts_of.items(), key=lambda kv: kv[1]):
        for write in writes.get(txn_id, ()):
            table = _ensure_table(db, write.table)
            chain, _pages = table.ensure_chain(write.key)
            value = TOMBSTONE if write.tombstone else write.value
            chain.install(
                Version(value=value, commit_ts=commit_ts, creator_id=txn_id)
            )
        max_ts = max(max_ts, commit_ts)

    # Advance the clock past everything recovered so new transactions
    # order after pre-crash history.
    while db.clock.now() < max_ts:
        db.clock.next()
    return db


def recover_database(log: WriteAheadLog, config: EngineConfig | None = None) -> Database:
    """Fresh-start recovery: an empty database plus the log's redo state."""
    return replay(log, base=None, config=config)


def _ensure_table(db: Database, name: str):
    try:
        return db.table(name)
    except Exception:
        return db.create_table(name)
