"""Write-ahead log records.

Because the engine is no-steal (uncommitted writes never reach the
stores), the log only needs redo information: which transaction wrote
what, and whether it committed.  Deletes are logged as tombstone writes
so redo recreates the tombstone versions phantom detection relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True, slots=True)
class LogRecord:
    """Base class; ``lsn`` is assigned by the log on append."""

    lsn: int
    txn_id: int


@dataclass(frozen=True, slots=True)
class BeginRecord(LogRecord):
    """Transaction start (informational; redo ignores it)."""


@dataclass(frozen=True, slots=True)
class WriteRecord(LogRecord):
    """One item written by a transaction.

    ``tombstone`` marks a delete; ``kind`` preserves the operation class
    ("write" | "insert" | "delete") for tooling.
    """

    table: str
    key: Hashable
    value: Any
    tombstone: bool = False
    kind: str = "write"


@dataclass(frozen=True, slots=True)
class CommitRecord(LogRecord):
    """Commit point; carries the commit timestamp used for version order."""

    commit_ts: int


@dataclass(frozen=True, slots=True)
class AbortRecord(LogRecord):
    """Rollback marker (redo ignores the transaction entirely)."""


@dataclass(frozen=True, slots=True)
class CheckpointRecord(LogRecord):
    """Marks that all state up to ``lsn`` is reflected in a snapshot
    external to the log; recovery may start scanning here.  ``txn_id``
    is 0 — checkpoints belong to no transaction."""
