"""Static dependency graph construction and dangerous-structure detection.

Implements Definition 1 (Fekete et al. 2005, quoted in paper Section
2.6): SDG(A) has a dangerous structure when there are programs P, Q, R
(not necessarily distinct) with vulnerable anti-dependency edges R -> P
and P -> Q such that Q == R or Q reaches R through the graph.  P is the
*pivot*; Theorem 3 says an application with no dangerous structure is
serializable under SI.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.programs import (
    Access,
    ProgramSpec,
    conflicts_under,
    matchings,
)


@dataclass(frozen=True, slots=True)
class SdgEdge:
    """An edge in the SDG.

    ``kinds`` holds the conflict kinds observed across matchings
    ("rw", "ww", "wr"); ``vulnerable`` is True when some matching yields
    an rw conflict src -> dst with no write-write conflict between the
    pair in that same scenario — the condition under which the two
    instances can actually run concurrently with the anti-dependency
    (Section 2.6)."""

    src: str
    dst: str
    kinds: frozenset[str]
    vulnerable: bool

    def __repr__(self) -> str:
        mark = "~" if self.vulnerable else "-"
        return f"{self.src} {mark}{'/'.join(sorted(self.kinds))}{mark}> {self.dst}"


@dataclass(frozen=True, slots=True)
class DangerousStructure:
    """A witness of Definition 1: R ~rw~> P ~rw~> Q with Q ->* R."""

    incoming: str  # R
    pivot: str     # P
    outgoing: str  # Q

    def __repr__(self) -> str:
        return f"{self.incoming} ~> [{self.pivot}] ~> {self.outgoing}"


class SDG:
    """The static dependency graph of an application's program mix."""

    def __init__(self, programs: Sequence[ProgramSpec], edges: Sequence[SdgEdge]):
        self.programs = {program.name: program for program in programs}
        self.edges = list(edges)
        self._adjacency: dict[str, set[str]] = defaultdict(set)
        for edge in self.edges:
            self._adjacency[edge.src].add(edge.dst)

    def edge(self, src: str, dst: str) -> SdgEdge | None:
        for edge in self.edges:
            if edge.src == src and edge.dst == dst:
                return edge
        return None

    def vulnerable_edges(self) -> list[SdgEdge]:
        return [edge for edge in self.edges if edge.vulnerable]

    def reaches(self, src: str, dst: str) -> bool:
        """Reflexive-transitive reachability src ->* dst."""
        if src == dst:
            return True
        stack, seen = [src], {src}
        while stack:
            node = stack.pop()
            for target in self._adjacency.get(node, ()):
                if target == dst:
                    return True
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return False

    def dangerous_structures(self) -> list[DangerousStructure]:
        """All Definition-1 witnesses."""
        vulnerable = self.vulnerable_edges()
        found = []
        for into_pivot in vulnerable:
            for out_of_pivot in vulnerable:
                if into_pivot.dst != out_of_pivot.src:
                    continue
                pivot = into_pivot.dst
                incoming, outgoing = into_pivot.src, out_of_pivot.dst
                if self.reaches(outgoing, incoming):
                    found.append(DangerousStructure(incoming, pivot, outgoing))
        return found

    def pivots(self) -> list[str]:
        """Programs at the junction of consecutive vulnerable edges in a
        (potential) cycle — the transactions to fix or run at S2PL
        (Section 2.6.3)."""
        return sorted({witness.pivot for witness in self.dangerous_structures()})

    def is_serializable_under_si(self) -> bool:
        """Theorem 3: no dangerous structure -> serializable under SI."""
        return not self.dangerous_structures()

    def to_dot(self) -> str:
        """Graphviz rendering in the paper's visual language: dashed =
        vulnerable rw, bold = ww, shaded = update program, diamond =
        pivot."""
        pivots = set(self.pivots())
        lines = ["digraph SDG {", "  rankdir=LR;"]
        for name, program in self.programs.items():
            shape = "diamond" if name in pivots else "ellipse"
            style = "filled" if not program.readonly else "solid"
            lines.append(f'  "{name}" [shape={shape}, style={style}];')
        for edge in self.edges:
            style = "dashed" if edge.vulnerable else (
                "bold" if "ww" in edge.kinds else "solid"
            )
            lines.append(f'  "{edge.src}" -> "{edge.dst}" [style={style}];')
        lines.append("}")
        return "\n".join(lines)


def build_sdg(programs: Sequence[ProgramSpec]) -> SDG:
    """Derive the SDG from program specifications.

    For each ordered program pair, row-variable matchings are enumerated;
    an edge src -> dst is recorded when some matching produces a conflict
    with src's operation first (read-write, write-write or write-read),
    and flagged vulnerable when some matching has an rw conflict that no
    simultaneous ww conflict "covers" (Section 2.8.4's argument)."""
    edges: list[SdgEdge] = []
    for src in programs:
        for dst in programs:
            edge = _pair_edge(src, dst)
            if edge is not None:
                edges.append(edge)
    return SDG(programs, edges)


def _pair_edge(src: ProgramSpec, dst: ProgramSpec) -> SdgEdge | None:
    kinds: set[str] = set()
    vulnerable = False
    src_vars = src.row_vars()
    dst_vars = dst.row_vars()
    for matching in matchings(src_vars, dst_vars):
        has_rw = False
        has_ww = False
        for p_access in src.accesses:
            for q_access in dst.accesses:
                if not conflicts_under(p_access, q_access, matching):
                    continue
                # Self-pairs are two *instances* of one program; the
                # identity matching models both instances sharing their
                # parameters (e.g. two Credit Checks on one customer,
                # the ww self-loop of Fig 5.3).
                if p_access.is_read and q_access.is_write:
                    kinds.add("rw")
                    has_rw = True
                elif p_access.is_write and q_access.is_write:
                    kinds.add("ww")
                    has_ww = True
                elif p_access.is_write and q_access.is_read:
                    kinds.add("wr")
        if has_rw and not has_ww:
            vulnerable = True
    if not kinds:
        return None
    return SdgEdge(src.name, dst.name, frozenset(kinds), vulnerable)
