"""Automated fix suggestion for SI anomalies (paper Sections 2.6, 2.8.5).

Given program specifications whose SDG contains dangerous structures,
enumerate the candidate application-level fixes — breaking either
vulnerable edge of each structure by *promotion* (an identity write on
the item read) or *materialisation* (both programs update a row of a
dedicated conflict table) — apply each candidate, rebuild the SDG, and
report which candidates actually restore serializability.

Candidates are ranked by the guidance the paper distils from Alomari et
al.: prefer fixes that do not turn a read-only program into an update,
and prefer fewer modified programs.  (Choosing a globally minimal set of
edges is NP-hard — Jorwekar et al., quoted in Section 2.6 — so the
advisor evaluates single-edge fixes, which suffices for SmallBank-sized
applications and mirrors the paper's manual analysis.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.programs import (
    Access,
    ProgramSpec,
    conflicts_under,
    matchings,
    write,
)
from repro.analysis.sdg import SDG, SdgEdge, build_sdg


@dataclass(frozen=True, slots=True)
class FixCandidate:
    """One evaluated fix.

    Attributes:
        edge: (src, dst) names of the vulnerable edge being broken.
        technique: "promote" or "materialize".
        modified: names of the programs the fix alters.
        queries_modified: read-only programs the fix turns into updates
            (the cost Section 2.8.5 warns about).
        serializable: True if the fixed application's SDG has no
            dangerous structure (Theorem 3 then applies).
        residual_pivots: pivots remaining after the fix.
    """

    edge: tuple[str, str]
    technique: str
    modified: tuple[str, ...]
    queries_modified: tuple[str, ...]
    serializable: bool
    residual_pivots: tuple[str, ...]

    def sort_key(self) -> tuple:
        return (
            not self.serializable,
            len(self.queries_modified),
            len(self.modified),
            self.edge,
            self.technique,
        )

    def describe(self) -> str:
        status = "OK" if self.serializable else (
            f"residual pivots: {', '.join(self.residual_pivots)}"
        )
        cost = (
            f" (turns {'/'.join(self.queries_modified)} into updates)"
            if self.queries_modified else ""
        )
        return (
            f"{self.technique} {self.edge[0]}->{self.edge[1]}: "
            f"modify {', '.join(self.modified)}{cost} -> {status}"
        )


def _rw_witnesses(src: ProgramSpec, dst: ProgramSpec) -> list[tuple[Access, Access, dict]]:
    """The (read, write, matching) triples witnessing rw conflicts on the
    src -> dst edge."""
    witnesses = []
    for matching in matchings(src.row_vars(), dst.row_vars()):
        for read_access in src.accesses:
            if not read_access.is_read:
                continue
            for write_access in dst.accesses:
                if not write_access.is_write:
                    continue
                if conflicts_under(read_access, write_access, matching):
                    witnesses.append((read_access, write_access, matching))
    return witnesses


def _promote(src: ProgramSpec, witnesses) -> ProgramSpec | None:
    """Identity-write every item src reads in the conflict; inapplicable
    when the conflict is predicate-based (Section 2.6.2: promotion cannot
    cover predicate evaluation changes)."""
    extra: list[Access] = []
    for read_access, _write_access, _matching in witnesses:
        if read_access.row == "*":
            return None
        promoted = write(read_access.table, read_access.row, read_access.domain)
        if promoted not in extra and promoted not in src.accesses:
            extra.append(promoted)
    if not extra:
        return None
    return src.with_extra(*extra)


def _materialize(
    src: ProgramSpec, dst: ProgramSpec, witnesses
) -> tuple[ProgramSpec, ProgramSpec]:
    """Both programs update a row of a dedicated Conflict table.  When the
    conflicting accesses share a row binding, the conflict row is keyed by
    it (contention only where needed, Section 2.6.1); predicate conflicts
    fall back to a single fixed row."""
    for read_access, write_access, matching in witnesses:
        if (
            read_access.row != "*"
            and write_access.row != "*"
            and matching.get(read_access.row) == write_access.row
        ):
            src_fix = write("__conflict__", read_access.row, read_access.domain)
            dst_fix = write("__conflict__", write_access.row, write_access.domain)
            break
    else:
        # Predicate conflict: a fixed, shared conflict row.
        src_fix = write("__conflict__", "fixed", "__conflict_row__")
        dst_fix = write("__conflict__", "fixed", "__conflict_row__")
    return src.with_extra(src_fix), dst.with_extra(dst_fix)


def suggest_fixes(programs: Sequence[ProgramSpec]) -> list[FixCandidate]:
    """Evaluate every single-edge fix of the application's dangerous
    structures, best candidates first.  Empty if already serializable."""
    by_name = {program.name: program for program in programs}
    sdg = build_sdg(list(programs))
    structures = sdg.dangerous_structures()
    if not structures:
        return []

    candidate_edges: set[tuple[str, str]] = set()
    for witness in structures:
        candidate_edges.add((witness.incoming, witness.pivot))
        candidate_edges.add((witness.pivot, witness.outgoing))

    results: list[FixCandidate] = []
    for src_name, dst_name in sorted(candidate_edges):
        src, dst = by_name[src_name], by_name[dst_name]
        witnesses = _rw_witnesses(src, dst)
        if not witnesses:
            continue
        promoted = _promote(src, witnesses)
        if promoted is not None:
            results.append(
                _evaluate(by_name, {src_name: promoted}, (src_name, dst_name), "promote")
            )
        mat_src, mat_dst = _materialize(src, dst, witnesses)
        replacements = {src_name: mat_src, dst_name: mat_dst}
        if src_name == dst_name:
            replacements = {src_name: mat_src.with_extra(*(
                access for access in mat_dst.accesses
                if access not in mat_src.accesses
            ))}
        results.append(
            _evaluate(by_name, replacements, (src_name, dst_name), "materialize")
        )
    results.sort(key=FixCandidate.sort_key)
    return results


def _evaluate(
    by_name: dict[str, ProgramSpec],
    replacements: dict[str, ProgramSpec],
    edge: tuple[str, str],
    technique: str,
) -> FixCandidate:
    fixed_programs = [
        replacements.get(name, program) for name, program in by_name.items()
    ]
    fixed_sdg = build_sdg(fixed_programs)
    pivots = tuple(fixed_sdg.pivots())
    queries_modified = tuple(
        name for name in replacements if by_name[name].readonly
    )
    return FixCandidate(
        edge=edge,
        technique=technique,
        modified=tuple(sorted(replacements)),
        queries_modified=queries_modified,
        serializable=not pivots,
        residual_pivots=pivots,
    )
