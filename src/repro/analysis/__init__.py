"""Static dependency graph analysis (paper Sections 2.6 and 2.8).

Implements the design-time technique the paper's runtime algorithm
replaces: model each transaction program's reads/writes, build the static
dependency graph (SDG), find vulnerable anti-dependency edges and
dangerous structures (Definition 1), and identify pivots.  Prebuilt
specifications reproduce the paper's SDG figures: SmallBank (Fig 2.9,
pivot = WriteCheck), its PromoteBW fix (Fig 2.10), TPC-C (Fig 2.8, no
dangerous structure) and TPC-C++ (Fig 5.3, pivots = {NEWO, CCHECK}).
"""

from repro.analysis.programs import Access, ProgramSpec, read, write, predicate_read, insert
from repro.analysis.sdg import SDG, SdgEdge, build_sdg, DangerousStructure
from repro.analysis.advisor import FixCandidate, suggest_fixes
from repro.analysis.catalog import (
    smallbank_specs,
    tpcc_specs,
    tpccpp_specs,
)

__all__ = [
    "FixCandidate",
    "suggest_fixes",
    "Access",
    "ProgramSpec",
    "read",
    "write",
    "predicate_read",
    "insert",
    "SDG",
    "SdgEdge",
    "DangerousStructure",
    "build_sdg",
    "smallbank_specs",
    "tpcc_specs",
    "tpccpp_specs",
]
