"""Program specifications for the paper's benchmark applications.

These reproduce, as computed artefacts, the SDG figures of the paper:

* :func:`smallbank_specs` — Fig 2.9 (pivot = WC) and, via ``variant``,
  the Section 2.8.5 fixes (Fig 2.10 is the ``promote_bw`` variant);
* :func:`tpcc_specs` — Fig 2.8 (no dangerous structure: TPC-C is
  serializable under SI);
* :func:`tpccpp_specs` — Fig 5.3 (pivots = {CCHECK, NEWO}).

Column-level partitioning is modelled with partition-qualified table
names (``customer.bal`` vs ``customer.credit``), following the paper's
Section 5.3.3 discussion of partitioning the Customer table.
"""

from __future__ import annotations

from repro.analysis.programs import (
    ProgramSpec,
    insert,
    predicate_read,
    read,
    write,
)


def smallbank_specs(variant: str = "plain") -> list[ProgramSpec]:
    """The five SmallBank programs, optionally transformed.

    Variants (Section 2.8.5): ``materialize_wt``, ``promote_wt``,
    ``materialize_bw``, ``promote_bw``.
    """
    bal = ProgramSpec("Bal", (
        read("saving", "c", "customer"),
        read("checking", "c", "customer"),
    ))
    dc = ProgramSpec("DC", (
        read("checking", "c", "customer"),
        write("checking", "c", "customer"),
    ))
    ts = ProgramSpec("TS", (
        read("saving", "c", "customer"),
        write("saving", "c", "customer"),
    ))
    amg = ProgramSpec("Amg", (
        read("saving", "c1", "customer"),
        read("checking", "c1", "customer"),
        read("checking", "c2", "customer"),
        write("saving", "c1", "customer"),
        write("checking", "c1", "customer"),
        write("checking", "c2", "customer"),
    ))
    wc = ProgramSpec("WC", (
        read("saving", "c", "customer"),
        read("checking", "c", "customer"),
        write("checking", "c", "customer"),
    ))

    if variant == "promote_wt":
        wc = wc.with_extra(write("saving", "c", "customer"))
    elif variant == "materialize_wt":
        wc = wc.with_extra(write("conflict", "c", "customer"))
        ts = ts.with_extra(write("conflict", "c", "customer"))
    elif variant == "promote_bw":
        bal = bal.with_extra(write("checking", "c", "customer"))
    elif variant == "materialize_bw":
        bal = bal.with_extra(write("conflict", "c", "customer"))
        wc = wc.with_extra(write("conflict", "c", "customer"))
    elif variant != "plain":
        raise ValueError(f"unknown variant {variant!r}")
    return [bal, dc, ts, amg, wc]


def tpcc_specs() -> list[ProgramSpec]:
    """TPC-C with the Delivery split (DLVY1/DLVY2) of Fekete et al."""
    newo = ProgramSpec("NEWO", (
        read("district.next", "d", "district"),
        write("district.next", "d", "district"),
        read("customer.info", "c", "customer"),
        read("item", "i", "item"),
        read("stock.qty", "i", "item"),
        write("stock.qty", "i", "item"),
        insert("orders", "order"),
        insert("new_order", "order"),
        insert("order_line", "order"),
    ))
    pay = ProgramSpec("PAY", (
        read("customer.bal", "c", "customer"),
        write("customer.bal", "c", "customer"),
        read("warehouse.ytd", "w", "warehouse"),
        write("warehouse.ytd", "w", "warehouse"),
        read("district.ytd", "d", "district"),
        write("district.ytd", "d", "district"),
    ))
    ostat = ProgramSpec("OSTAT", (
        read("customer.bal", "c", "customer"),
        read("customer.info", "c", "customer"),
        predicate_read("orders", "order"),
        predicate_read("order_line", "order"),
    ))
    slev = ProgramSpec("SLEV", (
        read("district.next", "d", "district"),
        predicate_read("order_line", "order"),
        read("stock.qty", "i", "item"),
    ))
    dlvy1 = ProgramSpec("DLVY1", (
        predicate_read("new_order", "order"),
    ))
    dlvy2 = ProgramSpec("DLVY2", (
        predicate_read("new_order", "order"),
        insert("new_order", "order"),  # the delete: a write on the queue
        predicate_read("orders", "order"),
        insert("orders", "order"),
        predicate_read("order_line", "order"),
        insert("order_line", "order"),
        read("customer.bal", "c", "customer"),
        write("customer.bal", "c", "customer"),
    ))
    return [newo, pay, ostat, slev, dlvy1, dlvy2]


def tpccpp_specs() -> list[ProgramSpec]:
    """TPC-C++ = TPC-C + Credit Check, + New Order reading the credit
    status (the customer is told about a bad rating, Section 5.3.3)."""
    specs = {spec.name: spec for spec in tpcc_specs()}
    specs["NEWO"] = specs["NEWO"].with_extra(
        read("customer.credit", "c", "customer")
    )
    ccheck = ProgramSpec("CCHECK", (
        read("customer.bal", "c", "customer"),
        predicate_read("new_order", "order"),
        predicate_read("order_line", "order"),
        write("customer.credit", "c", "customer"),
    ))
    return list(specs.values()) + [ccheck]
