"""Abstract transaction-program specifications for SDG analysis.

A program is a set of :class:`Access` records over *row variables*: local
names for the rows a program instance touches, tagged with the domain
they range over (two row variables can only denote the same row when
their domains match).  The analysis enumerates row-variable matchings
between program pairs to decide which conflicts can occur — this captures
the paper's SmallBank subtlety that WriteCheck -> Amalgamate is *not*
vulnerable (whenever Amg writes Saving for customer c it also writes
Checking for the same c, which WC writes too; Section 2.8.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Access:
    """One table access of a program.

    Attributes:
        table: table (or table partition / column group) name.  Column-
            level partitioning — e.g. TPC-C++'s customer.balance vs
            customer.credit (Section 5.3.3) — is modelled by using a
            distinct table name per partition.
        row: local row-variable name ("c", "c2", ...).  The special value
            ``"*"`` denotes a predicate over the whole table (range
            scans and the rows inserts create), which can conflict with
            any row variable of the same domain.
        domain: the key space the row ranges over ("customer", ...).
        mode: "read", "write", or "predicate_read" / "insert" for
            phantom-sensitive accesses.
    """

    table: str
    row: str
    domain: str
    mode: str

    @property
    def is_write(self) -> bool:
        return self.mode in ("write", "insert")

    @property
    def is_read(self) -> bool:
        return self.mode in ("read", "predicate_read")


def read(table: str, row: str, domain: str | None = None) -> Access:
    return Access(table, row, domain or table, "read")


def write(table: str, row: str, domain: str | None = None) -> Access:
    return Access(table, row, domain or table, "write")


def predicate_read(table: str, domain: str | None = None) -> Access:
    return Access(table, "*", domain or table, "predicate_read")


def insert(table: str, domain: str | None = None) -> Access:
    return Access(table, "*", domain or table, "insert")


@dataclass(frozen=True)
class ProgramSpec:
    """A named transaction program with its accesses."""

    name: str
    accesses: tuple[Access, ...]

    @property
    def readonly(self) -> bool:
        return not any(access.is_write for access in self.accesses)

    def row_vars(self) -> list[tuple[str, str]]:
        """Distinct (row, domain) pairs, '*' excluded."""
        seen = []
        for access in self.accesses:
            pair = (access.row, access.domain)
            if access.row != "*" and pair not in seen:
                seen.append(pair)
        return seen

    def with_extra(self, *extra: Access, name: str | None = None) -> "ProgramSpec":
        """A copy with added accesses — how materialisation/promotion
        transforms are expressed (Sections 2.6.1/2.6.2)."""
        return ProgramSpec(name or self.name, self.accesses + tuple(extra))

    def __repr__(self) -> str:
        return f"ProgramSpec({self.name!r}, {len(self.accesses)} accesses)"


def matchings(
    left: Iterable[tuple[str, str]], right: Iterable[tuple[str, str]]
) -> Iterator[dict[str, str]]:
    """Enumerate partial injective matchings of row variables with equal
    domains.  Each matching is one scenario of which rows coincide
    between two concurrent program instances."""
    left = list(left)
    right = list(right)

    def recurse(index: int, used: set[str], current: dict[str, str]) -> Iterator[dict[str, str]]:
        if index == len(left):
            yield dict(current)
            return
        lrow, ldomain = left[index]
        # Option: leave this variable unmatched.
        yield from recurse(index + 1, used, current)
        for rrow, rdomain in right:
            if rdomain == ldomain and rrow not in used:
                current[lrow] = rrow
                used.add(rrow)
                yield from recurse(index + 1, used, current)
                used.discard(rrow)
                del current[lrow]

    yield from recurse(0, set(), {})


def conflicts_under(
    p_access: Access, q_access: Access, matching: dict[str, str]
) -> bool:
    """Can these two accesses touch the same row under ``matching``?"""
    if p_access.table != q_access.table:
        return False
    if p_access.row == "*" or q_access.row == "*":
        return p_access.domain == q_access.domain
    return matching.get(p_access.row) == q_access.row
