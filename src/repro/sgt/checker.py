"""Serializability checking of recorded histories (the test oracle)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sgt.history import HistoryRecorder
from repro.sgt.mvsg import MVSG, build_mvsg


@dataclass(slots=True)
class SerializationReport:
    """Outcome of checking one history."""

    serializable: bool
    cycle: list[int]
    graph: MVSG

    def __bool__(self) -> bool:
        return self.serializable

    def describe(self) -> str:
        if self.serializable:
            return (
                f"serializable: {len(self.graph.nodes)} committed txns, "
                f"{len(self.graph.edges)} dependencies, no cycle"
            )
        edges = [
            edge
            for edge in self.graph.edges
            if edge.src in self.cycle and edge.dst in self.cycle
        ]
        lines = [f"NON-SERIALIZABLE: cycle {self.cycle}"]
        lines.extend(
            f"  T{edge.src} -{edge.kind}-> T{edge.dst} on {edge.item}" for edge in edges
        )
        return "\n".join(lines)


def check_serializable(history: HistoryRecorder) -> SerializationReport:
    """Build the MVSG of a history's committed transactions and test for
    cycles.  Acyclic MVSG -> conflict-serializable (Theorem 1)."""
    graph = build_mvsg(history)
    cycle = graph.find_cycle()
    return SerializationReport(serializable=not cycle, cycle=cycle, graph=graph)
