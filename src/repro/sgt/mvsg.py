"""Multiversion serialization graph (MVSG) construction.

Under snapshot isolation the MVSG is simple because versions of an item
are totally ordered by commit timestamp (paper Section 2.5.1).  Edges
between committed transactions T1 -> T2:

* **ww**: T1 installs a version of x, T2 installs a later version of x;
* **wr**: T1 installs the version of x that T2 read;
* **rw** (anti-dependency): T1 reads a version of x older than a version
  installed by T2 — including the phantom form, where T1's predicate scan
  missed a row T2 created or deleted inside the scanned range.

A cycle proves the history non-serializable; rw edges are the "dashed"
edges of the paper's figures and two consecutive ones around a pivot form
the dangerous structure.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable

from repro.sgt.history import HistoryRecorder, TxnRecord


@dataclass(frozen=True, slots=True)
class DependencyEdge:
    """A dependency in the MVSG."""

    src: int
    dst: int
    kind: str  # "ww" | "wr" | "rw"
    item: tuple  # (table, key) or (table, (lo, hi)) for phantom edges

    @property
    def is_antidependency(self) -> bool:
        return self.kind == "rw"


@dataclass(slots=True)
class MVSG:
    """The graph: committed transaction ids plus typed edges."""

    nodes: set[int] = field(default_factory=set)
    edges: set[DependencyEdge] = field(default_factory=set)

    def adjacency(self) -> dict[int, set[int]]:
        adj: dict[int, set[int]] = defaultdict(set)
        for node in self.nodes:
            adj.setdefault(node, set())
        for edge in self.edges:
            adj[edge.src].add(edge.dst)
        return adj

    def find_cycle(self) -> list[int]:
        """Return node ids forming a cycle, or [] if the graph is acyclic."""
        adj = self.adjacency()
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in adj}
        parent: dict[int, int] = {}

        for root in adj:
            if colour[root] != WHITE:
                continue
            stack = [(root, iter(adj[root]))]
            colour[root] = GREY
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for target in neighbours:
                    if colour[target] == WHITE:
                        colour[target] = GREY
                        parent[target] = node
                        stack.append((target, iter(adj[target])))
                        advanced = True
                        break
                    if colour[target] == GREY:
                        cycle = [target]
                        walker = node
                        while walker != target:
                            cycle.append(walker)
                            walker = parent[walker]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return []

    def rw_edges(self) -> list[DependencyEdge]:
        return [edge for edge in self.edges if edge.is_antidependency]

    def pivots_in_cycle(self) -> list[int]:
        """Transactions with consecutive incoming+outgoing rw edges that lie
        on some cycle — the dangerous-structure pivots actually realised."""
        cycle = self.find_cycle()
        if not cycle:
            return []
        rw_in = {edge.dst for edge in self.rw_edges()}
        rw_out = {edge.src for edge in self.rw_edges()}
        return [node for node in cycle if node in rw_in and node in rw_out]

    def to_dot(self) -> str:
        """Graphviz rendering in the paper's notation: dashed edges are
        rw-antidependencies, cycle members are highlighted."""
        cycle = set(self.find_cycle())
        lines = ["digraph MVSG {", "  rankdir=LR;"]
        for node in sorted(self.nodes):
            style = ', style=filled, fillcolor="#f4cccc"' if node in cycle else ""
            lines.append(f'  "T{node}" [shape=circle{style}];')
        for edge in sorted(self.edges, key=lambda e: (e.src, e.dst, e.kind)):
            style = "dashed" if edge.is_antidependency else "solid"
            lines.append(
                f'  "T{edge.src}" -> "T{edge.dst}" '
                f'[style={style}, label="{edge.kind}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MVSG(nodes={len(self.nodes)}, edges={len(self.edges)})"


def build_mvsg(history: HistoryRecorder) -> MVSG:
    """Build the MVSG over the committed transactions of a history."""
    committed = {record.txn_id: record for record in history.committed()}
    graph = MVSG(nodes=set(committed))

    # Index writers: (table, key) -> sorted [(commit_ts, txn_id)]
    writers: dict[tuple[str, Hashable], list[tuple[int, int]]] = defaultdict(list)
    for record in committed.values():
        for op in record.writes():
            writers[(op.table, op.key)].append((record.commit_ts, record.txn_id))
    for versions in writers.values():
        versions.sort()

    by_version: dict[tuple[str, Hashable, int], int] = {}
    for (table, key), versions in writers.items():
        for commit_ts, txn_id in versions:
            by_version[(table, key, commit_ts)] = txn_id

    def add(src: int, dst: int, kind: str, item: tuple) -> None:
        if src != dst and src in committed and dst in committed:
            graph.edges.add(DependencyEdge(src, dst, kind, item))

    # ww edges: version order on each item.
    for (table, key), versions in writers.items():
        for (_ts1, txn1), (_ts2, txn2) in zip(versions, versions[1:]):
            add(txn1, txn2, "ww", (table, key))

    for record in committed.values():
        # wr and rw edges from point reads.
        for op in record.reads():
            item = (op.table, op.key)
            if op.version_ts and op.version_ts > 0:
                creator = by_version.get((op.table, op.key, op.version_ts))
                if creator is not None:
                    add(creator, record.txn_id, "wr", item)
            observed_ts = op.version_ts if op.version_ts is not None else (
                record.begin_ts or 0
            )
            for commit_ts, writer_id in writers.get(item, ()):
                if commit_ts > observed_ts:
                    add(record.txn_id, writer_id, "rw", item)
        # phantom rw edges from predicate scans.
        for op in record.scans():
            lo, hi = op.key
            read_ts = op.version_ts or record.begin_ts or 0
            for (table, key), versions in writers.items():
                if table != op.table:
                    continue
                if lo is not None and key < lo:
                    continue
                if hi is not None and hi < key:
                    continue
                for commit_ts, writer_id in versions:
                    if commit_ts > read_ts:
                        add(record.txn_id, writer_id, "rw", (table, (lo, hi)))
    return graph
