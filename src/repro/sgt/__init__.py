"""Serialization graph testing (paper Section 2.7).

Used two ways in this repo:

* as the **test oracle**: every execution recorded by
  :class:`~repro.sgt.history.HistoryRecorder` can be checked for conflict
  serializability by building the multiversion serialization graph
  (:mod:`repro.sgt.mvsg`) and looking for cycles — this is how the test
  suite proves SSI/S2PL executions serializable and exhibits SI's
  anomalies; and
* as a **baseline concurrency control**
  (:class:`~repro.sgt.scheduler.SGTCertifier`): the "elegant but
  impractical" full-graph scheduler the paper contrasts SSI against.
"""

from repro.sgt.history import HistoryRecorder, OpRecord, TxnRecord
from repro.sgt.mvsg import MVSG, DependencyEdge, build_mvsg
from repro.sgt.checker import check_serializable, SerializationReport
from repro.sgt.scheduler import SGTCertifier

__all__ = [
    "HistoryRecorder",
    "OpRecord",
    "TxnRecord",
    "MVSG",
    "DependencyEdge",
    "build_mvsg",
    "check_serializable",
    "SerializationReport",
    "SGTCertifier",
]
