"""Execution history recording.

The engine (when configured with ``record_history=True``) reports every
read, write, insert, delete and predicate scan of every transaction here,
along with the *version* involved — enough information to rebuild the
multiversion serialization graph offline.  This is the paper's
"after-the-fact analysis" idea (Section 3.1.1), repurposed as a test
oracle rather than a developer tool.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable


@dataclass(frozen=True, slots=True)
class OpRecord:
    """One recorded operation.

    ``kind`` is one of ``read``, ``write``, ``insert``, ``delete``,
    ``scan``.  For reads, ``version_ts`` is the commit timestamp of the
    version observed (0 = bulk-loaded initial data, None = no version
    visible).  For scans, ``key`` holds the (lo, hi) bounds and
    ``seen_keys`` the keys whose visible versions the scan returned.
    """

    kind: str
    table: str
    key: Any
    version_ts: int | None = None
    seen_keys: tuple = ()


@dataclass(slots=True)
class TxnRecord:
    """Everything recorded about one transaction."""

    txn_id: int
    begin_ts: int | None = None
    commit_ts: int | None = None
    status: str = "active"  # active | committed | aborted
    ops: list[OpRecord] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        return self.status == "committed"

    def reads(self) -> Iterable[OpRecord]:
        return (op for op in self.ops if op.kind == "read")

    def writes(self) -> Iterable[OpRecord]:
        return (op for op in self.ops if op.kind in ("write", "insert", "delete"))

    def scans(self) -> Iterable[OpRecord]:
        return (op for op in self.ops if op.kind == "scan")


class HistoryRecorder:
    """Accumulates per-transaction operation logs.

    Thread-safe: engine callbacks arrive from concurrent client threads
    outside any engine latch, so a private leaf lock guards the
    transaction map and the per-transaction op lists.
    """

    def __init__(self):
        self.transactions: dict[int, TxnRecord] = {}
        self._lock = threading.Lock()

    # Engine callbacks ---------------------------------------------------

    def on_begin(self, txn_id: int) -> None:
        with self._lock:
            self.transactions[txn_id] = TxnRecord(txn_id=txn_id)

    def on_snapshot(self, txn_id: int, read_ts: int) -> None:
        with self._lock:
            record = self.transactions.get(txn_id)
            if record is not None and record.begin_ts is None:
                record.begin_ts = read_ts

    def on_read(self, txn_id: int, table: str, key: Hashable, version_ts: int | None) -> None:
        self._append(txn_id, OpRecord("read", table, key, version_ts=version_ts))

    def on_write(self, txn_id: int, table: str, key: Hashable, kind: str = "write") -> None:
        self._append(txn_id, OpRecord(kind, table, key))

    def on_scan(
        self,
        txn_id: int,
        table: str,
        bounds: tuple,
        seen_keys: tuple,
        read_ts: int,
    ) -> None:
        self._append(
            txn_id,
            OpRecord("scan", table, bounds, version_ts=read_ts, seen_keys=seen_keys),
        )

    def on_commit(self, txn_id: int, commit_ts: int) -> None:
        with self._lock:
            record = self.transactions.get(txn_id)
            if record is not None:
                record.commit_ts = commit_ts
                record.status = "committed"

    def on_abort(self, txn_id: int) -> None:
        with self._lock:
            record = self.transactions.get(txn_id)
            if record is not None:
                record.status = "aborted"

    # Queries -------------------------------------------------------------

    def committed(self) -> list[TxnRecord]:
        return [record for record in self.transactions.values() if record.committed]

    def snapshot_records(self) -> list[TxnRecord]:
        """Consistent copies of every record (op lists copied too) —
        safe to serialise or relabel while the engine keeps running."""
        with self._lock:
            return [
                TxnRecord(
                    txn_id=record.txn_id,
                    begin_ts=record.begin_ts,
                    commit_ts=record.commit_ts,
                    status=record.status,
                    ops=list(record.ops),
                )
                for record in self.transactions.values()
            ]

    def __len__(self) -> int:
        return len(self.transactions)

    def _append(self, txn_id: int, op: OpRecord) -> None:
        with self._lock:
            record = self.transactions.get(txn_id)
            if record is None:
                record = self.transactions[txn_id] = TxnRecord(txn_id=txn_id)
            record.ops.append(op)
