"""An online serialization-graph-testing certifier (paper Section 2.7).

The paper dismisses SGT schedulers as impractical — the graph must retain
committed transactions, and a cycle check runs inside the innermost loop.
This implementation exists as the baseline those costs are measured
against (engine isolation level ``SGT``): it maintains the live conflict
graph, checks for a cycle on every recorded dependency, and answers
"would this edge close a cycle?".  Because it tests *actual* cycles it
aborts strictly less than Serializable SI (no false positives from the
two-flag approximation) at the cost of a graph walk per conflict.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from repro.obs.registry import CounterGroup


class SGTCertifier:
    """Incremental cycle-checking over the transaction conflict graph."""

    def __init__(self):
        self._edges: dict[Hashable, set[Hashable]] = defaultdict(set)
        self._reverse: dict[Hashable, set[Hashable]] = defaultdict(set)
        self._nodes: set[Hashable] = set()
        self.stats = CounterGroup({"edges": 0, "cycle_checks": 0, "cycles": 0})

    def register(self, txn_id: Hashable) -> None:
        self._nodes.add(txn_id)

    def add_dependency(self, src: Hashable, dst: Hashable) -> list[Hashable]:
        """Record src -> dst.  Returns the cycle (as a node list) the edge
        closes, or [] if the graph stays acyclic.

        The edge is installed either way; the caller is expected to abort
        one participant, then call :meth:`remove` for it, which breaks the
        cycle.
        """
        if src == dst:
            return []
        self.register(src)
        self.register(dst)
        self.stats["edges"] += 1
        path = self._find_path(dst, src)
        self._edges[src].add(dst)
        self._reverse[dst].add(src)
        if path:
            self.stats["cycles"] += 1
            return [src] + path
        return []

    def remove(self, txn_id: Hashable) -> None:
        """Drop a node (aborted, or committed and no longer needed)."""
        self._nodes.discard(txn_id)
        for dst in self._edges.pop(txn_id, ()):  # outgoing
            self._reverse[dst].discard(txn_id)
        for src in self._reverse.pop(txn_id, ()):  # incoming
            self._edges[src].discard(txn_id)

    def has_incoming(self, txn_id: Hashable) -> bool:
        """True if any recorded edge points at ``txn_id``.

        A committed node with incoming edges may still complete a cycle
        through its future outgoing (wr/ww) edges, so it cannot be
        retired yet — the paper's point that SGT must retain information
        about transactions "some of which are not even active anymore"
        (Section 2.7)."""
        return bool(self._reverse.get(txn_id))

    def would_cycle(self, src: Hashable, dst: Hashable) -> bool:
        """True if adding src -> dst would close a cycle (non-mutating)."""
        self.stats["cycle_checks"] += 1
        return bool(self._find_path(dst, src))

    def node_count(self) -> int:
        return len(self._nodes)

    def _find_path(self, start: Hashable, goal: Hashable) -> list[Hashable]:
        """DFS path start -> goal through recorded edges, or []."""
        self.stats["cycle_checks"] += 1
        if start == goal:
            return [start]
        stack = [(start, [start])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            for target in self._edges.get(node, ()):
                if target == goal:
                    return path + [target]
                if target not in visited:
                    visited.add(target)
                    stack.append((target, path + [target]))
        return []
