"""Length-prefixed JSON wire protocol shared by server and clients.

Framing: a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  JSON (stdlib) rather than msgpack keeps the
protocol dependency-free; the framing is identical, so a msgpack codec
could be swapped in behind :func:`encode_frame`/:func:`decode_frame`.

Requests are objects with an ``op`` field (``begin``/``get``/``put``/
``scan``/``commit``/``abort``/``prepare``/``commit_prepared``/...);
responses carry ``ok: true`` plus a result payload, or ``ok: false``
plus ``error`` (exception class name), ``reason`` (abort
classification, see :data:`repro.errors.ABORT_REASONS`), ``message``,
and — when server-side tracing is enabled — an ``explanation`` object
from :meth:`repro.engine.database.Database.explain_abort`.

Two optional request fields change dispatch, not framing:

* ``id`` — any JSON value; opts the frame into pipelining.  The reply
  echoes it and may arrive out of order with other id-tagged replies on
  the same connection.  The server keeps at most ``max_inbox`` of them
  in flight per connection (backpressure by not reading the socket).
* ``txn`` — a coordinator-assigned global transaction id; the frame is
  routed to a server-wide session for that distributed transaction
  rather than the connection's own session.  ``begin`` creates it,
  ``commit``/``abort``/``commit_prepared`` (or any abort error)
  retire it.  ``prepare`` returns the shard's rw-antidependency
  summary (``{"in", "out", "in_partner", "out_partner"}``) — the
  PREPARE vote of the cross-shard SSI protocol.

Keys and values must be JSON-representable; that is the wire format's
restriction, not the engine's.
"""

from __future__ import annotations

import asyncio
import json
import struct
import socket
from typing import Any

__all__ = [
    "MAX_FRAME",
    "FrameError",
    "encode_frame",
    "decode_frame",
    "read_frame_async",
    "read_frame_sock",
    "send_frame_sock",
]

_HEADER = struct.Struct(">I")

#: refuse frames above 16 MiB — a corrupt header otherwise asks the
#: server to allocate gigabytes.
MAX_FRAME = 16 * 1024 * 1024


class FrameError(Exception):
    """Malformed frame (oversized, truncated, or invalid JSON)."""


def encode_frame(message: dict[str, Any]) -> bytes:
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"invalid frame body: {error}") from error
    if not isinstance(message, dict):
        raise FrameError("frame body must be a JSON object")
    return message


async def read_frame_async(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; None on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError("connection closed mid-frame") from error
    return decode_frame(body)


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking-socket twin of :func:`read_frame_async`."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    body = _recv_exactly(sock, length)
    if body is None:
        raise FrameError("connection closed mid-frame")
    return decode_frame(body)


def send_frame_sock(sock: socket.socket, message: dict[str, Any]) -> None:
    sock.sendall(encode_frame(message))
