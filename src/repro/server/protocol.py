"""Length-prefixed wire protocol shared by server and clients.

Framing: a 4-byte big-endian unsigned length followed by that many
bytes of body.  The body encoding is a per-connection *codec*: JSON
(stdlib, always available, the default) or msgpack when the ``msgpack``
package happens to be installed on both ends.  The framing is
identical for every codec, so the choice is purely a handshake matter.

**Codec negotiation** — a connection starts in JSON.  A client that
wants another codec sends ``{"op": "hello", "codecs": [...]}`` as its
first frame, listing codecs in preference order.  The server picks the
first one it also supports (JSON is always supported, so negotiation
cannot fail), replies ``{"ok": true, "codec": "<picked>"}`` *in the
old codec*, and both sides switch for every subsequent frame.  A
client whose preferred codec is unavailable on either side degrades
transparently to JSON — no error, no retry.

**Batched frames** — ``{"op": "batch", "frames": [...]}`` carries
multiple requests in one frame (one syscall, one length prefix).
Every inner frame must carry an ``id`` (replies are per-inner-frame
and arrive individually, tagged by those ids, possibly out of order);
nested batches are rejected.  :class:`repro.client.link.PipelinedClient`
coalesces its send queue into batch frames automatically, which is how
the shard coordinator's same-shard PREPARE/COMMIT fan-out shares
round-trips.

Requests are objects with an ``op`` field (``begin``/``get``/``put``/
``scan``/``commit``/``abort``/``prepare``/``commit_prepared``/...);
responses carry ``ok: true`` plus a result payload, or ``ok: false``
plus ``error`` (exception class name), ``reason`` (abort
classification, see :data:`repro.errors.ABORT_REASONS`), ``message``,
and — when server-side tracing is enabled — an ``explanation`` object
from :meth:`repro.engine.database.Database.explain_abort`.

Two optional request fields change dispatch, not framing:

* ``id`` — any JSON value; opts the frame into pipelining.  The reply
  echoes it and may arrive out of order with other id-tagged replies on
  the same connection.  The server keeps at most ``max_inbox`` of them
  in flight per connection (backpressure by not reading the socket).
* ``txn`` — a coordinator-assigned global transaction id; the frame is
  routed to a server-wide session for that distributed transaction
  rather than the connection's own session.  ``begin`` creates it,
  ``commit``/``abort``/``commit_prepared`` (or any abort error)
  retire it.  ``prepare`` returns the shard's rw-antidependency
  summary (``{"in", "out", "in_partner", "out_partner"}``) — the
  PREPARE vote of the cross-shard SSI protocol.

Keys and values must be representable in the negotiated codec; that is
the wire format's restriction, not the engine's.
"""

from __future__ import annotations

import asyncio
import json
import struct
import socket
from typing import Any, Callable

__all__ = [
    "MAX_FRAME",
    "CODECS",
    "FrameError",
    "negotiate_codec",
    "encode_frame",
    "decode_frame",
    "read_frame_async",
    "read_frame_sock",
    "send_frame_sock",
]

_HEADER = struct.Struct(">I")

#: refuse frames above 16 MiB — a corrupt header otherwise asks the
#: server to allocate gigabytes.
MAX_FRAME = 16 * 1024 * 1024


class FrameError(Exception):
    """Malformed frame (oversized, truncated, or invalid body)."""


def _json_dumps(message: dict[str, Any]) -> bytes:
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def _json_loads(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"invalid frame body: {error}") from error


#: codec name -> (dumps, loads).  JSON is always present; msgpack joins
#: only when importable, so a container without it negotiates down to
#: JSON transparently.
CODECS: dict[str, tuple[Callable[[dict], bytes], Callable[[bytes], Any]]] = {
    "json": (_json_dumps, _json_loads),
}

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack as _msgpack  # type: ignore[import-not-found]

    def _msgpack_loads(body: bytes) -> Any:
        try:
            return _msgpack.unpackb(body, strict_map_key=False)
        except Exception as error:  # msgpack raises a zoo of types
            raise FrameError(f"invalid frame body: {error}") from error

    CODECS["msgpack"] = (
        lambda message: _msgpack.packb(message, use_bin_type=True),
        _msgpack_loads,
    )
except ImportError:
    pass


def negotiate_codec(offered: Any) -> str:
    """Server side of the hello handshake: the first offered codec both
    sides support, else ``"json"`` (never fails)."""
    if isinstance(offered, (list, tuple)):
        for name in offered:
            if isinstance(name, str) and name in CODECS:
                return name
    return "json"


def encode_frame(message: dict[str, Any], codec: str = "json") -> bytes:
    body = CODECS[codec][0](message)
    if len(body) > MAX_FRAME:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes, codec: str = "json") -> dict[str, Any]:
    message = CODECS[codec][1](body)
    if not isinstance(message, dict):
        raise FrameError("frame body must decode to an object")
    return message


async def read_frame_async(
    reader: asyncio.StreamReader, codec: str = "json"
) -> dict[str, Any] | None:
    """Read one frame; None on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise FrameError("connection closed mid-header") from error
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError("connection closed mid-frame") from error
    return decode_frame(body, codec)


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(sock: socket.socket, codec: str = "json") -> dict[str, Any] | None:
    """Blocking-socket twin of :func:`read_frame_async`."""
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FrameError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    body = _recv_exactly(sock, length)
    if body is None:
        raise FrameError("connection closed mid-frame")
    return decode_frame(body, codec)


def send_frame_sock(
    sock: socket.socket, message: dict[str, Any], codec: str = "json"
) -> None:
    sock.sendall(encode_frame(message, codec))
