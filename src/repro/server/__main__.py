"""``python -m repro.server`` — serve a fresh database over TCP.

Example (see TUTORIAL 15)::

    PYTHONPATH=src python -m repro.server --port 7401 --workers 8 --trace

Clients create tables and load rows over the wire (``create_table`` /
``load`` ops), so a bare server is immediately usable.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.server.core import ReproServer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="repro SSI wire-protocol server")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7401)
    parser.add_argument("--workers", type=int, default=8,
                        help="session scheduler worker threads")
    parser.add_argument("--trace", action="store_true",
                        help="enable event tracing (abort explanations on the wire)")
    parser.add_argument("--lock-timeout", type=float, default=None,
                        help="engine lock wait timeout in seconds")
    args = parser.parse_args(argv)

    db = Database(EngineConfig(lock_timeout=args.lock_timeout))
    if args.trace:
        db.enable_tracing()
    server = ReproServer(db, args.host, args.port, workers=args.workers)

    async def run() -> None:
        await server.start()
        print(f"repro server listening on {server.host}:{server.port} "
              f"({args.workers} workers)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
