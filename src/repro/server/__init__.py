"""Network frontend: the asyncio wire-protocol server.

See :mod:`repro.server.core` for the server, :mod:`repro.server.protocol`
for the framing, and :mod:`repro.client` for the matching clients.
Run one from the command line with ``python -m repro.server``.
"""

from repro.server.core import ReproServer
from repro.server.protocol import (
    FrameError,
    MAX_FRAME,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ReproServer",
    "FrameError",
    "MAX_FRAME",
    "decode_frame",
    "encode_frame",
]
