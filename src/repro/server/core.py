"""The asyncio wire-protocol server.

One TCP connection = one :class:`repro.session.Session`; the asyncio
event loop never blocks on the engine.  Each request frame is dispatched
as a session invocation whose ``on_done`` settles an asyncio future via
``loop.call_soon_threadsafe`` — the bridge between session completions
(which may fire on scheduler workers or, transitively, on lock-manager
resolver threads) and the event loop.  While a session is suspended on a
lock or safe-snapshot wait, neither an OS thread nor the event loop is
held: 1024 connections cost 1024 suspended sessions, not 1024 threads.

Bare frames keep the original request/response discipline (one
outstanding op per connection).  A frame carrying an ``"id"`` opts into
**pipelining**: the reply echoes the id and may arrive out of order;
at most ``max_inbox`` id-tagged frames are in flight per connection —
beyond that the server stops reading the socket, which is TCP
backpressure.  A frame carrying ``"txn": <gtid>`` is addressed to a
server-wide session keyed by that coordinator-assigned global id
instead of the connection's own session, so one pipelined connection
multiplexes many distributed transactions (the coordinator<->shard
links).  Operations:

======================  ====================================================
``begin``               ``isolation``/``read_only``/``deferrable`` -> txn id
``read``/``get``        point reads (``read`` errors on missing keys)
``read_for_update``     SELECT ... FOR UPDATE promotion primitive
``put``/``insert``/``delete``  writes (``put`` = blind upsert)
``scan``/``index_scan``/``index_lookup``  predicate reads
``commit``/``abort``    finish the open transaction
``prepare``             2PC phase one -> conflict summary (sharding)
``commit_prepared``     2PC phase two; ``import_in``/``import_out`` flags
``create_table``/``load``  schema/bulk-load admin (no open txn required)
``dump_history``/``audit``/``metrics``  shard-oracle and telemetry admin
``ping``                liveness + server info
``hello``               codec negotiation (``codecs`` preference list)
``batch``               many id-tagged frames in one read (``frames`` list)
======================  ====================================================

``hello`` and ``batch`` are connection-level frames handled by the read
loop itself, not session ops: hello switches the connection's codec
(reply sent in the old codec, everything after in the new one), and
batch unpacks into individual pipelined dispatches — each inner frame
must carry an ``id``, replies arrive one per inner frame, and the
``max_inbox`` backpressure bound applies to the unpacked total.

Abort responses carry the machine-readable ``reason`` and, when the
database has tracing enabled, the ``explanation`` payload built from
:meth:`Database.explain_abort` (pivot triple and rw-antidependency list
rendered JSON-safe, plus a local-id -> global-id table for the
coordinator to relabel).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.engine.database import Database
from repro.errors import TransactionAbortedError
from repro.server.protocol import (
    FrameError,
    encode_frame,
    negotiate_codec,
    read_frame_async,
)
from repro.session import Session, SessionScheduler

__all__ = ["ReproServer"]


class ReproServer:
    """Serve a :class:`Database` over TCP.

    ``workers`` sizes the session scheduler's thread pool when the
    server creates its own; pass an existing ``scheduler`` to share one.
    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).
    """

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 8,
        scheduler: SessionScheduler | None = None,
        max_inbox: int = 32,
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self._own_scheduler = scheduler is None
        self.scheduler = scheduler or SessionScheduler(db, workers=workers)
        self._server: asyncio.AbstractServer | None = None
        self._connections = 0
        #: bound on in-flight pipelined (id-tagged) frames per connection;
        #: once full the reader coroutine stops pulling from the socket.
        self.max_inbox = max_inbox
        #: distributed transactions: coordinator global id -> the
        #: server-wide session running that transaction's local part.
        #: Guarded by a plain leaf lock (touched from dispatch tasks).
        self._dtxns: dict[int, Session] = {}
        #: local txn id -> global id, kept for the server's lifetime so
        #: history dumps and abort explanations can be relabelled (shard
        #: processes are per-run; the map is bounded by run size).
        self._gtids: dict[int, int] = {}
        self._dtxn_lock = threading.Lock()
        db.metrics.register_gauge("server_connections", lambda: self._connections)
        db.metrics.register_gauge("server_dtxns", lambda: len(self._dtxns))

    # ------------------------------------------------------- lifecycle

    async def start(self, backlog: int = 2048) -> None:
        # A large accept backlog: the connection-count benchmark opens
        # ~1024 sockets at once and must not lose SYNs to a 100-deep
        # default queue.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=backlog
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        with self._dtxn_lock:
            leftovers = list(self._dtxns.values())
            self._dtxns.clear()
        for session in leftovers:
            await self._close_session(loop, session)
        if self._own_scheduler:
            await loop.run_in_executor(None, self.scheduler.shutdown)

    @property
    def connections(self) -> int:
        return self._connections

    # ------------------------------------------------------ connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = self.scheduler.session()
        self._connections += 1
        loop = asyncio.get_running_loop()
        inbox = asyncio.Semaphore(self.max_inbox)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        # Per-connection codec, mutable by the hello handshake.  A dict
        # so the respond closure and the read loop share one cell.
        conn = {"codec": "json"}

        async def respond(reply: dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode_frame(reply, conn["codec"]))
                await writer.drain()

        async def accept(frame: dict[str, Any]) -> None:
            """Route one request frame: sequential or pipelined."""
            frame_id = frame.get("id")
            if frame_id is None:
                # Sequential path: one outstanding op, unnumbered reply.
                await respond(await self._dispatch(loop, session, frame))
                return
            # Pipelined path: bounded in-flight dispatch tasks; the
            # semaphore acquired *here* stops the read loop (and so
            # the socket) when the inbox is full.
            await inbox.acquire()
            task = loop.create_task(
                self._pipelined(loop, session, frame, frame_id,
                                respond, inbox)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)

        try:
            while True:
                try:
                    frame = await read_frame_async(reader, conn["codec"])
                except FrameError as error:
                    await respond(
                        {"ok": False, "error": "FrameError", "message": str(error)}
                    )
                    break
                if frame is None:
                    break
                op = frame.get("op")
                if op == "hello":
                    # Codec negotiation: reply in the *old* codec (the
                    # client reads the verdict before switching), then
                    # every later frame uses the picked one.
                    picked = negotiate_codec(frame.get("codecs"))
                    reply: dict[str, Any] = {"ok": True, "codec": picked}
                    if frame.get("id") is not None:
                        reply["id"] = frame["id"]
                    await respond(reply)
                    conn["codec"] = picked
                    continue
                if op == "batch":
                    # One frame, many requests.  Every inner frame needs
                    # an id (replies are individual and tagged); nested
                    # batches fall out as unknown ops in _dispatch.
                    inner = frame.get("frames")
                    if (
                        not isinstance(inner, list)
                        or not all(isinstance(f, dict) for f in inner)
                        or any(f.get("id") is None for f in inner)
                    ):
                        await respond({
                            "ok": False, "error": "ProtocolError",
                            "message": "batch needs a frames list of "
                                       "id-tagged objects",
                        })
                        continue
                    for sub in inner:
                        await accept(sub)
                    continue
                await accept(frame)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections -= 1
            if tasks:
                await asyncio.gather(*tuple(tasks), return_exceptions=True)
            await self._close_session(loop, session)
            writer.close()
            try:
                # CancelledError included: at loop teardown the handler
                # task is cancelled mid-wait_closed; nothing follows this
                # await, and finishing normally instead of cancelled keeps
                # the stdlib stream done-callback from logging noise.
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _pipelined(
        self, loop, session: Session, frame: dict[str, Any],
        frame_id: Any, respond, inbox: asyncio.Semaphore,
    ) -> None:
        try:
            reply = dict(await self._dispatch(loop, session, frame))
            reply["id"] = frame_id
            try:
                await respond(reply)
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            inbox.release()

    async def _close_session(self, loop, session: Session) -> None:
        """Abort whatever the connection left open and retire the session.
        A session suspended on a wait is interrupted first so close()
        cannot queue behind a wait that might outlive the connection."""
        session.interrupt()
        future: asyncio.Future = loop.create_future()

        def on_done(result: Any, error: BaseException | None) -> None:
            loop.call_soon_threadsafe(_settle, future, result, error)

        session.close(on_done=on_done)
        try:
            # Shielded: a cancelled connection task (loop teardown) must
            # still wait out the close so the engine state is released.
            await asyncio.shield(future)
        except BaseException:  # noqa: BLE001 - best-effort cleanup
            pass

    # -------------------------------------------------------- dispatch

    async def _dispatch(
        self, loop, conn_session: Session, frame: dict[str, Any]
    ) -> dict[str, Any]:
        op = frame.get("op")
        if op == "ping":
            return {
                "ok": True, "server": "repro", "workers": self.scheduler.workers,
                "connections": self._connections,
            }
        if op in ("create_table", "load"):
            return self._admin(op, frame)
        if op == "dump_history":
            return self._dump_history()
        if op == "audit":
            return self._audit()
        if op == "metrics":
            return {"ok": True, "metrics": self.db.metrics.snapshot()}
        method = _OPS.get(op)
        if method is None:
            return {"ok": False, "error": "ProtocolError",
                    "message": f"unknown op {op!r}"}
        try:
            args, kwargs = method(frame)
        except KeyError as error:
            return {"ok": False, "error": "ProtocolError",
                    "message": f"op {op!r} missing field {error}"}
        # A "txn" field addresses a server-wide distributed-transaction
        # session keyed by the coordinator's global id instead of the
        # connection's own session.
        gtid = frame.get("txn")
        session = conn_session
        if gtid is not None:
            if op == "begin":
                session = self.scheduler.session()
                with self._dtxn_lock:
                    duplicate = gtid in self._dtxns
                    if not duplicate:
                        self._dtxns[gtid] = session
                if duplicate:
                    await self._close_session(loop, session)
                    return {"ok": False, "error": "ProtocolError",
                            "message": f"duplicate txn {gtid}"}
            else:
                with self._dtxn_lock:
                    session = self._dtxns.get(gtid)
                if session is None:
                    return {"ok": False, "error": "ProtocolError",
                            "message": f"unknown txn {gtid}"}
        future: asyncio.Future = loop.create_future()

        def on_done(result: Any, error: BaseException | None) -> None:
            loop.call_soon_threadsafe(_settle, future, result, error)

        txn = session.txn
        txn_id = txn.id if txn is not None else None
        getattr(session, op if op != "put" else "write")(
            *args, on_done=on_done, **kwargs
        )
        try:
            result = await future
        except BaseException as error:  # noqa: BLE001 - mapped onto the wire
            if gtid is not None and (
                op in ("commit", "abort", "commit_prepared")
                or isinstance(error, TransactionAbortedError)
            ):
                await self._retire_dtxn(loop, gtid)
            reply = self._error_reply(error, txn_id)
            if gtid is not None:
                reply["gtid"] = gtid
            return reply
        if gtid is not None and op in ("commit", "abort", "commit_prepared"):
            await self._retire_dtxn(loop, gtid)
        if op == "begin":
            if gtid is not None:
                with self._dtxn_lock:
                    self._gtids[result] = gtid
            return {"ok": True, "txn": result}
        if op == "prepare":
            return {"ok": True, "summary": result}
        if op == "scan":
            return {"ok": True, "rows": [[key, value] for key, value in result]}
        if op == "index_scan":
            return {"ok": True, "rows": [[key, pk] for key, pk in result]}
        if op == "index_lookup":
            return {"ok": True, "keys": list(result)}
        if op in ("commit", "abort", "put", "insert", "delete",
                  "commit_prepared"):
            return {"ok": True}
        return {"ok": True, "value": result}

    async def _retire_dtxn(self, loop, gtid: int) -> None:
        """A distributed transaction reached a terminal state: unregister
        and close its session (idempotent — races with stop() are fine)."""
        with self._dtxn_lock:
            session = self._dtxns.pop(gtid, None)
        if session is not None:
            await self._close_session(loop, session)

    def _admin(self, op: str, frame: dict[str, Any]) -> dict[str, Any]:
        try:
            if op == "create_table":
                self.db.create_table(frame["table"])
            else:
                self.db.load(frame["table"], [
                    (key, value) for key, value in frame["rows"]
                ])
        except KeyError as error:
            return {"ok": False, "error": "ProtocolError",
                    "message": f"op {op!r} missing field {error}"}
        except Exception as error:  # noqa: BLE001 - mapped onto the wire
            return {"ok": False, "error": type(error).__name__,
                    "message": str(error)}
        return {"ok": True}

    def _error_reply(
        self, error: BaseException, txn_id: int | None
    ) -> dict[str, Any]:
        reply: dict[str, Any] = {
            "ok": False,
            "error": type(error).__name__,
            "message": str(error),
        }
        if isinstance(error, TransactionAbortedError):
            reply["reason"] = error.reason
            failed_id = error.txn_id if error.txn_id is not None else txn_id
            if failed_id is not None:
                reply["txn"] = failed_id
                if self.db.trace is not None:
                    reply["explanation"] = self._explanation(failed_id)
        return reply

    def _explanation(self, txn_id: int) -> dict[str, Any] | None:
        try:
            explanation = self.db.explain_abort(txn_id)
        except Exception:  # noqa: BLE001 - diagnostics must not fail the reply
            return None
        payload: dict[str, Any] = {
            "reason": explanation.reason,
            "text": explanation.render(),
            "conflicts": [
                [reader, writer, ts]
                for reader, writer, ts in explanation.conflicts
            ],
        }
        mentioned: set[Any] = {txn_id}
        for reader, writer, _ts in explanation.conflicts:
            mentioned.add(reader)
            mentioned.add(writer)
        pivot = explanation.pivot
        if pivot is not None:
            payload["pivot"] = {
                "t_in": pivot.t_in, "pivot": pivot.pivot, "t_out": pivot.t_out,
            }
            mentioned.update((pivot.t_in, pivot.pivot, pivot.t_out))
        # Local-id -> global-id table for every transaction the payload
        # names, so a sharding coordinator can relabel the triple.
        with self._dtxn_lock:
            gtids = {
                str(local): self._gtids[local]
                for local in mentioned
                if isinstance(local, int) and local in self._gtids
            }
        if gtids:
            payload["gtids"] = gtids
        return payload

    # ----------------------------------------------------- shard admin

    def _dump_history(self) -> dict[str, Any]:
        """The recorded execution history, JSON-safe, each transaction
        labelled with its global id when it has one — the raw material
        for the coordinator's merged-MVSG serializability oracle."""
        history = self.db.history
        if history is None:
            return {"ok": False, "error": "ProtocolError",
                    "message": "history recording is disabled on this shard"}
        with self._dtxn_lock:
            gtids = dict(self._gtids)
        txns = []
        for record in history.snapshot_records():
            txns.append({
                "id": record.txn_id,
                "gtid": gtids.get(record.txn_id),
                "begin_ts": record.begin_ts,
                "commit_ts": record.commit_ts,
                "status": record.status,
                "ops": [
                    [op.kind, op.table,
                     list(op.key) if isinstance(op.key, tuple) else op.key,
                     op.version_ts, list(op.seen_keys)]
                    for op in record.ops
                ],
            })
        return {"ok": True, "txns": txns}

    def _audit(self) -> dict[str, Any]:
        """Residual engine state after quiesce — the sharded stress
        runner's clean-lock-table check, over the wire."""
        self.db.cleanup_suspended()
        lm = self.db.locks
        return {
            "ok": True,
            "granted": lm.table_size(),
            "owners": len(lm._by_owner),
            "waiters": len(lm._waiting),
            "suspended": len(self.db._suspended),
            "siread": lm.siread_lock_count(),
            "prepared": len(self.db._prepared),
        }


def _settle(future: asyncio.Future, result: Any,
            error: BaseException | None) -> None:
    if future.cancelled():
        return
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(result)


def _op_begin(frame):
    return (frame.get("isolation", "ssi"),), {
        "read_only": bool(frame.get("read_only", False)),
        "deferrable": bool(frame.get("deferrable", False)),
        # A gtid-addressed begin tags the engine transaction with the
        # coordinator's global id (rendered into conflict summaries).
        "global_id": frame.get("txn"),
    }


def _op_point(frame):
    return (frame["table"], frame["key"]), {}


def _op_get(frame):
    return (frame["table"], frame["key"], frame.get("default")), {}


def _op_value(frame):
    return (frame["table"], frame["key"], frame["value"]), {}


def _op_scan(frame):
    return (frame["table"], frame.get("lo"), frame.get("hi")), {}


def _op_index_scan(frame):
    return (frame["index"], frame.get("lo"), frame.get("hi")), {}


def _op_index_lookup(frame):
    return (frame["index"], frame["key"]), {}


def _op_bare(_frame):
    return (), {}


def _op_commit_prepared(frame):
    return (
        bool(frame.get("import_in", False)),
        bool(frame.get("import_out", False)),
    ), {}


#: op name -> frame parser returning (args, kwargs) for the Session method
_OPS = {
    "begin": _op_begin,
    "read": _op_point,
    "get": _op_get,
    "read_for_update": _op_point,
    "put": _op_value,
    "insert": _op_value,
    "delete": _op_point,
    "scan": _op_scan,
    "index_scan": _op_index_scan,
    "index_lookup": _op_index_lookup,
    "commit": _op_bare,
    "abort": _op_bare,
    "prepare": _op_bare,
    "commit_prepared": _op_commit_prepared,
}
