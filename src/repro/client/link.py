"""Pipelined client link: many outstanding ops on one connection.

The :class:`~repro.client.BlockingClient` is strictly request/response —
fine for one interactive session, too slow for a sharding coordinator
that must fan a PREPARE out to several shards and collect the votes in
one round trip.  :class:`PipelinedClient` tags every frame with an
``id`` (see :mod:`repro.server.protocol`), sends without waiting, and a
single receiver thread matches the (possibly out-of-order) replies back
to per-call slots.  Frames may also carry a ``txn`` global id, routing
them to the server-wide session for that distributed transaction, so
one link multiplexes every transaction the coordinator runs against a
shard.

The server bounds in-flight frames per connection (``max_inbox``) by
not reading the socket when full; the link inherits that backpressure
naturally — ``submit`` blocks in ``send`` once the kernel buffers fill.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any

from repro.server.protocol import read_frame_sock, send_frame_sock

__all__ = ["PipelinedClient", "PendingReply"]


class PendingReply:
    """One in-flight call: an event the receiver thread fires plus the
    raw reply frame.  ``wait()`` parks the caller; the link's ``result``
    maps error replies onto the engine's exception classes."""

    __slots__ = ("_event", "reply")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reply: dict[str, Any] | None = None

    def wait(self, timeout: float | None = None) -> dict[str, Any] | None:
        self._event.wait(timeout)
        return self.reply

    def settle(self, reply: dict[str, Any] | None) -> None:
        self.reply = reply
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()


class PipelinedClient:
    """A thread-safe pipelined connection to a :class:`ReproServer`.

    ``submit(frame) -> PendingReply`` sends immediately and returns a
    waitable slot; ``result(slot)`` blocks and re-raises server errors
    as the same exception classes :mod:`repro.client` raises (with
    ``.explanation`` attached); ``call(frame)`` is submit+result.
    Any thread may submit; one receiver thread drains the socket.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.create_connection((host, port))
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = threading.Lock()
        self._table_lock = threading.Lock()
        self._pending: dict[int, PendingReply] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._recv_error: BaseException | None = None
        self._receiver = threading.Thread(
            target=self._recv_loop, name=f"link-{host}:{port}", daemon=True
        )
        self._receiver.start()

    # --------------------------------------------------------- sending

    def submit(self, frame: dict[str, Any]) -> PendingReply:
        """Send ``frame`` with a fresh id; return its reply slot."""
        slot = PendingReply()
        message = dict(frame)
        message["id"] = next(self._ids)
        with self._table_lock:
            if self._closed:
                raise ConnectionError("pipelined link is closed")
            self._pending[message["id"]] = slot
        try:
            with self._send_lock:
                send_frame_sock(self._sock, message)
        except BaseException:
            with self._table_lock:
                self._pending.pop(message["id"], None)
            raise
        return slot

    def result(self, slot: PendingReply) -> dict[str, Any]:
        """Wait for a slot and return its reply, raising server errors
        as engine exception classes."""
        reply = slot.wait()
        if reply is None:
            raise self._recv_error or ConnectionError(
                "pipelined link closed before the reply arrived"
            )
        if not reply.get("ok"):
            from repro.client import _raise_reply

            _raise_reply(reply)
        return reply

    def call(self, frame: dict[str, Any]) -> dict[str, Any]:
        return self.result(self.submit(frame))

    def ping(self) -> dict[str, Any]:
        return self.call({"op": "ping"})

    # ------------------------------------------------------- receiving

    def _recv_loop(self) -> None:
        try:
            while True:
                reply = read_frame_sock(self._sock)
                if reply is None:
                    break
                slot = None
                with self._table_lock:
                    slot = self._pending.pop(reply.get("id"), None)
                if slot is not None:
                    slot.settle(reply)
        except (OSError, ValueError) as error:
            # ValueError: reads racing close() on some platforms.
            self._recv_error = error
        finally:
            with self._table_lock:
                self._closed = True
                stranded = list(self._pending.values())
                self._pending.clear()
            for slot in stranded:
                slot.settle(None)

    # --------------------------------------------------------- closing

    def close(self) -> None:
        with self._table_lock:
            if self._closed and not self._receiver.is_alive():
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._receiver.join(timeout=5.0)
        self._sock.close()

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
