"""Pipelined client link: many outstanding ops on one connection.

The :class:`~repro.client.BlockingClient` is strictly request/response —
fine for one interactive session, too slow for a sharding coordinator
that must fan a PREPARE out to several shards and collect the votes in
one round trip.  :class:`PipelinedClient` tags every frame with an
``id`` (see :mod:`repro.server.protocol`), sends without waiting, and a
single receiver thread matches the (possibly out-of-order) replies back
to per-call slots.  Frames may also carry a ``txn`` global id, routing
them to the server-wide session for that distributed transaction, so
one link multiplexes every transaction the coordinator runs against a
shard.

**Coalescing** — submissions land in a send queue; whichever submitter
finds no active sender becomes the sender and drains the queue,
wrapping everything queued behind it into one ``batch`` frame (one
syscall, one length prefix, one server read).  Under contention the
batching is automatic and unbounded by timers: frames batch exactly
when they would otherwise have queued behind a peer's ``send``.  A
lone frame goes out plain — the idle round-trip path pays nothing.
``submit_many`` queues a whole list atomically, so a sharding
coordinator's same-shard PREPARE/COMMIT fan-out shares one frame
deterministically.

**Codec** — pass ``codecs=("msgpack",)`` to request msgpack framing;
the constructor runs the ``hello`` handshake synchronously (before the
receiver thread starts) and degrades transparently to JSON when either
side lacks the codec (:data:`repro.server.protocol.CODECS`).

The server bounds in-flight frames per connection (``max_inbox``) by
not reading the socket when full; the link inherits that backpressure
naturally — the sender blocks in ``send`` once the kernel buffers fill.
"""

from __future__ import annotations

import itertools
import socket
import threading
from collections import deque
from typing import Any, Iterable, Sequence

from repro.server.protocol import (
    FrameError,
    read_frame_sock,
    send_frame_sock,
)

__all__ = ["PipelinedClient", "PendingReply"]

#: most messages one sender drain will pack into a single batch frame —
#: bounds frame size and the latency a queued frame can accrue behind
#: an enormous batch.
_MAX_BATCH = 128


class PendingReply:
    """One in-flight call: an event the receiver thread fires plus the
    raw reply frame.  ``wait()`` parks the caller; the link's ``result``
    maps error replies onto the engine's exception classes."""

    __slots__ = ("_event", "reply")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reply: dict[str, Any] | None = None

    def wait(self, timeout: float | None = None) -> dict[str, Any] | None:
        self._event.wait(timeout)
        return self.reply

    def settle(self, reply: dict[str, Any] | None) -> None:
        self.reply = reply
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()


class PipelinedClient:
    """A thread-safe pipelined connection to a :class:`ReproServer`.

    ``submit(frame) -> PendingReply`` queues for send and returns a
    waitable slot; ``result(slot)`` blocks and re-raises server errors
    as the same exception classes :mod:`repro.client` raises (with
    ``.explanation`` attached); ``call(frame)`` is submit+result;
    ``submit_many(frames)`` queues a list in one step (one batch frame
    when more than one).  Any thread may submit; one receiver thread
    drains the socket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        codecs: Sequence[str] | None = None,
    ) -> None:
        self._sock = socket.create_connection((host, port))
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._send_lock = threading.Lock()
        self._table_lock = threading.Lock()
        self._pending: dict[int, PendingReply] = {}
        self._sendq: deque[dict[str, Any]] = deque()
        self._sender_active = False
        self._ids = itertools.count(1)
        self._closed = False
        self._recv_error: BaseException | None = None
        self._codec = "json"
        #: send-side telemetry: how much the queue actually coalesced.
        self.stats = {"frames_sent": 0, "batches_sent": 0, "coalesced_ops": 0}
        if codecs:
            # Synchronous handshake on the bare socket — the receiver
            # thread is not running yet, so the reply is ours to read.
            send_frame_sock(self._sock, {"op": "hello", "codecs": list(codecs)})
            reply = read_frame_sock(self._sock)
            if reply is None:
                raise ConnectionError("connection closed during codec handshake")
            self._codec = reply.get("codec", "json")
        self._receiver = threading.Thread(
            target=self._recv_loop, name=f"link-{host}:{port}", daemon=True
        )
        self._receiver.start()

    @property
    def codec(self) -> str:
        """The negotiated frame codec (``"json"`` unless the handshake
        upgraded it)."""
        return self._codec

    # --------------------------------------------------------- sending

    def submit(self, frame: dict[str, Any]) -> PendingReply:
        """Queue ``frame`` for send with a fresh id; return its slot."""
        return self._enqueue([frame])[0]

    def submit_many(self, frames: Iterable[dict[str, Any]]) -> list[PendingReply]:
        """Queue several frames in one step — they share a batch frame
        (when more than one), so a fan-out of same-shard ops costs one
        wire frame.  Returns slots in argument order."""
        return self._enqueue(list(frames))

    def _enqueue(self, frames: list[dict[str, Any]]) -> list[PendingReply]:
        slots = []
        with self._table_lock:
            if self._closed:
                raise ConnectionError("pipelined link is closed")
            for frame in frames:
                message = dict(frame)
                message["id"] = next(self._ids)
                slot = PendingReply()
                self._pending[message["id"]] = slot
                self._sendq.append(message)
                slots.append(slot)
            if self._sender_active or not self._sendq:
                return slots
            self._sender_active = True
        # This thread is now the sender: drain until the queue is empty.
        # Frames submitted by other threads meanwhile ride its batches.
        self._drain_sendq()
        return slots

    def _drain_sendq(self) -> None:
        while True:
            with self._table_lock:
                if not self._sendq:
                    self._sender_active = False
                    return
                batch = []
                while self._sendq and len(batch) < _MAX_BATCH:
                    batch.append(self._sendq.popleft())
            if len(batch) == 1:
                message = batch[0]
            else:
                message = {"op": "batch", "frames": batch}
            try:
                with self._send_lock:
                    send_frame_sock(self._sock, message, self._codec)
            except BaseException as error:
                # The send failed: settle this batch's slots so their
                # waiters see the error, hand the sender role back, and
                # surface the failure to whoever was driving the drain.
                with self._table_lock:
                    self._sender_active = False
                    stranded = [
                        self._pending.pop(frame["id"], None) for frame in batch
                    ]
                self._recv_error = self._recv_error or error
                for slot in stranded:
                    if slot is not None:
                        slot.settle(None)
                raise
            self.stats["frames_sent"] += 1
            if len(batch) > 1:
                self.stats["batches_sent"] += 1
                self.stats["coalesced_ops"] += len(batch)

    def result(self, slot: PendingReply) -> dict[str, Any]:
        """Wait for a slot and return its reply, raising server errors
        as engine exception classes."""
        reply = slot.wait()
        if reply is None:
            raise self._recv_error or ConnectionError(
                "pipelined link closed before the reply arrived"
            )
        if not reply.get("ok"):
            from repro.client import _raise_reply

            _raise_reply(reply)
        return reply

    def call(self, frame: dict[str, Any]) -> dict[str, Any]:
        return self.result(self.submit(frame))

    def ping(self) -> dict[str, Any]:
        return self.call({"op": "ping"})

    # ------------------------------------------------------- receiving

    def _recv_loop(self) -> None:
        try:
            while True:
                reply = read_frame_sock(self._sock, self._codec)
                if reply is None:
                    break
                slot = None
                with self._table_lock:
                    slot = self._pending.pop(reply.get("id"), None)
                if slot is not None:
                    slot.settle(reply)
        except (OSError, ValueError, FrameError) as error:
            # ValueError: reads racing close() on some platforms.
            self._recv_error = error
        finally:
            with self._table_lock:
                self._closed = True
                stranded = list(self._pending.values())
                self._pending.clear()
            for slot in stranded:
                slot.settle(None)

    # --------------------------------------------------------- closing

    def close(self) -> None:
        with self._table_lock:
            if self._closed and not self._receiver.is_alive():
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._receiver.join(timeout=5.0)
        self._sock.close()

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
