"""Clients for the wire protocol: asyncio and blocking facades.

:class:`AsyncClient` rides an asyncio event loop (one coroutine per
connection; thousands of connections per loop — this is what the
connection-count benchmark drives).  :class:`BlockingClient` wraps a
plain socket for scripts, tests and the tutorial.

Both map error frames back onto the :mod:`repro.errors` hierarchy: an
abort travels as its exception class name + machine-readable reason and
is re-raised as the same class client-side, with the server's
``explanation`` payload (when tracing is enabled server-side) attached
as ``error.explanation``.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Hashable, Sequence

import repro.errors as _errors
from repro.errors import ReproError, TransactionAbortedError
from repro.server.protocol import (
    FrameError,
    encode_frame,
    read_frame_async,
    read_frame_sock,
    send_frame_sock,
)

__all__ = ["AsyncClient", "BlockingClient", "PipelinedClient", "ServerError"]


class ServerError(ReproError):
    """The server reported an error that maps to no known exception
    class (protocol violations, schema errors raised remotely...)."""

    def __init__(self, name: str, message: str):
        super().__init__(f"{name}: {message}")
        self.remote_error = name


def _raise_reply(reply: dict[str, Any]) -> None:
    name = reply.get("error", "ServerError")
    message = reply.get("message", "")
    cls = getattr(_errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        if issubclass(cls, TransactionAbortedError):
            error: ReproError = cls(message, txn_id=reply.get("txn"))
        else:
            try:
                error = cls(message)
            except TypeError:
                # Constructors with structured arguments (table, key...)
                # can't be rebuilt from a message alone; keep the class
                # identity and carry the server-rendered message.
                error = cls.__new__(cls)
                Exception.__init__(error, message)
    else:
        error = ServerError(name, message)
    error.explanation = reply.get("explanation")  # type: ignore[attr-defined]
    raise error


def _result(reply: dict[str, Any]) -> dict[str, Any]:
    if not reply.get("ok"):
        _raise_reply(reply)
    return reply


class AsyncClient:
    """One wire-protocol connection on the running event loop.

    Usage::

        client = await AsyncClient.connect("127.0.0.1", 7401)
        await client.begin("ssi")
        value = await client.get("accounts", "x")
        await client.put("accounts", "x", value + 1)
        await client.commit()
        await client.close()

    One outstanding request per connection (the protocol is
    request/response); concurrency comes from many connections.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._codec = "json"

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 7401,
                      codecs: Sequence[str] | None = None) -> "AsyncClient":
        """Open a connection; ``codecs`` lists preferred frame codecs in
        order (e.g. ``("msgpack",)``) — the server picks the first it
        supports, falling back to JSON transparently."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        if codecs:
            reply = await client._call({"op": "hello", "codecs": list(codecs)})
            client._codec = reply.get("codec", "json")
        return client

    @property
    def codec(self) -> str:
        return self._codec

    async def _call(self, frame: dict[str, Any]) -> dict[str, Any]:
        self._writer.write(encode_frame(frame, self._codec))
        await self._writer.drain()
        reply = await read_frame_async(self._reader, self._codec)
        if reply is None:
            raise FrameError("server closed the connection")
        return _result(reply)

    async def ping(self) -> dict[str, Any]:
        return await self._call({"op": "ping"})

    async def begin(self, isolation: str = "ssi", read_only: bool = False,
                    deferrable: bool = False) -> int:
        reply = await self._call({
            "op": "begin", "isolation": isolation,
            "read_only": read_only, "deferrable": deferrable,
        })
        return reply["txn"]

    async def read(self, table: str, key: Hashable) -> Any:
        return (await self._call({"op": "read", "table": table, "key": key}))["value"]

    async def get(self, table: str, key: Hashable, default: Any = None) -> Any:
        return (await self._call({
            "op": "get", "table": table, "key": key, "default": default,
        }))["value"]

    async def read_for_update(self, table: str, key: Hashable) -> Any:
        return (await self._call({
            "op": "read_for_update", "table": table, "key": key,
        }))["value"]

    async def put(self, table: str, key: Hashable, value: Any) -> None:
        await self._call({"op": "put", "table": table, "key": key, "value": value})

    async def insert(self, table: str, key: Hashable, value: Any) -> None:
        await self._call({"op": "insert", "table": table, "key": key, "value": value})

    async def delete(self, table: str, key: Hashable) -> None:
        await self._call({"op": "delete", "table": table, "key": key})

    async def scan(self, table: str, lo: Hashable | None = None,
                   hi: Hashable | None = None) -> list[tuple[Any, Any]]:
        reply = await self._call({"op": "scan", "table": table, "lo": lo, "hi": hi})
        return [(key, value) for key, value in reply["rows"]]

    async def index_scan(self, index: str, lo: Hashable | None = None,
                         hi: Hashable | None = None) -> list[tuple[Any, Any]]:
        reply = await self._call({
            "op": "index_scan", "index": index, "lo": lo, "hi": hi,
        })
        return [(key, pk) for key, pk in reply["rows"]]

    async def index_lookup(self, index: str, key: Hashable) -> list[Any]:
        return (await self._call({
            "op": "index_lookup", "index": index, "key": key,
        }))["keys"]

    async def commit(self) -> None:
        await self._call({"op": "commit"})

    async def abort(self) -> None:
        await self._call({"op": "abort"})

    async def create_table(self, table: str) -> None:
        await self._call({"op": "create_table", "table": table})

    async def load(self, table: str, rows) -> None:
        await self._call({
            "op": "load", "table": table,
            "rows": [[key, value] for key, value in rows],
        })

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class BlockingClient:
    """Plain-socket facade with the same surface as :class:`AsyncClient`
    (methods are synchronous).  Context-manager friendly::

        with BlockingClient.connect(port=7401) as client:
            client.begin("ssi")
            client.put("t", "k", 1)
            client.commit()
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._codec = "json"

    @classmethod
    def connect(cls, host: str = "127.0.0.1", port: int = 7401,
                timeout: float | None = 30.0,
                codecs: Sequence[str] | None = None) -> "BlockingClient":
        """Open a connection; ``codecs`` lists preferred frame codecs in
        order — the server picks the first it supports, falling back to
        JSON transparently."""
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        client = cls(sock)
        if codecs:
            reply = client._call({"op": "hello", "codecs": list(codecs)})
            client._codec = reply.get("codec", "json")
        return client

    @property
    def codec(self) -> str:
        return self._codec

    def _call(self, frame: dict[str, Any]) -> dict[str, Any]:
        send_frame_sock(self._sock, frame, self._codec)
        reply = read_frame_sock(self._sock, self._codec)
        if reply is None:
            raise FrameError("server closed the connection")
        return _result(reply)

    def ping(self) -> dict[str, Any]:
        return self._call({"op": "ping"})

    def begin(self, isolation: str = "ssi", read_only: bool = False,
              deferrable: bool = False) -> int:
        return self._call({
            "op": "begin", "isolation": isolation,
            "read_only": read_only, "deferrable": deferrable,
        })["txn"]

    def read(self, table: str, key: Hashable) -> Any:
        return self._call({"op": "read", "table": table, "key": key})["value"]

    def get(self, table: str, key: Hashable, default: Any = None) -> Any:
        return self._call({
            "op": "get", "table": table, "key": key, "default": default,
        })["value"]

    def read_for_update(self, table: str, key: Hashable) -> Any:
        return self._call({
            "op": "read_for_update", "table": table, "key": key,
        })["value"]

    def put(self, table: str, key: Hashable, value: Any) -> None:
        self._call({"op": "put", "table": table, "key": key, "value": value})

    def insert(self, table: str, key: Hashable, value: Any) -> None:
        self._call({"op": "insert", "table": table, "key": key, "value": value})

    def delete(self, table: str, key: Hashable) -> None:
        self._call({"op": "delete", "table": table, "key": key})

    def scan(self, table: str, lo: Hashable | None = None,
             hi: Hashable | None = None) -> list[tuple[Any, Any]]:
        reply = self._call({"op": "scan", "table": table, "lo": lo, "hi": hi})
        return [(key, value) for key, value in reply["rows"]]

    def index_scan(self, index: str, lo: Hashable | None = None,
                   hi: Hashable | None = None) -> list[tuple[Any, Any]]:
        reply = self._call({"op": "index_scan", "index": index, "lo": lo, "hi": hi})
        return [(key, pk) for key, pk in reply["rows"]]

    def index_lookup(self, index: str, key: Hashable) -> list[Any]:
        return self._call({"op": "index_lookup", "index": index, "key": key})["keys"]

    def commit(self) -> None:
        self._call({"op": "commit"})

    def abort(self) -> None:
        self._call({"op": "abort"})

    def create_table(self, table: str) -> None:
        self._call({"op": "create_table", "table": table})

    def load(self, table: str, rows) -> None:
        self._call({
            "op": "load", "table": table,
            "rows": [[key, value] for key, value in rows],
        })

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "BlockingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# Imported last: link.py resolves _raise_reply from this module.
from repro.client.link import PipelinedClient  # noqa: E402
