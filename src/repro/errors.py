"""Exception hierarchy for the repro transactional engine.

The error classes mirror the error returns that the paper's prototypes
added to Berkeley DB and InnoDB (Section 4.3 item 1 and Section 4.6):

* ``DB_SNAPSHOT_CONFLICT`` / ``DB_UPDATE_CONFLICT`` -> :class:`UpdateConflictError`
* ``DB_SNAPSHOT_UNSAFE`` / ``DB_UNSAFE_TRANSACTION`` -> :class:`UnsafeError`
* deadlock victim -> :class:`DeadlockError`

All abort-causing errors derive from :class:`TransactionAbortedError` so a
retry loop can catch one class; each carries ``reason`` — the machine
readable abort classification used by the benchmark harness when grouping
errors into the paper's "conflict" / "unsafe" / "deadlock" bars.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class TransactionError(ReproError):
    """Base class for errors related to transaction processing."""


class TransactionAbortedError(TransactionError):
    """The transaction was (or must be) rolled back.

    Attributes:
        reason: short machine-readable classification; one of the values in
            :data:`ABORT_REASONS`.
    """

    reason = "aborted"

    def __init__(self, message: str = "", *, txn_id: int | None = None):
        super().__init__(message or self.__class__.__doc__)
        self.txn_id = txn_id


class UpdateConflictError(TransactionAbortedError):
    """First-committer-wins violation: a concurrent transaction committed a
    newer version of an item this transaction wrote (``DB_UPDATE_CONFLICT``).
    """

    reason = "conflict"


class UnsafeError(TransactionAbortedError):
    """Serializable SI detected a potentially non-serializable execution —
    two consecutive rw-antidependencies (``DB_SNAPSHOT_UNSAFE``).
    """

    reason = "unsafe"


class DeadlockError(TransactionAbortedError):
    """The transaction was chosen as a deadlock victim."""

    reason = "deadlock"


class LockTimeoutError(TransactionAbortedError):
    """A lock wait exceeded the configured timeout (InnoDB's
    ``innodb_lock_wait_timeout`` behaviour)."""

    reason = "timeout"


class ConstraintError(TransactionAbortedError):
    """An application-level rollback, e.g. SmallBank overdraft rules.

    These are voluntary rollbacks, not concurrency-control aborts, and are
    counted separately by the benchmark harness.
    """

    reason = "constraint"


class TransactionStateError(TransactionError):
    """An operation was attempted on a finished (committed/aborted) txn."""


class KeyNotFoundError(ReproError):
    """Read of a key with no version visible in this snapshot."""

    def __init__(self, table: str, key: object):
        super().__init__(f"no visible version of {table}[{key!r}]")
        self.table = table
        self.key = key


class DuplicateKeyError(ReproError):
    """Insert of a key that is already visible in this snapshot."""

    def __init__(self, table: str, key: object):
        super().__init__(f"duplicate key {table}[{key!r}]")
        self.table = table
        self.key = key


class TableError(ReproError):
    """Unknown table, duplicate table creation, or similar schema errors."""


class LockWaitRequired(ReproError):
    """Internal control-flow signal: a lock request was enqueued.

    Engine operations raise this when they cannot proceed until a lock is
    granted.  Executors (the threaded wrapper or the discrete-event
    simulator) catch it, wait until ``request`` is granted, and re-invoke
    the operation; lock acquisition is idempotent so the retry is safe.
    This never escapes to user code.
    """

    def __init__(self, request):
        super().__init__(f"waiting for {request!r}")
        self.request = request


class SafeSnapshotWaitRequired(ReproError):
    """Internal control-flow signal: a deferrable begin() must wait.

    ``Database.begin(deferrable=True, wait=False)`` raises this when the
    candidate snapshot is not yet known to be safe.  ``txn`` already
    exists (registered, snapshot assigned and being watched by the
    ``SafeSnapshotMonitor``); ``completion`` fires on the verdict.  The
    executor suspends until then and re-drives the begin — a safe
    verdict completes it, an unsafe verdict (permanent for that
    snapshot) makes ``Database.resume_deferrable`` retake a snapshot and
    possibly raise this again.  Never escapes to user code.
    """

    def __init__(self, txn, completion):
        super().__init__(f"waiting for a safe snapshot for txn {txn.id}")
        self.txn = txn
        self.completion = completion


class GroupCommitWaitRequired(ReproError):
    """Internal control-flow signal: a commit joined a group and must
    wait for the batch leader's verdict.

    ``Database.commit(txn, wait=False)`` raises this when group commit
    is enabled and the transaction's commit ticket was enqueued behind
    an active batch leader.  ``completion`` fires once the leader has
    certified (or aborted) the whole group, flushed the WAL and
    finalized the member; the executor suspends until then and
    re-invokes the commit, which consumes the resolved ticket — raising
    the member's abort error if group certification chose it as a
    victim.  Never escapes to user code.
    """

    def __init__(self, txn, completion):
        super().__init__(f"waiting for the commit group of txn {txn.id}")
        self.txn = txn
        self.completion = completion


#: Every abort classification that the metrics pipeline understands.
ABORT_REASONS = ("conflict", "unsafe", "deadlock", "timeout", "constraint", "aborted")
