"""Setup shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools predates PEP 660 editable wheels
(pip then falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
