"""Scan ordering/limit options."""

import pytest

from repro import Database, EngineConfig
from repro.errors import LockWaitRequired

from tests.conftest import fill


@pytest.fixture
def db():
    database = Database(EngineConfig(record_history=True))
    fill(database, "t", {i: f"v{i}" for i in range(10)})
    return database


def test_reverse_scan(db):
    txn = db.begin()
    rows = txn.scan("t", 2, 6, reverse=True)
    assert [key for key, _ in rows] == [6, 5, 4, 3, 2]
    txn.commit()


def test_limit(db):
    txn = db.begin()
    assert [k for k, _ in txn.scan("t", limit=3)] == [0, 1, 2]
    assert [k for k, _ in txn.scan("t", reverse=True, limit=2)] == [9, 8]
    txn.commit()


def test_reverse_limit_sees_own_writes(db):
    txn = db.begin()
    txn.insert("t", 99, "new")
    assert txn.scan("t", reverse=True, limit=1) == [(99, "new")]
    txn.abort()


def test_limited_scan_still_locks_whole_range(db):
    """The predicate covers the full range even when the result is
    truncated, so phantom protection is unaffected."""
    scanner = db.begin("s2pl")
    scanner.scan("t", 0, 9, limit=1)
    inserter = db.begin("s2pl")
    with pytest.raises(LockWaitRequired):
        db.insert(inserter, "t", 7, "phantom")  # deep inside the range
    scanner.commit()
    inserter.abort()
