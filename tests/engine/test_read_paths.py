"""Read-path semantics: get/read/read_for_update nuances."""

import pytest

from repro import Database, EngineConfig, KeyNotFoundError, UpdateConflictError
from repro.errors import LockWaitRequired

from tests.conftest import fill


@pytest.fixture
def db():
    database = Database(EngineConfig(record_history=True))
    fill(database, "t", {1: "a", 2: "b"})
    return database


class TestPointReads:
    def test_read_own_delete_raises(self, db):
        txn = db.begin()
        txn.delete("t", 1)
        with pytest.raises(KeyNotFoundError):
            txn.read("t", 1)
        assert txn.get("t", 1, default="gone") == "gone"
        txn.abort()

    def test_get_does_not_create_anything(self, db):
        txn = db.begin()
        txn.get("t", 999)
        txn.commit()
        assert db.table("t").chain(999) is None

    def test_read_is_repeatable_within_snapshot(self, db):
        reader = db.begin("si")
        first = reader.read("t", 1)
        writer = db.begin("si")
        writer.write("t", 1, "changed")
        writer.commit()
        assert reader.read("t", 1) == first
        reader.commit()

    def test_reads_of_tombstoned_then_reinserted_key(self, db):
        t1 = db.begin("si")
        t1.delete("t", 1)
        t1.commit()
        t2 = db.begin("si")
        t2.insert("t", 1, "reborn")
        t2.commit()
        assert db.begin("si").read("t", 1) == "reborn"


class TestReadForUpdate:
    def test_missing_key_raises_after_locking(self, db):
        txn = db.begin()
        with pytest.raises(KeyNotFoundError):
            txn.read_for_update("t", 404)
        # the lock is held regardless — a later insert by others waits
        other = db.begin()
        with pytest.raises(LockWaitRequired):
            db.insert(other, "t", 404, "x")
        txn.abort()
        other.abort()

    def test_promotion_conflict_semantics(self, db):
        """Oracle-style SELECT FOR UPDATE: a locking read of an item with
        a newer version conflicts exactly like a write (Section 2.6.2)."""
        reader = db.begin("si")
        reader.read("t", 2)  # snapshot fixed
        writer = db.begin("si")
        writer.write("t", 1, "w")
        writer.commit()
        with pytest.raises(UpdateConflictError):
            reader.read_for_update("t", 1)
        assert reader.is_aborted

    def test_locking_read_blocks_other_writers(self, db):
        locker = db.begin("si")
        assert locker.read_for_update("t", 1) == "a"
        other = db.begin("si")
        with pytest.raises(LockWaitRequired):
            db.write(other, "t", 1, "x")
        locker.commit()
        other.abort()

    def test_read_for_update_sees_own_write(self, db):
        txn = db.begin()
        txn.write("t", 1, "mine")
        assert txn.read_for_update("t", 1) == "mine"
        txn.commit()


class TestSsiReadDetection:
    def test_read_of_absent_key_future_insert_detected(self, db):
        """Reading a key that doesn't exist and later gets created by a
        concurrent transaction is an anti-dependency (gap semantics)."""
        reader = db.begin("ssi")
        assert reader.get("t", 50) is None
        inserter = db.begin("ssi")
        marked_before = db.tracker.stats["marked"]
        inserter.insert("t", 50, "new")
        # the reader's record SIREAD on key 50 catches the insert
        assert db.tracker.stats["marked"] > marked_before
        inserter.commit()
        reader.commit()
