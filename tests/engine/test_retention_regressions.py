"""Regressions for two SIREAD-lifecycle bugs found in the hardening PR.

Both were seed-level soundness holes in code that predates this PR —
committed interleavings the MVSG oracle rejects:

* **Lost creator lookup.**  A committed *write-only* SSI transaction must
  stay findable (``find_transaction``) while any active snapshot
  predates its commit: the Fig 3.4 read-side check looks up the creator
  of a newer version by id, and popping the writer from the registry at
  finalize silently dropped that reader->writer rw edge.  The fix keeps
  such writers registry-findable (``_retired_writers``) — without
  suspending them, since there are no SIREADs to retain — until the
  cleanup horizon passes their commit.
* **Gap inheritance excluded the inserter.**  Splitting gap ``(a, c)``
  at a new key ``b`` inherits gap sentinels onto ``(a, b)`` and
  ``(b, c)``; the insert path excluded the inserting transaction from
  inheritance, so *its own* earlier scan lost phantom coverage on the
  new sub-gap and a scan-then-insert pair could both commit with
  mutually unseen inserts (write skew on a predicate).
"""

from __future__ import annotations

from repro.engine.config import EngineConfig
from repro.sgt.checker import check_serializable
from repro.sim.interleave import run_interleaving
from repro.sim.ops import Get, Scan, Write

from scripts.gen_cc_equivalence import SCENARIOS

from tests.conftest import fill

FACTORIES = dict(SCENARIOS)


class TestRetiredWriterFindability:
    def test_write_only_commit_stays_findable_until_horizon(self, db):
        """The writer is findable (not suspended) while an older snapshot
        is active, and retired by the first cleanup after it finishes."""
        fill(db, "t", {1: "a", 2: "b"})
        reader = db.begin("ssi")
        reader.read("t", 1)  # pins the cleanup horizon
        writer = db.begin("ssi")
        writer.write("t", 2, "w")
        writer.commit()
        assert db.find_transaction(writer.id) is writer
        assert writer.id not in db._suspended
        reader.commit()
        db.cleanup_suspended()
        assert db.find_transaction(writer.id) is None

    def test_interleaving_that_needed_the_creator_lookup(self):
        """Seeded interleaving (seed 15938 of the random-interleaving
        property) that committed a non-serializable history when the
        write-only creator was popped early: the reader of the old
        version could no longer report its rw edge, hiding the pivot."""

        def setup(db):
            db.create_table("t")
            db.load("t", ((i, f"init{i}") for i in range(7)))

        def t0():
            yield Get("t", 1)
            yield Get("t", 0)
            yield Write("t", 1, "T0.2")

        def t1():
            yield Get("t", 0)
            yield Get("t", 0)
            yield Get("t", 0)
            yield Get("t", 0)
            yield Scan("t", 0, 3)

        def t2():
            yield Write("t", 0, "T2.0")

        outcome = run_interleaving(
            setup,
            [t0, t1, t2],
            [2, 0, 2, 0, 1, 1, 0, 1, 1, 1, 1, 0],
            isolation="ssi",
            engine_config=EngineConfig(
                record_history=True, precise_conflicts=False
            ),
        )
        assert check_serializable(outcome.db.history).serializable
        assert outcome.statuses == {0: "unsafe", 1: "committed", 2: "committed"}


class TestGapInheritanceKeepsInserterCovered:
    def test_scan_insert_pair_cannot_both_commit(self):
        """phantom_pair order [1,0,1,1,0,0]: T1 scans, T0 scans, T1
        inserts 6 and commits, T0 inserts 5 and commits.  With the
        inserter excluded from its own gap inheritance both committed;
        one must die."""
        for level in ("ssi", "sgt"):
            setup, programs, _counts = FACTORIES["phantom_pair"]()
            outcome = run_interleaving(
                setup,
                programs,
                [1, 0, 1, 1, 0, 0],
                isolation=level,
                engine_config=EngineConfig(record_history=True),
            )
            assert check_serializable(outcome.db.history).serializable, level
            assert outcome.statuses == {0: "unsafe", 1: "committed"}, level
