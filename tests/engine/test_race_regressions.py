"""Regression tests for review-found races in the fine-grained latching PR.

Three distinct windows, each made deterministic here:

* the scan materialise->lock window: a writer whose whole lock lifetime
  (acquire, commit, finalize-release) fits between ``scan_chains`` and
  the batch read-lock acquire used to be invisible to phantom detection;
* the ``LockRequest`` subscribe-vs-resolve race: an unsynchronised
  check-then-append could land a waiter's callback on the already
  swapped-out list, hanging the client thread forever;
* the engine-side wait loop now also terminates on a resolved request
  even if the wakeup event were somehow lost.
"""

from __future__ import annotations

import threading

import pytest

from repro.locking.manager import LockRequest, LockMode, RequestState

from tests.conftest import fill


def _inject_committed_insert(db, table, level, key, value, writer_reads=None):
    """Patch the table's materialisation entry points — ``scan_chains``
    (the per-row path) *and* ``scan_chunks`` (the chunked kernel) — so
    the *first* call materialises the key set, then runs a complete
    writer lifecycle (begin, optional reads, insert, commit, finalize —
    every lock acquired *and released*) before returning the now-stale
    list.  Later calls see the real tree.  Returns the writer
    transactions list (filled on trigger)."""
    real_chains = table.scan_chains
    real_chunks = table.scan_chunks
    state = {"fired": False}
    writers = []

    def fire():
        if not state["fired"]:
            state["fired"] = True
            writer = db.begin(level)
            for read_key in writer_reads or ():
                db.read(writer, table.name, read_key)
            db.insert(writer, table.name, key, value)
            db.commit(writer)  # prepare + finalize: all locks released
            writers.append(writer)

    def patched_chains(lo, hi):
        stale = real_chains(lo, hi)
        fire()
        return stale

    def patched_chunks(lo, hi, chunk_size=None):
        stale = list(real_chunks(lo, hi, chunk_size))
        fire()
        return iter(stale)

    table.scan_chains = patched_chains
    table.scan_chunks = patched_chunks
    return writers


@pytest.fixture(params=[True, False], ids=["kernel", "per_row"])
def scan_kernel(request, db):
    db.config.scan_kernel = request.param
    return request.param


class TestScanMaterializeWindow:
    def test_s2pl_scan_sees_insert_committed_in_window(self, db, scan_kernel):
        """S2PL reads current state: a row committed inside the
        materialise->lock window must appear in the scan result."""
        fill(db, "t", {1: "a", 5: "b"})
        table = db.table("t")
        scanner = db.begin("s2pl")
        _inject_committed_insert(db, table, "s2pl", 3, "x")
        rows = db.scan(scanner, "t", 1, 5)
        assert rows == [(1, "a"), (3, "x"), (5, "b")]
        # The relock round covered the fresh key with read locks.
        assert db.locks.holds(scanner, db._rec_resource("t", 3), LockMode.SHARED)
        scanner.commit()

    def test_ssi_scan_marks_rw_edge_for_window_insert(self, db, scan_kernel):
        """SSI: the scanner's snapshot ignores the in-window committed
        insert, but the reader->writer rw-antidependency must still be
        recorded via the newer-version check on the re-materialised
        chain (Fig 3.4 lines 8-9)."""
        fill(db, "t", {1: "a", 5: "b"})
        table = db.table("t")
        scanner = db.begin("ssi")
        db.read(scanner, "t", 1)  # pin the snapshot before the writer runs
        # The writer reads too, so its record is suspended (findable)
        # after finalize rather than dropped.
        writers = _inject_committed_insert(
            db, table, "ssi", 3, "x", writer_reads=[5]
        )
        rows = db.scan(scanner, "t", 1, 5)
        assert rows == [(1, "a"), (5, "b")]  # snapshot: phantom invisible
        (writer,) = writers
        assert scanner.out_conflict, "reader->writer rw edge was lost"
        assert writer.in_conflict
        db.abort(scanner)

    def test_ssi_page_path_marks_rw_edge_for_window_insert(self, db):
        """The page-granularity scan path owes the same window guarantee:
        with the threshold forced to 0 every SSI scan covers leaf pages
        up front, and the in-window committed insert must still produce
        the reader->writer rw edge (keyset re-probe -> re-materialise ->
        newer-version check)."""
        db.config.scan_page_lock_threshold = 0
        fill(db, "t", {1: "a", 5: "b"})
        table = db.table("t")
        scanner = db.begin("ssi")
        db.read(scanner, "t", 1)
        writers = _inject_committed_insert(
            db, table, "ssi", 3, "x", writer_reads=[5]
        )
        rows = db.scan(scanner, "t", 1, 5)
        assert rows == [(1, "a"), (5, "b")]
        (writer,) = writers
        assert scanner.out_conflict, "reader->writer rw edge was lost"
        assert writer.in_conflict
        db.abort(scanner)


class TestLockRequestResolveRace:
    class _Owner:
        def __init__(self, owner_id):
            self.id = owner_id

    def test_subscribe_after_resolution_fires_immediately(self):
        request = LockRequest(self._Owner(1), ("t", 1), LockMode.SHARED)
        request._resolve(RequestState.GRANTED)
        fired = []
        request.on_resolve(fired.append)
        assert fired == [request]

    def test_subscribe_before_resolution_fires_once(self):
        request = LockRequest(self._Owner(1), ("t", 1), LockMode.SHARED)
        fired = []
        request.on_resolve(fired.append)
        request._resolve(RequestState.DENIED, None)
        assert fired == [request]

    def test_concurrent_subscribe_and_resolve_never_drops_callback(self):
        """Hammer the subscribe/resolve interleaving: whichever side wins,
        the callback must fire exactly once (the original unsynchronised
        check-then-append could drop it, hanging the waiter)."""
        for i in range(500):
            request = LockRequest(self._Owner(i), ("t", i), LockMode.SHARED)
            fired = []
            barrier = threading.Barrier(2)

            def subscribe():
                barrier.wait()
                request.on_resolve(fired.append)

            def resolve():
                barrier.wait()
                request._resolve(RequestState.GRANTED)

            threads = [
                threading.Thread(target=subscribe),
                threading.Thread(target=resolve),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert fired == [request]


class TestCancelVsResolveRace:
    """``cancel_request`` racing a grant must settle on exactly one
    terminal state — through the full Database API, where the loser of
    the race used to double-resolve and emit a spurious deny trace."""

    def test_timeout_cancel_racing_commit_grant(self):
        from repro.engine.config import EngineConfig
        from repro.engine.database import Database
        from repro.errors import TransactionAbortedError
        from repro.locking.manager import record_resource

        for i in range(25):
            db = Database(EngineConfig())
            fill(db, "t", {"k": 0})
            holder = db.begin("s2pl")
            holder.read_for_update("t", "k")
            waiter = db.begin("s2pl")
            result = db.locks.acquire_nowait(
                waiter, record_resource("t", "k"), LockMode.SHARED)
            request = result.request
            fired = []
            request.on_resolve(lambda r: fired.append(r.state))
            barrier = threading.Barrier(2)

            def cancel():
                barrier.wait()
                db.cancel_lock_request(request)

            def grant():
                barrier.wait()
                holder.commit()

            threads = [threading.Thread(target=cancel),
                       threading.Thread(target=grant)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(fired) == 1, "exactly one terminal state"
            assert fired == [request.state]
            if request.state is RequestState.DENIED:
                # the timeout won: the waiter is doomed and aborts cleanly
                assert waiter.doom_error is not None
                with pytest.raises(TransactionAbortedError):
                    waiter.read("t", "k")
            else:
                assert waiter.doom_error is None
                waiter.commit()
            db.cleanup_suspended()
            assert db.locks.table_size() == 0
            assert len(db.locks._waiting) == 0


class TestRetainAllReadsFastPath:
    def test_pure_siread_owner_is_retained(self, db):
        fill(db, "t", {1: "a"})
        reader = db.begin("ssi")
        assert db.read(reader, "t", 1) == "a"
        assert db.locks.retain_all_reads(reader) is True
        assert db.locks.holds_any_siread(reader)

    def test_shared_reader_takes_full_release_path(self, db):
        fill(db, "t", {1: "a"})
        reader = db.begin("s2pl")
        assert db.read(reader, "t", 1) == "a"
        assert db.locks.retain_all_reads(reader) is False
        reader.commit()
