"""Production SSI hardening tests (PR 6).

Four groups:

* **SIREAD escalation** — a tiny ``siread_budget`` forces record
  sentinels to coarser granularity.  Escalation must only ever *add*
  rw-antidependency edges (false-positive aborts), never lose one, and a
  budget large enough never to trip must be behaviourally invisible.
* **Safe snapshots** — a declared read-only transaction's snapshot
  becomes *safe* once no concurrent read/write transaction can complete
  a dangerous structure with it (Ports & Grittner §2.4); at that point
  its SIREADs drop immediately and it retains nothing at commit.
* **Deferrable read-only transactions** — ``begin(deferrable=True)``
  blocks for a safe snapshot and then runs with zero SIREAD footprint.
* **Lock-wait regression** — a resolved lock request wakes its waiter
  through the event alone; the engine must not fall back to timeout
  polling when no deadline or periodic deadlock sweep needs one.
"""

from __future__ import annotations

import threading

import pytest

from repro.engine.config import DeadlockMode, EngineConfig
from repro.engine.database import Database
from repro.errors import TransactionAbortedError, TransactionStateError
from repro.sgt.checker import check_serializable

from tests.conftest import commit_outcomes, fill


def bounded_db(budget, min_group=2):
    return Database(
        EngineConfig(
            record_history=True,
            siread_budget=budget,
            siread_escalation_min_group=min_group,
        )
    )


class TestSireadEscalation:
    def test_budget_trips_and_coarse_lock_installed(self):
        """Three record SIREADs against a budget of two must escalate;
        the owner ends up holding a coarse sentinel, and re-reads under
        the coarse cover add no fine locks back."""
        db = bounded_db(2, min_group=99)  # page tier disabled: table only
        fill(db, "t", {i: i for i in range(10)})
        t1 = db.begin("ssi")
        for key in (0, 1, 2):
            t1.read("t", key)
        assert db.locks.escalated_lock_count() >= 1
        assert t1.coarse_sireads
        size_after = db.locks.table_size()
        assert size_after <= 2
        # Covered re-reads: the table sentinel already protects them.
        t1.read("t", 5)
        t1.read("t", 8)
        assert db.locks.table_size() == size_after
        t1.commit()

    def test_escalated_table_detects_edge_superset(self):
        """After table escalation, a write to a key the reader never
        touched still raises the (false-positive) rw edge — so a cycle
        built from one real and one escalated edge aborts a transaction
        that an unbounded engine would commit.  The committed subset
        stays serializable either way: escalation adds edges, never
        hides one."""

        def run(budget):
            db = (
                bounded_db(budget, min_group=99)
                if budget is not None
                else Database(EngineConfig(record_history=True))
            )
            fill(db, "t", {i: i for i in range(10)})
            t1 = db.begin("ssi")
            t2 = db.begin("ssi")
            outcomes = []
            try:
                for key in (0, 1, 2):
                    t1.read("t", key)  # trips the budget: table SIREAD
                t2.write("t", 7, "w")  # unread key: edge only via coarse
                t2.read("t", 9)
                t1.write("t", 9, "x")  # real edge t2 -rw-> t1
            except TransactionAbortedError as error:
                outcomes.append(error.reason)
            outcomes.extend(commit_outcomes(t1, t2))
            assert check_serializable(db.history).serializable
            return outcomes

        unbounded = run(None)
        assert unbounded.count("commit") == 2  # only the real edge exists
        bounded = run(2)
        assert "unsafe" in bounded
        assert bounded.count("commit") <= 1

    def test_huge_budget_is_behaviourally_invisible(self):
        """A budget the workload never reaches must not change outcomes
        or ever install a coarse lock."""

        def run(budget):
            db = (
                Database(
                    EngineConfig(record_history=True, siread_budget=budget)
                )
                if budget is not None
                else Database(EngineConfig(record_history=True))
            )
            fill(db, "t", {i: i for i in range(10)})
            t1 = db.begin("ssi")
            t2 = db.begin("ssi")
            outcomes = []
            try:
                for key in (0, 1, 2):
                    t1.read("t", key)
                t2.write("t", 7, "w")
                t2.read("t", 9)
                t1.write("t", 9, "x")
            except TransactionAbortedError as error:
                outcomes.append(error.reason)
            outcomes.extend(commit_outcomes(t1, t2))
            return outcomes, db.locks.escalated_lock_count()

        huge, escalated = run(10**6)
        unbounded, _ = run(None)
        assert huge == unbounded
        assert escalated == 0


class TestSafeSnapshots:
    def test_quiescent_begin_is_immediately_safe(self, db):
        """With no concurrent read/write transaction there is nothing to
        watch: the snapshot is safe at begin and reads take no SIREADs."""
        fill(db, "t", {1: "a", 2: "b"})
        ro = db.begin("ssi", read_only=True)
        # The default config defers the snapshot to the first read; the
        # safety verdict arrives with it.
        assert ro.read("t", 1) == "a"
        assert ro.snapshot_safe is True
        assert db.locks.siread_lock_count() == 0
        ro.commit()
        stats = db.metrics.snapshot()["counters"]["safe_snapshots"]
        assert stats["safe_immediate"] >= 1

    def test_watched_commit_drains_to_safe_and_drops_sireads(self, db):
        """A read-only snapshot watching one harmless writer becomes safe
        the moment that writer commits without an outgoing rw edge — and
        its already-taken SIREADs drop on the spot."""
        fill(db, "t", {1: "a", 2: "b", 3: "c"})
        writer = db.begin("ssi")
        writer.read("t", 3)
        ro = db.begin("ssi", read_only=True)
        ro.read("t", 1)  # first read: snapshot assigned, monitor registers
        assert ro.snapshot_safe is False
        assert db.locks.siread_lock_count() >= 1
        writer.write("t", 3, "w")
        writer.commit()  # no out-conflict: the watch set drains
        assert ro.snapshot_safe is True
        # ro's sentinels dropped immediately; the writer's own retained
        # SIREAD (it read key 3) is the only one allowed to remain.
        assert db.locks.siread_lock_count() <= 1
        before = db.locks.table_size()
        ro.read("t", 2)  # safe reads are lock-free
        assert db.locks.table_size() == before
        ro.commit()
        stats = db.metrics.snapshot()["counters"]["safe_snapshots"]
        assert stats["safe"] >= 1

    def test_dangerous_commit_marks_snapshot_unsafe(self, db):
        """A watched pivot committing with an out-edge to a transaction
        that committed before the read-only snapshot completes a
        dangerous structure the snapshot can still join: the verdict is
        permanently unsafe and SIREAD retention stays on."""
        fill(db, "t", {"x": 0, "y": 0, "z": 0})
        t_out = db.begin("ssi")
        pivot = db.begin("ssi")
        pivot.read("t", "x")
        t_out.write("t", "x", 1)
        t_out.commit()  # pivot -rw-> t_out, t_out committed early
        ro = db.begin("ssi", read_only=True)
        ro.read("t", "y")  # snapshot assigned here; pivot is watched
        assert ro.snapshot_safe is False
        pivot.write("t", "z", 1)
        pivot.commit()  # out-edge to old committed t_out: dangerous
        assert ro.snapshot_safe is False
        assert db.locks.siread_lock_count() >= 1  # retention still on
        ro.commit()
        stats = db.metrics.snapshot()["counters"]["safe_snapshots"]
        assert stats["unsafe"] >= 1

    def test_read_only_declaration_rejects_mutations(self, db):
        fill(db, "t", {1: "a"})
        ro = db.begin("ssi", read_only=True)
        with pytest.raises(TransactionStateError):
            ro.write("t", 1, "x")
        with pytest.raises(TransactionStateError):
            ro.insert("t", 9, "x")
        with pytest.raises(TransactionStateError):
            ro.delete("t", 1)
        with pytest.raises(TransactionStateError):
            ro.read_for_update("t", 1)
        assert ro.read("t", 1) == "a"  # still a usable reader
        ro.commit()


class TestDeferrable:
    def test_deferrable_on_quiescent_engine_runs_lock_free(self, db):
        fill(db, "t", {i: i for i in range(5)})
        ro = db.begin("ssi", deferrable=True)
        assert ro.read_only is True
        assert ro.snapshot_safe is True
        rows = dict(ro.scan("t"))
        assert rows == {i: i for i in range(5)}
        assert db.locks.siread_lock_count() == 0
        ro.commit()
        # Zero retention: nothing suspended, nothing kept findable.
        assert not db._suspended
        assert db.find_transaction(ro.id) is None

    def test_deferrable_blocks_until_safe(self, db):
        """begin(deferrable=True) with a concurrent writer must wait for
        that writer to finish, then return a safe snapshot."""
        fill(db, "t", {1: "a"})
        writer = db.begin("ssi")
        writer.read("t", 1)
        started = threading.Event()
        box = {}

        def deferred_begin():
            started.set()
            box["txn"] = db.begin("ssi", deferrable=True)

        thread = threading.Thread(target=deferred_begin)
        thread.start()
        started.wait(timeout=5)
        thread.join(timeout=0.2)
        assert thread.is_alive()  # still parked on the safe-snapshot wait
        writer.write("t", 1, "w")
        writer.commit()
        thread.join(timeout=5)
        assert not thread.is_alive()
        ro = box["txn"]
        assert ro.snapshot_safe is True
        # Safe need not mean fresh: the snapshot predates the harmless
        # commit, it just provably cannot join a dangerous structure.
        assert ro.read("t", 1) == "a"
        assert db.locks.siread_lock_count() <= 1  # writer's retained read
        ro.commit()

    def test_deferrable_under_non_certifying_level_is_trivial(self, db):
        """Plain SI retains nothing, so every snapshot is trivially safe
        and deferrable must not block."""
        fill(db, "t", {1: "a"})
        writer = db.begin("si")
        writer.read("t", 1)
        ro = db.begin("si", deferrable=True)  # must not wait on `writer`
        assert ro.read("t", 1) == "a"
        ro.commit()
        writer.commit()


class TestLockWaitWakeup:
    def test_resolved_request_wakes_without_polling(self, db, monkeypatch):
        """Satellite regression: with no lock timeout and immediate
        deadlock detection the blocked side must sleep on the event
        alone — zero poll_waiters fallback calls."""
        assert db.needs_wait_polling is False
        polls = []
        real_poll = db.poll_waiters
        monkeypatch.setattr(
            db, "poll_waiters", lambda: polls.append(1) or real_poll()
        )
        fill(db, "t", {1: "a"})
        holder = db.begin("s2pl")
        holder.write("t", 1, "h")
        blocked_value = {}
        entered = threading.Event()

        def reader():
            txn = db.begin("s2pl")
            entered.set()
            blocked_value["v"] = txn.read("t", 1)  # blocks on holder's X
            txn.commit()

        thread = threading.Thread(target=reader)
        thread.start()
        entered.wait(timeout=5)
        # Give the reader time to reach (and park in) the lock wait.
        thread.join(timeout=0.2)
        holder.commit()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert blocked_value["v"] == "h"
        assert polls == []

    def test_periodic_deadlock_mode_still_polls(self):
        """PERIODIC detection has no lock-wait graph to resolve waits
        eagerly, so the poll fallback must stay on."""
        db = Database(EngineConfig(deadlock_mode=DeadlockMode.PERIODIC))
        assert db.needs_wait_polling is True
