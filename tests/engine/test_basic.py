"""Engine basics: schema, CRUD, transaction lifecycle, state errors."""

import pytest

from repro import (
    Database,
    DuplicateKeyError,
    EngineConfig,
    IsolationLevel,
    KeyNotFoundError,
)
from repro.errors import TableError, TransactionStateError

from tests.conftest import fill


class TestSchema:
    def test_create_and_duplicate_table(self, db):
        db.create_table("t")
        with pytest.raises(TableError):
            db.create_table("t")

    def test_unknown_table(self, db):
        txn = db.begin()
        with pytest.raises(TableError):
            txn.read("missing", 1)

    def test_load_bulk_visible(self, db):
        fill(db, "t", {1: "a", 2: "b"})
        txn = db.begin()
        assert txn.read("t", 1) == "a"
        assert txn.read("t", 2) == "b"
        txn.commit()


class TestCrud:
    @pytest.mark.parametrize("level", ["si", "ssi", "s2pl", "sgt"])
    def test_write_read_roundtrip(self, db, level):
        db.create_table("t")
        txn = db.begin(level)
        txn.write("t", "k", 123)
        assert txn.read("t", "k") == 123  # sees own write
        txn.commit()
        check = db.begin(level)
        assert check.read("t", "k") == 123
        check.commit()

    def test_read_missing_raises(self, db):
        db.create_table("t")
        txn = db.begin()
        with pytest.raises(KeyNotFoundError):
            txn.read("t", "nope")
        assert txn.get("t", "nope", default=7) == 7
        txn.commit()

    def test_insert_then_duplicate(self, db):
        db.create_table("t")
        txn = db.begin()
        txn.insert("t", 1, "x")
        with pytest.raises(DuplicateKeyError):
            txn.insert("t", 1, "y")
        txn.commit()
        txn2 = db.begin()
        with pytest.raises(DuplicateKeyError):
            txn2.insert("t", 1, "z")
        txn2.abort()

    def test_delete_then_read_absent(self, db):
        fill(db, "t", {1: "a"})
        txn = db.begin()
        txn.delete("t", 1)
        assert txn.get("t", 1) is None  # own delete visible
        txn.commit()
        txn2 = db.begin()
        assert txn2.get("t", 1) is None
        txn2.commit()

    def test_delete_missing_raises(self, db):
        db.create_table("t")
        txn = db.begin()
        with pytest.raises(KeyNotFoundError):
            txn.delete("t", 1)

    def test_reinsert_after_delete(self, db):
        fill(db, "t", {1: "a"})
        txn = db.begin()
        txn.delete("t", 1)
        txn.commit()
        txn2 = db.begin()
        txn2.insert("t", 1, "b")  # tombstone allows re-insert
        txn2.commit()
        assert db.begin().read("t", 1) == "b"

    def test_scan_ordered_with_own_writes_overlaid(self, db):
        fill(db, "t", {1: "a", 3: "c", 5: "e"})
        txn = db.begin()
        txn.insert("t", 2, "b")
        txn.delete("t", 3)
        txn.write("t", 5, "E")
        rows = txn.scan("t", 1, 5)
        assert rows == [(1, "a"), (2, "b"), (5, "E")]
        txn.commit()

    def test_scan_open_bounds(self, db):
        fill(db, "t", {i: i for i in range(5)})
        txn = db.begin()
        assert [k for k, _ in txn.scan("t")] == [0, 1, 2, 3, 4]
        assert [k for k, _ in txn.scan("t", hi=2)] == [0, 1, 2]
        assert [k for k, _ in txn.scan("t", lo=3)] == [3, 4]
        txn.commit()


class TestLifecycle:
    def test_abort_discards_writes(self, db):
        fill(db, "t", {1: "a"})
        txn = db.begin()
        txn.write("t", 1, "changed")
        txn.abort()
        assert db.begin().read("t", 1) == "a"

    def test_ops_after_commit_rejected(self, db):
        db.create_table("t")
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.write("t", 1, 1)
        with pytest.raises(TransactionStateError):
            txn.commit()

    def test_abort_is_idempotent(self, db):
        txn = db.begin()
        txn.abort()
        txn.abort()
        assert txn.is_aborted

    def test_context_manager_commits(self, db):
        db.create_table("t")
        with db.begin() as txn:
            txn.write("t", 1, "v")
        assert db.begin().read("t", 1) == "v"

    def test_context_manager_aborts_on_error(self, db):
        fill(db, "t", {1: "a"})
        with pytest.raises(RuntimeError):
            with db.begin() as txn:
                txn.write("t", 1, "changed")
                raise RuntimeError("boom")
        assert db.begin().read("t", 1) == "a"

    def test_stats_track_commits_and_begins(self, db):
        db.create_table("t")
        db.begin().commit()
        db.begin().abort()
        assert db.stats["begins"] == 2
        assert db.stats["commits"] == 1


class TestVacuum:
    def test_vacuum_prunes_dead_versions(self, db):
        fill(db, "t", {1: "v0"})
        for round_number in range(5):
            txn = db.begin()
            txn.write("t", 1, f"v{round_number + 1}")
            txn.commit()
        chain = db.table("t").chain(1)
        assert len(chain) == 6
        removed = db.vacuum()
        assert removed == 5
        assert db.begin().read("t", 1) == "v5"

    def test_vacuum_respects_active_snapshot(self, db):
        fill(db, "t", {1: "old"})
        reader = db.begin("si")
        assert reader.read("t", 1) == "old"  # pins the snapshot
        writer = db.begin("si")
        writer.write("t", 1, "new")
        writer.commit()
        db.vacuum()
        assert reader.read("t", 1) == "old"  # still readable
        reader.commit()
