"""Transaction-object state machinery: overlaps, properties, repr."""

import pytest

from repro import Database, EngineConfig, TransactionStatus

from tests.conftest import fill


@pytest.fixture
def db():
    database = Database(EngineConfig())
    fill(database, "t", {1: "a"})
    return database


def test_status_transitions(db):
    txn = db.begin()
    assert txn.is_active and not txn.is_committed and not txn.is_aborted
    txn.commit()
    assert txn.is_committed and not txn.is_active
    other = db.begin()
    other.abort()
    assert other.is_aborted


def test_read_ts_none_until_first_op_with_deferred_snapshot(db):
    txn = db.begin("si")
    assert txn.read_ts is None
    assert txn.begin_ts == txn.begin_seq  # falls back to begin order
    txn.read("t", 1)
    assert txn.read_ts is not None
    assert txn.begin_ts == txn.read_ts
    txn.commit()


def test_s2pl_never_gets_snapshot(db):
    txn = db.begin("s2pl")
    txn.read("t", 1)
    assert txn.snapshot is None
    txn.commit()


class TestOverlaps:
    def test_concurrent_snapshots_overlap(self, db):
        t1 = db.begin("si")
        t2 = db.begin("si")
        t1.read("t", 1)
        t2.read("t", 1)
        assert t1.overlaps(t2) and t2.overlaps(t1)
        t1.commit()
        t2.commit()

    def test_sequential_transactions_do_not_overlap(self, db):
        t1 = db.begin("si")
        t1.read("t", 1)
        t1.commit()
        t2 = db.begin("si")
        t2.read("t", 1)
        assert not t2.overlaps(t1)
        assert not t1.overlaps(t2)
        t2.commit()

    def test_active_spanning_commit_overlaps(self, db):
        t1 = db.begin("si")
        t1.read("t", 1)
        t2 = db.begin("si")
        t2.read("t", 1)
        t1.commit()
        assert t2.overlaps(t1)
        t2.commit()


def test_repr_mentions_state(db):
    txn = db.begin("ssi")
    assert "ssi" in repr(txn) and "active" in repr(txn)
    txn.commit()
    assert "committed" in repr(txn)


def test_commit_ts_ordering(db):
    stamps = []
    for _round in range(3):
        txn = db.begin()
        txn.write("t", 1, _round)
        txn.commit()
        stamps.append(txn.commit_ts)
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 3


def test_suspended_flag_visible(db):
    pin = db.begin("ssi")
    pin.read("t", 1)
    reader = db.begin("ssi")
    reader.read("t", 1)
    reader.commit()
    assert reader.suspended
    pin.commit()
    assert not reader.suspended
