"""EngineConfig profiles and IsolationLevel parsing."""

import pytest

from repro.engine.config import DeadlockMode, EngineConfig, LockGranularity
from repro.engine.isolation import IsolationLevel


class TestIsolationLevel:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("si", IsolationLevel.SNAPSHOT),
            ("ssi", IsolationLevel.SERIALIZABLE_SSI),
            ("s2pl", IsolationLevel.SERIALIZABLE_2PL),
            ("sgt", IsolationLevel.SGT),
            ("SNAPSHOT", IsolationLevel.SNAPSHOT),
            (IsolationLevel.SGT, IsolationLevel.SGT),
        ],
    )
    def test_parse(self, token, expected):
        assert IsolationLevel.parse(token) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            IsolationLevel.parse("read-committed")

    def test_classification_flags(self):
        assert not IsolationLevel.SERIALIZABLE_2PL.uses_snapshots
        assert IsolationLevel.SNAPSHOT.uses_snapshots
        assert IsolationLevel.SERIALIZABLE_SSI.detects_rw_conflicts
        assert IsolationLevel.SGT.detects_rw_conflicts
        assert not IsolationLevel.SNAPSHOT.takes_read_locks
        assert IsolationLevel.SERIALIZABLE_2PL.takes_read_locks


class TestConfigProfiles:
    def test_defaults_are_innodb_style(self):
        config = EngineConfig()
        assert config.granularity is LockGranularity.RECORD
        assert config.precise_conflicts
        assert config.deadlock_mode is DeadlockMode.IMMEDIATE
        assert config.eager_cleanup
        assert config.deferred_snapshot
        assert config.siread_upgrade

    def test_innodb_style_equals_defaults(self):
        assert EngineConfig.innodb_style() == EngineConfig()

    def test_berkeleydb_style(self):
        config = EngineConfig.berkeleydb_style()
        assert config.granularity is LockGranularity.PAGE
        assert not config.precise_conflicts
        assert config.deadlock_mode is DeadlockMode.PERIODIC
        assert not config.eager_cleanup

    def test_profile_overrides(self):
        config = EngineConfig.berkeleydb_style(page_size=16, record_history=True)
        assert config.page_size == 16
        assert config.record_history
        config2 = EngineConfig.innodb_style(victim_policy="youngest")
        assert config2.victim_policy == "youngest"
