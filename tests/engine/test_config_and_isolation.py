"""EngineConfig profiles and IsolationLevel parsing."""

import pytest

from repro.engine.config import DeadlockMode, EngineConfig, LockGranularity
from repro.engine.isolation import IsolationLevel


class TestIsolationLevel:
    @pytest.mark.parametrize(
        "token,expected",
        [
            ("si", IsolationLevel.SNAPSHOT),
            ("ssi", IsolationLevel.SERIALIZABLE_SSI),
            ("s2pl", IsolationLevel.SERIALIZABLE_2PL),
            ("sgt", IsolationLevel.SGT),
            ("SNAPSHOT", IsolationLevel.SNAPSHOT),
            (IsolationLevel.SGT, IsolationLevel.SGT),
            ("ssi-ro", IsolationLevel.SERIALIZABLE_SSI_RO),
        ],
    )
    def test_parse(self, token, expected):
        assert IsolationLevel.parse(token) is expected

    @pytest.mark.parametrize(
        "token,expected",
        [
            # Case-insensitive, separator-tolerant spellings.
            ("SSI", IsolationLevel.SERIALIZABLE_SSI),
            ("Si", IsolationLevel.SNAPSHOT),
            ("S2PL", IsolationLevel.SERIALIZABLE_2PL),
            ("SSI_RO", IsolationLevel.SERIALIZABLE_SSI_RO),
            ("serializable_ssi_ro", IsolationLevel.SERIALIZABLE_SSI_RO),
            ("  sgt  ", IsolationLevel.SGT),
            # SQL-standard aliases: SERIALIZABLE gets the paper's
            # algorithm; the levels SI historically shipped under map to
            # plain snapshots.
            ("SERIALIZABLE", IsolationLevel.SERIALIZABLE_SSI),
            ("serializable", IsolationLevel.SERIALIZABLE_SSI),
            ("REPEATABLE READ", IsolationLevel.SNAPSHOT),
            ("repeatable_read", IsolationLevel.SNAPSHOT),
            ("Repeatable-Read", IsolationLevel.SNAPSHOT),
            ("snapshot isolation", IsolationLevel.SNAPSHOT),
            (
                "serializable read only optimized",
                IsolationLevel.SERIALIZABLE_SSI_RO,
            ),
        ],
    )
    def test_parse_aliases(self, token, expected):
        assert IsolationLevel.parse(token) is expected

    @pytest.mark.parametrize(
        "token", ["read-committed", "read uncommitted", "", "serial"]
    )
    def test_parse_rejects_unknown(self, token):
        with pytest.raises(ValueError):
            IsolationLevel.parse(token)

    def test_begin_accepts_aliases(self):
        from repro.engine.config import EngineConfig as _Config
        from repro.engine.database import Database as _Database

        db = _Database(_Config())
        txn = db.begin("REPEATABLE READ")
        assert txn.isolation is IsolationLevel.SNAPSHOT
        txn.abort()
        txn = db.begin("Serializable")
        assert txn.isolation is IsolationLevel.SERIALIZABLE_SSI
        txn.abort()

    def test_classification_flags(self):
        assert not IsolationLevel.SERIALIZABLE_2PL.uses_snapshots
        assert IsolationLevel.SNAPSHOT.uses_snapshots
        assert IsolationLevel.SERIALIZABLE_SSI.detects_rw_conflicts
        assert IsolationLevel.SGT.detects_rw_conflicts
        assert not IsolationLevel.SNAPSHOT.takes_read_locks
        assert IsolationLevel.SERIALIZABLE_2PL.takes_read_locks


class TestConfigProfiles:
    def test_defaults_are_innodb_style(self):
        config = EngineConfig()
        assert config.granularity is LockGranularity.RECORD
        assert config.precise_conflicts
        assert config.deadlock_mode is DeadlockMode.IMMEDIATE
        assert config.eager_cleanup
        assert config.deferred_snapshot
        assert config.siread_upgrade

    def test_innodb_style_equals_defaults(self):
        assert EngineConfig.innodb_style() == EngineConfig()

    def test_berkeleydb_style(self):
        config = EngineConfig.berkeleydb_style()
        assert config.granularity is LockGranularity.PAGE
        assert not config.precise_conflicts
        assert config.deadlock_mode is DeadlockMode.PERIODIC
        assert not config.eager_cleanup

    def test_profile_overrides(self):
        config = EngineConfig.berkeleydb_style(page_size=16, record_history=True)
        assert config.page_size == 16
        assert config.record_history
        config2 = EngineConfig.innodb_style(victim_policy="youngest")
        assert config2.victim_policy == "youngest"
