"""Serializable SI engine tests (paper Chapter 3).

These drive the anomaly scenarios of the paper through the real engine
and assert that exactly the paper's outcomes occur: unsafe aborts where
SI would corrupt data, commits where the execution is serializable.
"""

import pytest

from repro import Database, EngineConfig, IsolationLevel, UnsafeError
from repro.errors import TransactionAbortedError
from repro.sgt.checker import check_serializable

from tests.conftest import commit_outcomes, fill


def outcomes_contain_unsafe(outcomes):
    return any(outcome == "unsafe" for outcome in outcomes)


class TestWriteSkewPrevention:
    def test_classic_write_skew_aborts_one(self, db):
        """Example 2 under Serializable SI: one transaction must die."""
        fill(db, "acct", {"x": 50, "y": 50})
        t1 = db.begin("ssi")
        t2 = db.begin("ssi")
        results = []
        try:
            b1 = t1.read("acct", "x") + t1.read("acct", "y")
            t1.write("acct", "x", b1 - 70 - 50)
        except TransactionAbortedError as error:
            results.append(error.reason)
        try:
            b2 = t2.read("acct", "x") + t2.read("acct", "y")
            t2.write("acct", "y", b2 - 80 - 50)
        except TransactionAbortedError as error:
            results.append(error.reason)
        results.extend(commit_outcomes(t1, t2))
        assert "unsafe" in results
        assert results.count("commit") <= 1
        # Data integrity survives: x + y stays >= -100+... the committed
        # one alone cannot break x + y > 0 given it checked its snapshot.
        assert check_serializable(db.history).serializable

    def test_write_skew_with_basic_tracker(self, db_basic):
        fill(db_basic, "acct", {"x": 50, "y": 50})
        t1 = db_basic.begin("ssi")
        t2 = db_basic.begin("ssi")
        results = []
        for txn, key in ((t1, "x"), (t2, "y")):
            try:
                total = txn.read("acct", "x") + txn.read("acct", "y")
                txn.write("acct", key, total - 150)
            except TransactionAbortedError as error:
                results.append(error.reason)
        results.extend(commit_outcomes(t1, t2))
        assert "unsafe" in results

    def test_sequential_execution_never_aborts(self, db):
        fill(db, "acct", {"x": 50, "y": 50})
        for key in ("x", "y"):
            txn = db.begin("ssi")
            total = txn.read("acct", "x") + txn.read("acct", "y")
            txn.write("acct", key, total - 70)
            txn.commit()  # serial: no anomaly possible
        assert db.stats["aborts"]["unsafe"] == 0

    def test_doctors_on_duty_example(self, db):
        """Example 1: the on-duty invariant is preserved under SSI."""
        fill(db, "duties", {("s1", "d1"): "on duty", ("s1", "d2"): "on duty"})

        def take_reserve(txn, doctor):
            txn.write("duties", ("s1", doctor), "reserve")
            on_duty = [
                key for key, status in txn.scan("duties")
                if status == "on duty"
            ]
            if not on_duty:
                txn.abort()
                return "rolled-back"
            txn.commit()
            return "commit"

        t1 = db.begin("ssi")
        t2 = db.begin("ssi")
        results = []
        for txn, doctor in ((t1, "d1"), (t2, "d2")):
            try:
                results.append(take_reserve(txn, doctor))
            except TransactionAbortedError as error:
                results.append(error.reason)
        committed = results.count("commit")
        # At most one may commit; the invariant must hold afterwards.
        check = db.begin("ssi")
        on_duty = [k for k, s in check.scan("duties") if s == "on duty"]
        assert len(on_duty) >= 1
        assert committed <= 1


class TestReadOnlyAnomaly:
    def _run(self, db, reader_level):
        """Example 3 (Fekete et al. 2004): Tpivot r(y) w(x); Tout w(y)w(z);
        Tin r(x) r(z), interleaved as in Fig 2.3(a)."""
        fill(db, "t", {"x": 0, "y": 0, "z": 0})
        pivot = db.begin("ssi")
        out = db.begin("ssi")
        pivot.read("t", "y")
        out.write("t", "y", 10)
        out.write("t", "z", 10)
        out.commit()
        t_in = db.begin(reader_level)
        results = []
        try:
            t_in.read("t", "x")
            t_in.read("t", "z")
        except TransactionAbortedError as error:
            results.append(error.reason)
        try:
            pivot.write("t", "x", 5)
        except TransactionAbortedError as error:
            results.append(error.reason)
        results.extend(commit_outcomes(t_in, pivot))
        return results

    def test_read_only_anomaly_prevented_when_all_ssi(self, db):
        results = self._run(db, "ssi")
        assert "unsafe" in results

    def test_read_only_anomaly_possible_with_si_queries(self, db):
        """Section 3.8: SI queries mixed with SSI updates — updates stay
        consistent but the query may observe a non-serializable state."""
        results = self._run(db, "si")
        assert "unsafe" not in results
        assert results.count("commit") == 2


class TestPivotCommitOrderPrecision:
    def test_fig_3_8_false_positive_only_with_basic_tracker(self):
        """The Fig 3.8 interleaving is serializable ({Tin, Tpivot, Tout});
        the basic tracker aborts the pivot anyway, the enhanced one does
        not."""
        outcomes = {}
        for precise in (False, True):
            db = Database(EngineConfig(precise_conflicts=precise))
            fill(db, "t", {"x": 0, "y": 0, "z": 0})
            pivot = db.begin("ssi")
            t_in = db.begin("ssi")
            out = db.begin("ssi")
            pivot.read("t", "y")               # rpivot(y): snapshot fixed
            t_in.read("t", "x")
            t_in.read("t", "z")
            t_in.commit()                      # cin first
            out.write("t", "y", 1)
            out.write("t", "z", 1)
            out.commit()                       # cout after cin
            results = []
            try:
                pivot.write("t", "x", 1)       # wpivot(x) after cin
            except TransactionAbortedError as error:
                results.append(error.reason)
            results.extend(commit_outcomes(pivot))
            outcomes[precise] = results
        # Basic tracker: pivot has both flags -> false-positive abort.
        assert "unsafe" in outcomes[False]
        # Enhanced tracker: Tin committed before Tout, so Tout is not the
        # first committer -> the pivot commits (Fig 3.8's point).
        assert outcomes[True] == ["commit"]


class TestPhantoms:
    def test_phantom_write_skew_prevented(self, db):
        """The Section 3.5 scenario: predicate-read vs insert write skew
        must abort under SSI (gap SIREAD locks detect it)."""
        db.create_table("oncall")
        fill(db, "oncall", {("s1", 1): "alice"})
        t1 = db.begin("ssi")
        t2 = db.begin("ssi")
        results = []
        try:
            count1 = len(t1.scan("oncall"))
            t1.insert("oncall", ("s1", 2), f"bob-{count1}")
        except TransactionAbortedError as error:
            results.append(error.reason)
        try:
            count2 = len(t2.scan("oncall"))
            t2.insert("oncall", ("s1", 3), f"carol-{count2}")
        except TransactionAbortedError as error:
            results.append(error.reason)
        results.extend(commit_outcomes(t1, t2))
        assert "unsafe" in results

    def test_delete_vs_scan_skew_prevented(self, db):
        fill(db, "items", {1: "a", 2: "b"})
        t1 = db.begin("ssi")
        t2 = db.begin("ssi")
        results = []
        try:
            if len(t1.scan("items")) > 1:
                t1.delete("items", 1)
        except TransactionAbortedError as error:
            results.append(error.reason)
        try:
            if len(t2.scan("items")) > 1:
                t2.delete("items", 2)
        except TransactionAbortedError as error:
            results.append(error.reason)
        results.extend(commit_outcomes(t1, t2))
        assert "unsafe" in results

    def test_insert_past_scan_end_detected(self, db):
        """Insert beyond the last existing key still conflicts via the
        boundary/supremum gap lock."""
        fill(db, "t", {1: "a"})
        scanner = db.begin("ssi")
        inserter = db.begin("ssi")
        scanner.scan("t", 1, 100)
        inserter.insert("t", 50, "phantom")
        scanner.write("t", 1, "A")  # gives scanner an outgoing edge target
        results = commit_outcomes(inserter, scanner)
        # Not necessarily unsafe (no full dangerous structure), but the
        # conflict must have been recorded between the two.
        tracked = db.tracker.stats["marked"]
        assert tracked >= 1

    def test_non_overlapping_ranges_do_not_conflict(self, db):
        fill(db, "t", {1: "a", 10: "b", 20: "c"})
        scanner = db.begin("ssi")
        inserter = db.begin("ssi")
        scanner.scan("t", 1, 5)
        before = db.tracker.stats["marked"]
        inserter.insert("t", 15, "x")  # outside scanned range
        assert db.tracker.stats["marked"] == before
        inserter.commit()
        scanner.commit()


class TestSuspension:
    def test_committed_reader_suspended_until_no_overlap(self, db):
        fill(db, "t", {"x": 0, "y": 0})
        reader = db.begin("ssi")
        reader.read("t", "x")
        overlapping = db.begin("ssi")
        overlapping.read("t", "y")
        reader.commit()
        assert db.suspended_count() == 1  # SIREAD locks retained
        overlapping.commit()
        # Cleanup runs eagerly on commit: nothing overlaps anymore.
        assert db.suspended_count() == 0

    def test_conflict_detected_against_suspended_transaction(self, db):
        """Fig 2.3(b): the pivot's read-write conflict with Tout appears
        only after the pivot committed — the retained SIREAD catches it."""
        fill(db, "t", {"x": 0, "y": 0, "z": 0})
        t_in = db.begin("ssi")
        pivot = db.begin("ssi")
        out = db.begin("ssi")
        t_in.read("t", "x")      # ensures overlap so pivot is retained
        pivot.read("t", "y")
        pivot.write("t", "x", 1)
        pivot.commit()           # holds SIREAD on y, suspended
        results = []
        try:
            out.write("t", "y", 2)   # hits the suspended SIREAD
            out.write("t", "z", 2)
        except TransactionAbortedError as error:
            results.append(error.reason)
        try:
            t_in.read("t", "z")
        except TransactionAbortedError as error:
            results.append(error.reason)
        results.extend(commit_outcomes(out, t_in))
        assert check_serializable(db.history).serializable

    def test_pure_update_not_suspended(self, db):
        """A transaction with no SIREAD locks (thanks to the upgrade
        optimisation) and no out-conflict is cleaned immediately."""
        fill(db, "t", {"x": 0})
        other = db.begin("ssi")
        other.read("t", "x")  # keeps an overlapping txn active
        writer = db.begin("ssi")
        writer.write("t", "x", 1)
        writer.commit()
        assert all(txn.id != writer.id for txn in db._suspended)
        other.abort()

    def test_lock_table_shrinks_after_cleanup(self, db):
        fill(db, "t", {i: i for i in range(20)})
        for _round in range(10):
            txn = db.begin("ssi")
            for key in range(20):
                txn.read("t", key)
            txn.write("t", 0, txn.read("t", 0) + 1)
            txn.commit()
        # No concurrency: every commit cleans the previous record.
        assert db.suspended_count() <= 1
        assert db.locks.table_size() <= 25


class TestVictimPolicies:
    def _skew(self, config):
        db = Database(config)
        fill(db, "acct", {"x": 50, "y": 50})
        t1 = db.begin("ssi")
        t2 = db.begin("ssi")
        results = {}
        for txn, key in ((t1, "x"), (t2, "y")):
            try:
                total = txn.read("acct", "x") + txn.read("acct", "y")
                txn.write("acct", key, total - 150)
            except TransactionAbortedError as error:
                results[txn.id] = error.reason
        for txn in (t1, t2):
            if txn.is_active:
                try:
                    txn.commit()
                    results[txn.id] = "commit"
                except TransactionAbortedError as error:
                    results[txn.id] = error.reason
        return t1, t2, results

    def test_youngest_policy_aborts_younger(self):
        t1, t2, results = self._skew(
            EngineConfig(victim_policy="youngest", precise_conflicts=False)
        )
        assert results[t2.id] == "unsafe"
        assert results[t1.id] == "commit"

    def test_oldest_policy_aborts_older(self):
        t1, t2, results = self._skew(
            EngineConfig(victim_policy="oldest", precise_conflicts=False)
        )
        assert results[t1.id] == "unsafe"
        assert results[t2.id] == "commit"
