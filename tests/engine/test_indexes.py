"""Secondary index tests: maintenance, scans, uniqueness, phantoms."""

import pytest

from repro import Database, DuplicateKeyError, EngineConfig
from repro.errors import TransactionAbortedError
from repro.sgt.checker import check_serializable

from tests.conftest import commit_outcomes, fill


@pytest.fixture
def db():
    database = Database(EngineConfig(record_history=True))
    database.create_table("people")
    database.load("people", [
        (1, {"name": "ada", "city": "london"}),
        (2, {"name": "alan", "city": "london"}),
        (3, {"name": "grace", "city": "nyc"}),
    ])
    database.create_index("people_by_city", "people",
                          key_func=lambda pk, row: row["city"])
    return database


class TestPopulationAndMaintenance:
    def test_existing_rows_indexed(self, db):
        txn = db.begin()
        assert txn.index_lookup("people_by_city", "london") == [1, 2]
        assert txn.index_lookup("people_by_city", "nyc") == [3]
        txn.commit()

    def test_insert_maintains_index(self, db):
        txn = db.begin()
        txn.insert("people", 4, {"name": "edsger", "city": "austin"})
        assert txn.index_lookup("people_by_city", "austin") == [4]
        txn.commit()
        check = db.begin()
        assert check.index_lookup("people_by_city", "austin") == [4]
        check.commit()

    def test_update_moves_index_entry(self, db):
        txn = db.begin()
        txn.write("people", 1, {"name": "ada", "city": "paris"})
        assert txn.index_lookup("people_by_city", "london") == [2]
        assert txn.index_lookup("people_by_city", "paris") == [1]
        txn.commit()

    def test_update_with_unchanged_key_is_noop(self, db):
        txn = db.begin()
        writes_before = db.stats["writes"]
        txn.write("people", 1, {"name": "augusta", "city": "london"})
        txn.commit()
        # exactly one write (the base row) — no index churn
        assert db.stats["writes"] == writes_before + 1

    def test_delete_removes_index_entry(self, db):
        txn = db.begin()
        txn.delete("people", 3)
        assert txn.index_lookup("people_by_city", "nyc") == []
        txn.commit()

    def test_abort_undoes_index_changes(self, db):
        txn = db.begin()
        txn.write("people", 1, {"name": "ada", "city": "paris"})
        txn.abort()
        check = db.begin()
        assert check.index_lookup("people_by_city", "london") == [1, 2]
        assert check.index_lookup("people_by_city", "paris") == []
        check.commit()

    def test_partial_index_excludes_none_keys(self, db):
        db.create_index("vip", "people",
                        key_func=lambda pk, row: row.get("vip"))
        txn = db.begin()
        txn.write("people", 2, {"name": "alan", "city": "london", "vip": 1})
        txn.commit()
        check = db.begin()
        assert check.index_lookup("vip", 1) == [2]
        assert len(check.index_scan("vip")) == 1
        check.commit()


class TestScans:
    def test_range_scan_in_index_order(self, db):
        txn = db.begin()
        pairs = txn.index_scan("people_by_city")
        assert pairs == [("london", 1), ("london", 2), ("nyc", 3)]
        bounded = txn.index_scan("people_by_city", "m", "z")
        assert bounded == [("nyc", 3)]
        txn.commit()

    def test_scan_sees_own_uncommitted_changes(self, db):
        txn = db.begin()
        txn.insert("people", 9, {"name": "barbara", "city": "boston"})
        assert ("boston", 9) in txn.index_scan("people_by_city")
        txn.abort()


class TestUnique:
    def test_unique_index_enforced(self, db):
        db.create_index("by_name", "people",
                        key_func=lambda pk, row: row["name"], unique=True)
        txn = db.begin()
        with pytest.raises(DuplicateKeyError):
            txn.insert("people", 10, {"name": "ada", "city": "oslo"})
        txn.abort()

    def test_unique_lookup(self, db):
        db.create_index("by_name", "people",
                        key_func=lambda pk, row: row["name"], unique=True)
        txn = db.begin()
        assert txn.index_lookup("by_name", "grace") == [3]
        txn.commit()

    def test_unique_allows_self_update(self, db):
        db.create_index("by_name", "people",
                        key_func=lambda pk, row: row["name"], unique=True)
        txn = db.begin()
        txn.write("people", 1, {"name": "ada", "city": "paris"})  # same name
        txn.commit()


class TestConcurrency:
    def test_index_scan_vs_insert_write_skew_prevented(self, db):
        """Phantom protection extends to index order: two transactions
        each count a city's residents via the index and insert — the
        dangerous pair must not both commit blind."""
        t1 = db.begin("ssi")
        t2 = db.begin("ssi")
        results = []
        try:
            n1 = len(t1.index_lookup("people_by_city", "london"))
            t1.insert("people", 21, {"name": f"n{n1}", "city": "london"})
        except TransactionAbortedError as error:
            results.append(error.reason)
        try:
            n2 = len(t2.index_lookup("people_by_city", "london"))
            t2.insert("people", 22, {"name": f"n{n2}", "city": "london"})
        except TransactionAbortedError as error:
            results.append(error.reason)
        results.extend(commit_outcomes(t1, t2))
        assert check_serializable(db.history).serializable

    def test_serializability_with_random_index_traffic(self, db):
        import random

        rng = random.Random(0)
        cities = ["london", "nyc", "austin"]
        for _round in range(30):
            txn = db.begin("ssi")
            try:
                pk = rng.randrange(1, 6)
                if rng.random() < 0.5:
                    txn.index_scan("people_by_city")
                if txn.get("people", pk) is None:
                    txn.insert("people", pk,
                               {"name": f"p{pk}", "city": rng.choice(cities)})
                else:
                    txn.write("people", pk,
                              {"name": f"p{pk}", "city": rng.choice(cities)})
                txn.commit()
            except TransactionAbortedError:
                pass
        assert check_serializable(db.history).serializable
        # index consistent with base table
        check = db.begin("si")
        base = dict(check.scan("people"))
        indexed = check.index_scan("people_by_city")
        assert sorted(pk for _city, pk in indexed) == sorted(base)
        for city, pk in indexed:
            assert base[pk]["city"] == city
        check.commit()
