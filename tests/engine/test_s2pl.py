"""Strict two-phase locking engine tests (paper Section 2.2.1)."""

import pytest

from repro import Database, DeadlockError, EngineConfig
from repro.engine.config import DeadlockMode
from repro.errors import LockWaitRequired
from repro.locking.manager import RequestState
from repro.sgt.checker import check_serializable

from tests.conftest import fill


class TestBlockingReads:
    def test_reader_blocks_behind_writer(self, db):
        fill(db, "t", {1: "a"})
        writer = db.begin("s2pl")
        writer.write("t", 1, "b")
        reader = db.begin("s2pl")
        with pytest.raises(LockWaitRequired) as wait:
            db.read(reader, "t", 1)
        writer.commit()
        assert wait.value.request.state is RequestState.GRANTED
        # S2PL reads current state: sees the committed value.
        assert db.read(reader, "t", 1) == "b"
        reader.commit()

    def test_writer_blocks_behind_reader(self, db):
        fill(db, "t", {1: "a"})
        reader = db.begin("s2pl")
        assert reader.read("t", 1) == "a"
        writer = db.begin("s2pl")
        with pytest.raises(LockWaitRequired):
            db.write(writer, "t", 1, "b")
        reader.commit()  # releases the shared lock
        db.write(writer, "t", 1, "b")
        writer.commit()

    def test_shared_readers_coexist(self, db):
        fill(db, "t", {1: "a"})
        r1, r2, r3 = (db.begin("s2pl") for _ in range(3))
        assert all(txn.read("t", 1) == "a" for txn in (r1, r2, r3))
        for txn in (r1, r2, r3):
            txn.commit()

    def test_repeatable_reads(self, db):
        fill(db, "t", {1: "a"})
        reader = db.begin("s2pl")
        assert reader.read("t", 1) == "a"
        writer = db.begin("s2pl")
        with pytest.raises(LockWaitRequired):
            db.write(writer, "t", 1, "b")  # blocked: repeatability holds
        assert reader.read("t", 1) == "a"
        reader.commit()
        writer.abort()


class TestDeadlocks:
    def test_immediate_detection_aborts_requester(self, db):
        fill(db, "t", {"a": 1, "b": 2})
        t1 = db.begin("s2pl")
        t2 = db.begin("s2pl")
        t1.write("t", "a", 10)
        t2.write("t", "b", 20)
        with pytest.raises(LockWaitRequired):
            db.write(t1, "t", "b", 11)  # t1 waits for t2
        with pytest.raises(DeadlockError):
            db.write(t2, "t", "a", 21)  # closes the cycle
        assert t2.is_aborted
        assert db.stats["aborts"]["deadlock"] == 1
        # t1's wait resolves once t2 aborted.
        db.write(t1, "t", "b", 11)
        t1.commit()

    def test_periodic_sweep_dooms_victim(self):
        db = Database(EngineConfig(deadlock_mode=DeadlockMode.PERIODIC))
        fill(db, "t", {"a": 1, "b": 2})
        t1 = db.begin("s2pl")
        t2 = db.begin("s2pl")
        t1.write("t", "a", 10)
        t2.write("t", "b", 20)
        with pytest.raises(LockWaitRequired):
            db.write(t1, "t", "b", 11)
        with pytest.raises(LockWaitRequired):
            db.write(t2, "t", "a", 21)
        victims = db.sweep_deadlocks()
        assert len(victims) == 1
        victim = victims[0]
        assert victim.doom_error is not None


class TestNextKeyLocking:
    def test_scan_blocks_insert_into_range(self, db):
        fill(db, "t", {10: "a", 20: "b"})
        scanner = db.begin("s2pl")
        assert len(scanner.scan("t", 0, 30)) == 2
        inserter = db.begin("s2pl")
        with pytest.raises(LockWaitRequired):
            db.insert(inserter, "t", 15, "phantom")
        scanner.commit()
        db.insert(inserter, "t", 15, "phantom")
        inserter.commit()

    def test_insert_blocks_scan_over_gap(self, db):
        fill(db, "t", {10: "a", 20: "b"})
        inserter = db.begin("s2pl")
        inserter.insert("t", 15, "x")
        scanner = db.begin("s2pl")
        with pytest.raises(LockWaitRequired):
            db.scan(scanner, "t", 0, 30)
        inserter.commit()
        rows = scanner.scan("t", 0, 30)
        assert [key for key, _value in rows] == [10, 15, 20]
        scanner.commit()

    def test_insert_past_table_end_blocked_by_open_scan(self, db):
        fill(db, "t", {10: "a"})
        scanner = db.begin("s2pl")
        scanner.scan("t")  # open-ended: supremum gap locked
        inserter = db.begin("s2pl")
        with pytest.raises(LockWaitRequired):
            db.insert(inserter, "t", 99, "x")
        scanner.commit()
        inserter.abort()

    def test_inserts_into_disjoint_gaps_do_not_block(self, db):
        fill(db, "t", {10: "a", 20: "b", 30: "c"})
        t1 = db.begin("s2pl")
        t2 = db.begin("s2pl")
        t1.insert("t", 15, "x")  # gap before 20
        t2.insert("t", 25, "y")  # gap before 30
        t1.commit()
        t2.commit()

    def test_concurrent_inserts_same_gap_do_not_block(self, db):
        """Insert-intention locks are mutually compatible."""
        fill(db, "t", {10: "a", 20: "b"})
        t1 = db.begin("s2pl")
        t2 = db.begin("s2pl")
        t1.insert("t", 14, "x")
        t2.insert("t", 16, "y")  # same gap, no block
        t1.commit()
        t2.commit()


class TestSerializability:
    def test_write_skew_impossible(self, db):
        """The Example 2 interleaving cannot happen: the second reader
        blocks behind the first writer."""
        fill(db, "acct", {"x": 50, "y": 50})
        t1 = db.begin("s2pl")
        t2 = db.begin("s2pl")
        t1.read("acct", "x")
        t1.read("acct", "y")
        t2.read("acct", "x")  # shared with t1's read: fine
        with pytest.raises(LockWaitRequired):
            # t1 cannot write x while t2 holds the shared lock...
            db.write(t1, "acct", "x", -20)
        t2.abort()
        db.write(t1, "acct", "x", -20)
        t1.commit()
        assert check_serializable(db.history).serializable
