"""SGT-certifier isolation level tests (paper Section 2.7 baseline)."""

import pytest

from repro import Database, EngineConfig, UnsafeError
from repro.errors import TransactionAbortedError

from tests.conftest import commit_outcomes, fill


class TestSgtLevel:
    def test_write_skew_prevented(self, db):
        fill(db, "acct", {"x": 50, "y": 50})
        t1 = db.begin("sgt")
        t2 = db.begin("sgt")
        results = []
        for txn, key in ((t1, "x"), (t2, "y")):
            try:
                total = txn.read("acct", "x") + txn.read("acct", "y")
                txn.write("acct", key, total - 150)
            except TransactionAbortedError as error:
                results.append(error.reason)
        results.extend(commit_outcomes(t1, t2))
        assert "unsafe" in results
        assert results.count("commit") == 1

    def test_no_false_positive_on_fig_3_8(self, db):
        """SGT tests real cycles, so the Fig 3.8 interleaving commits."""
        fill(db, "t", {"x": 0, "y": 0, "z": 0})
        pivot = db.begin("sgt")
        t_in = db.begin("sgt")
        out = db.begin("sgt")
        pivot.read("t", "y")
        t_in.read("t", "x")
        t_in.read("t", "z")
        t_in.commit()
        out.write("t", "y", 1)
        out.write("t", "z", 1)
        out.commit()
        pivot.write("t", "x", 1)
        pivot.commit()  # serializable as {Tin, Tpivot, Tout}: no cycle

    def test_reads_do_not_block(self, db):
        fill(db, "t", {1: "a"})
        writer = db.begin("sgt")
        writer.write("t", 1, "b")
        reader = db.begin("sgt")
        assert reader.read("t", 1) == "a"  # multiversion read, no block
        reader.commit()
        writer.commit()

    def test_three_txn_cycle_caught(self, db):
        """Tin r(x) r(z); Tpivot r(y) w(x); Tout w(y) w(z) — the Section
        4.7 test set; any real cycle must abort someone."""
        fill(db, "t", {"x": 0, "y": 0, "z": 0})
        pivot = db.begin("sgt")
        out = db.begin("sgt")
        t_in = db.begin("sgt")
        results = []
        try:
            pivot.read("t", "y")
            out.write("t", "y", 1)
            out.write("t", "z", 1)
            out.commit()
            t_in.read("t", "x")
            t_in.read("t", "z")  # sees old z: rw Tin->Tout... but Tout committed
            pivot.write("t", "x", 1)
            results.extend(commit_outcomes(t_in, pivot))
        except TransactionAbortedError as error:
            results.append(error.reason)
        # Whatever interleaving survived must be serializable.
        from repro.sgt.checker import check_serializable
        assert check_serializable(db.history).serializable

    def test_certifier_nodes_cleaned_up(self, db):
        fill(db, "t", {1: 0})
        for _round in range(20):
            txn = db.begin("sgt")
            txn.write("t", 1, txn.read("t", 1) + 1)
            txn.commit()
        # Sequential transactions: the graph must not accumulate.
        assert db.certifier.node_count() <= 2
