"""Abort accounting: every abort lands in exactly one reason bucket.

The reason histogram (``db.stats["aborts"]``) feeds the paper's
error-rate figures; a double-counted or mis-bucketed abort skews every
"errors per commit" series.  These tests pin down the bucket each
termination path uses, across the three isolation levels the paper
compares, and that voluntary rollbacks stay out of the CC-abort count.
"""

import pytest

from repro import Database, EngineConfig
from repro.errors import (
    ABORT_REASONS,
    DeadlockError,
    UpdateConflictError,
    LockWaitRequired,
    TransactionAbortedError,
    UnsafeError,
)
from repro.sim.metrics import SimResult

from tests.conftest import commit_outcomes, fill


def abort_deltas(db, before):
    after = db.stats["aborts"]
    return {reason: after[reason] - before[reason] for reason in after}


def only_bucket(deltas, reason):
    """True iff exactly ``reason`` moved, by exactly one."""
    return deltas[reason] == 1 and sum(deltas.values()) == 1


class TestBucketPerPath:
    def test_buckets_match_abort_reasons(self, db):
        assert tuple(db.stats["aborts"]) == ABORT_REASONS

    def test_si_first_committer_wins_counts_conflict(self, db):
        fill(db, "t", {"k": 1})
        t1, t2 = db.begin("si"), db.begin("si")
        t1.read("t", "k"), t2.read("t", "k")
        t1.write("t", "k", 2)
        t1.commit()
        before = dict(db.stats["aborts"])
        with pytest.raises(UpdateConflictError):
            t2.write("t", "k", 3)
        assert only_bucket(abort_deltas(db, before), "conflict")

    def test_ssi_write_skew_counts_unsafe(self, db):
        fill(db, "acct", {"x": 50, "y": 50})
        t1, t2 = db.begin("ssi"), db.begin("ssi")
        before = dict(db.stats["aborts"])
        outcomes = []
        for txn, key in ((t1, "x"), (t2, "y")):
            try:
                total = txn.read("acct", "x") + txn.read("acct", "y")
                txn.write("acct", key, total - 150)
            except TransactionAbortedError as error:
                outcomes.append(error.reason)
        outcomes.extend(commit_outcomes(t1, t2))
        assert "unsafe" in outcomes
        deltas = abort_deltas(db, before)
        assert deltas["unsafe"] == outcomes.count("unsafe")
        assert sum(deltas.values()) == deltas["unsafe"]

    def test_s2pl_deadlock_counts_deadlock(self, db):
        fill(db, "t", {"a": 1, "b": 2})
        t1, t2 = db.begin("s2pl"), db.begin("s2pl")
        t1.write("t", "a", 10)
        t2.write("t", "b", 20)
        before = dict(db.stats["aborts"])
        with pytest.raises(LockWaitRequired):
            db.write(t1, "t", "b", 11)
        with pytest.raises(DeadlockError):
            db.write(t2, "t", "a", 21)
        assert only_bucket(abort_deltas(db, before), "deadlock")
        db.write(t1, "t", "b", 11)
        t1.commit()

    def test_voluntary_rollback_counts_aborted(self, db):
        txn = db.begin("si")
        before = dict(db.stats["aborts"])
        txn.abort()
        assert only_bucket(abort_deltas(db, before), "aborted")

    def test_explicit_constraint_rollback_counts_constraint(self, db):
        # The simulator maps integrity failures to reason="constraint";
        # the engine must file them under that bucket, not "aborted".
        txn = db.begin("si")
        before = dict(db.stats["aborts"])
        db.abort(txn, reason="constraint")
        assert only_bucket(abort_deltas(db, before), "constraint")

    def test_unknown_reason_falls_back_to_aborted(self, db):
        txn = db.begin("si")
        before = dict(db.stats["aborts"])
        db.abort(txn, reason="user-hit-ctrl-c")
        assert only_bucket(abort_deltas(db, before), "aborted")

    def test_double_abort_counts_once(self, db):
        txn = db.begin("si")
        before = dict(db.stats["aborts"])
        txn.abort()
        txn.abort()
        db.abort(txn)
        assert sum(abort_deltas(db, before).values()) == 1

    def test_doomed_ssi_victim_counts_once(self, db):
        """A doomed pivot aborts exactly once even though the doom is
        discovered on a later operation."""
        fill(db, "acct", {"x": 50, "y": 50})
        t1, t2 = db.begin("ssi"), db.begin("ssi")
        before = dict(db.stats["aborts"])
        aborted = 0
        for txn, key in ((t1, "x"), (t2, "y")):
            try:
                total = txn.read("acct", "x") + txn.read("acct", "y")
                txn.write("acct", key, total - 150)
            except UnsafeError:
                aborted += 1
        for txn in (t1, t2):
            if txn.is_active:
                try:
                    txn.commit()
                except TransactionAbortedError:
                    aborted += 1
        deltas = abort_deltas(db, before)
        assert sum(deltas.values()) == aborted


class TestCcAbortExclusions:
    def test_cc_aborts_exclude_voluntary_rollbacks(self):
        result = SimResult(isolation="si", mpl=1, duration=1.0)
        result.aborts.update({"conflict": 2, "unsafe": 1, "constraint": 7})
        assert result.total_aborts == 10
        assert result.cc_aborts == 3

    def test_error_rate_uses_cc_aborts_only(self):
        result = SimResult(isolation="si", mpl=1, duration=1.0, commits=10)
        result.aborts.update({"constraint": 30, "deadlock": 5})
        assert result.error_rate == pytest.approx(0.5)
