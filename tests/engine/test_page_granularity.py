"""Page-granularity (Berkeley DB-style) engine tests (Sections 4.1-4.3).

At PAGE granularity, locks name B+-tree leaf pages: unrelated rows that
share a page conflict, which is the source of the false-positive unsafe
aborts the paper measures in Figure 6.4, and also what makes plain
record locking sufficient against phantoms in Berkeley DB (Section 3.5).
"""

import pytest

from repro import Database, EngineConfig
from repro.engine.config import LockGranularity
from repro.errors import LockWaitRequired, TransactionAbortedError
from repro.sgt.checker import check_serializable

from tests.conftest import commit_outcomes, fill


@pytest.fixture
def pdb():
    return Database(
        EngineConfig.berkeleydb_style(page_size=4, record_history=True)
    )


def test_config_helper_sets_bdb_profile():
    config = EngineConfig.berkeleydb_style()
    assert config.granularity is LockGranularity.PAGE
    assert not config.precise_conflicts
    assert not config.eager_cleanup


def test_same_page_rows_share_one_lock(pdb):
    fill(pdb, "t", {i: i for i in range(4)})  # all on one leaf
    txn = pdb.begin("s2pl")
    txn.read("t", 0)
    txn.read("t", 3)
    assert len(pdb.locks.locks_held_by(txn)) == 1  # one page lock
    txn.commit()


def test_false_sharing_blocks_unrelated_writers(pdb):
    fill(pdb, "t", {i: i for i in range(4)})
    t1 = pdb.begin("si")
    t2 = pdb.begin("si")
    t2.read("t", 3)  # fixes t2's snapshot before t1 commits
    t1.write("t", 0, "x")
    with pytest.raises(LockWaitRequired):
        pdb.write(t2, "t", 3, "y")  # different row, same page
    t1.commit()
    with pytest.raises(TransactionAbortedError):
        # page version is newer than t2's snapshot: FCW at page level
        pdb.write(t2, "t", 3, "y")


def test_distinct_pages_do_not_conflict(pdb):
    fill(pdb, "t", {i: i for i in range(64)})  # many leaves
    t1 = pdb.begin("si")
    t2 = pdb.begin("si")
    first = pdb.table("t").first_key()
    last = max(pdb.table("t").keys())
    assert pdb.table("t").leaf_page_of(first) != pdb.table("t").leaf_page_of(last)
    t1.write("t", first, "x")
    t2.write("t", last, "y")
    assert commit_outcomes(t1, t2) == ["commit", "commit"]


def _reference_page_groups():
    """Key groups per leaf page in a page_size=4 layout of keys 0..15."""
    from repro.storage.table import Table

    reference = Table("ref", page_size=4)
    for key in range(16):
        reference.load(key, key)
    groups: dict[int, list[int]] = {}
    for key in range(16):
        groups.setdefault(reference.leaf_page_of(key), []).append(key)
    return [keys for keys in groups.values() if len(keys) >= 2][:2]


def _cross_page_skew(db):
    """Disjoint rows arranged so that, at page granularity only, the two
    transactions form a write-skew pattern: each reads a row on the page
    the other writes.  Returns the outcome list."""
    fill(db, "t", {i: i for i in range(16)})
    page_a, page_b = _reference_page_groups()
    results = []
    t1 = db.begin("ssi")
    t2 = db.begin("ssi")
    try:
        t1.read("t", page_a[0])
        t2.read("t", page_b[0])
        t1.write("t", page_b[1], "a")  # writes the page t2 read
        t2.write("t", page_a[1], "b")  # writes the page t1 read
    except TransactionAbortedError as error:
        results.append(error.reason)
    results.extend(commit_outcomes(t1, t2))
    return results


def test_page_level_false_positive_unsafe(pdb):
    """Disjoint rows that are conflict-free at record granularity produce
    a dangerous-structure abort at page granularity — the Fig 6.4
    phenomenon in miniature."""
    assert "unsafe" in _cross_page_skew(pdb)

    # The identical schedule at record granularity commits everything.
    rdb = Database(EngineConfig(record_history=True))
    assert _cross_page_skew(rdb) == ["commit", "commit"]


def test_page_locking_prevents_phantom_skew_without_gap_locks(pdb):
    """Section 3.5: page-level coverage subsumes next-key locking.  At
    PAGE granularity, inserts into a shared page exclusive-lock it, so
    the second insert *waits* — driven through the non-blocking engine
    primitives here."""
    fill(pdb, "t", {1: "a"})
    t1 = pdb.begin("ssi")
    t2 = pdb.begin("ssi")
    results = []
    count1 = len(t1.scan("t"))
    count2 = len(t2.scan("t"))
    pdb.insert(t1, "t", 2, f"x{count1}")
    with pytest.raises(LockWaitRequired):
        # second insert blocks on the page lock (BDB-style coarse locks)
        pdb.insert(t2, "t", 3, f"y{count2}")
    try:
        pdb.commit(t1)
        results.append("commit")
    except TransactionAbortedError as error:
        results.append(error.reason)
    # t2 retries after the grant: page-level FCW (or unsafe) kills it.
    try:
        pdb.insert(t2, "t", 3, f"y{count2}")
        pdb.commit(t2)
        results.append("commit")
    except TransactionAbortedError as error:
        results.append(error.reason)
    assert results.count("commit") <= 1
    assert check_serializable(pdb.history).serializable


def test_serializable_under_page_granularity_randomized(pdb):
    from repro.sim.scheduler import SimConfig, Simulator
    from repro.workloads.smallbank import make_smallbank

    workload = make_smallbank(customers=30)
    workload.setup(pdb)
    Simulator(pdb, workload, "ssi", 6, SimConfig(duration=0.1, warmup=0.0)).run()
    assert check_serializable(pdb.history).serializable
