"""Runtime behaviour of the application-level fixes (Sections 2.6, 2.8.5).

The static analysis says materialisation/promotion make SmallBank
serializable at plain SI; these tests check the *runtime* mechanism: the
added writes turn the dangerous interleavings into first-committer-wins
conflicts, so at SI one transaction aborts with "conflict" instead of
both committing into a corrupt state.
"""

import pytest

from repro import Database, EngineConfig
from repro.errors import TransactionAbortedError
from repro.sgt.checker import check_serializable
from repro.sim.interleave import all_interleavings, run_interleaving
from repro.workloads.smallbank import (
    customer_name,
    setup_smallbank,
    transact_saving_variant,
    write_check_variant,
)

NAME = customer_name(0)


def setup(db):
    setup_smallbank(db, customers=2)


def _count_ops(factory):
    """Ops a program issues when run alone (dry run on a scratch DB)."""
    from repro.sim.direct import _apply_blocking

    db = Database(EngineConfig())
    setup(db)
    txn = db.begin("si")
    generator = factory()
    count = 0
    to_send = None
    try:
        while True:
            op = generator.send(to_send)
            count += 1
            to_send = _apply_blocking(db, txn, op)
    except StopIteration:
        pass
    txn.abort()
    return count


def steps_of(variant):
    """(program factories, step counts) for the Bal/WC/TS dangerous
    triple — the cycle of Fig 2.9 needs all three (Bal -> WC -> TS -> Bal)."""
    from repro.workloads.smallbank import balance

    def bal():
        return balance(NAME, variant)

    def wc():
        return write_check_variant(NAME, 1500.0, variant)

    def ts():
        return transact_saving_variant(NAME, -600.0, variant)

    programs = [bal, wc, ts]
    return programs, [_count_ops(factory) + 1 for factory in programs]


def sampled_violations(variant, samples=400, seed=11):
    """Run randomly sampled interleavings of Bal/WC/TS at plain SI;
    count non-serializable committed histories (the SmallBank anomaly:
    Bal reports a total implying no overdraft penalty while WC and TS
    interleave into a penalised final state)."""
    import random

    rng = random.Random(seed)
    programs, counts = steps_of(variant)
    slots = [index for index, count in enumerate(counts) for _ in range(count)]
    violations = 0
    for _round in range(samples):
        rng.shuffle(slots)
        outcome = run_interleaving(
            setup, programs, list(slots), isolation="si",
            engine_config=EngineConfig(record_history=True),
        )
        if not check_serializable(outcome.db.history).serializable:
            violations += 1
    return violations


def test_plain_smallbank_has_si_anomalies():
    assert sampled_violations("plain") > 0


@pytest.mark.parametrize(
    "variant",
    ["materialize_wt", "promote_wt", "materialize_bw", "promote_bw"],
)
def test_fixes_make_bal_wc_ts_serializable_at_si(variant):
    assert sampled_violations(variant) == 0


def test_promotion_uses_fcw_not_unsafe():
    """The fixed programs serialise through write locks and the
    first-committer-wins rule at plain SI — no SSI machinery involved."""
    from repro.errors import LockWaitRequired, UpdateConflictError

    db = Database(EngineConfig())
    setup(db)
    wc = db.begin("si")
    ts = db.begin("si")

    # WC (promoted): identity write on the Saving row.
    cid = db.read(wc, "account", NAME)
    saving = db.read_for_update(wc, "saving", cid)
    db.write(wc, "saving", cid, saving)  # the promotion write
    checking = db.read(wc, "checking", cid)

    # TS reads its snapshot, then blocks on the promoted row.
    ts_cid = db.read(ts, "account", NAME)
    ts_saving = db.read(ts, "saving", ts_cid)
    with pytest.raises(LockWaitRequired):
        db.write(ts, "saving", ts_cid, ts_saving - 600.0)

    # WC finishes; TS's retry dies on first-committer-wins.
    db.write(wc, "checking", cid, checking - 1500.0 - 1.0)
    db.commit(wc)
    with pytest.raises(UpdateConflictError):
        db.write(ts, "saving", ts_cid, ts_saving - 600.0)
    assert ts.is_aborted
    assert db.stats["aborts"]["unsafe"] == 0
    assert db.stats["aborts"]["conflict"] == 1
