"""Mixed isolation levels in one system (paper Sections 2.6.3 and 3.8)."""

import pytest

from repro import Database, EngineConfig
from repro.errors import LockWaitRequired, TransactionAbortedError

from tests.conftest import commit_outcomes, fill


class TestS2plWithSnapshotWriters:
    def test_s2pl_reader_blocks_si_writer(self, db):
        """Section 2.6.3: SI is implemented with write locks precisely so
        an S2PL transaction's shared locks constrain SI writers."""
        fill(db, "t", {1: "a"})
        locker = db.begin("s2pl")
        assert locker.read("t", 1) == "a"
        si_writer = db.begin("si")
        with pytest.raises(LockWaitRequired):
            db.write(si_writer, "t", 1, "b")
        locker.commit()
        db.write(si_writer, "t", 1, "b")
        si_writer.commit()

    def test_si_reader_ignores_s2pl_exclusive(self, db):
        fill(db, "t", {1: "a"})
        locker = db.begin("s2pl")
        locker.write("t", 1, "b")
        si_reader = db.begin("si")
        assert si_reader.read("t", 1) == "a"  # snapshot read, no block
        si_reader.commit()
        locker.commit()


class TestSiQueriesWithSsiUpdates:
    """Section 3.8: queries at SI among Serializable SI updates.

    Updates remain serializable among themselves (write skew prevented);
    queries pay no SIREAD overhead but may observe non-serializable
    states (tested in test_ssi.TestReadOnlyAnomaly)."""

    def test_updates_still_protected(self, db):
        fill(db, "acct", {"x": 50, "y": 50})
        query = db.begin("si")
        assert query.read("acct", "x") + query.read("acct", "y") == 100
        t1 = db.begin("ssi")
        t2 = db.begin("ssi")
        results = []
        for txn, key in ((t1, "x"), (t2, "y")):
            try:
                total = txn.read("acct", "x") + txn.read("acct", "y")
                txn.write("acct", key, total - 150)
            except TransactionAbortedError as error:
                results.append(error.reason)
        results.extend(commit_outcomes(t1, t2))
        assert "unsafe" in results
        query.commit()

    def test_si_query_takes_no_siread_locks(self, db):
        fill(db, "t", {i: i for i in range(10)})
        query = db.begin("si")
        query.scan("t")
        assert not db.locks.holds_any_siread(query)
        updater = db.begin("ssi")
        updater.scan("t")
        assert db.locks.holds_any_siread(updater)
        query.commit()
        updater.commit()

    def test_si_query_never_aborted_by_ssi_machinery(self, db):
        fill(db, "t", {"x": 0, "y": 0})
        query = db.begin("si")
        query.read("t", "x")
        query.read("t", "y")
        writer = db.begin("ssi")
        writer.write("t", "x", 1)
        writer.write("t", "y", 1)
        writer.commit()
        assert query.read("t", "x") == 0
        query.commit()  # no unsafe error possible
        assert db.stats["aborts"]["unsafe"] == 0


class TestAllFourLevelsTogether:
    def test_every_level_coexists(self, db):
        fill(db, "t", {i: 0 for i in range(8)})
        txns = {
            level: db.begin(level) for level in ("si", "ssi", "s2pl", "sgt")
        }
        for offset, (level, txn) in enumerate(txns.items()):
            txn.write("t", offset, level)
        outcomes = commit_outcomes(*txns.values())
        assert outcomes == ["commit"] * 4
        check = db.begin("si")
        assert check.read("t", 0) == "si"
        assert check.read("t", 3) == "sgt"
        check.commit()
