"""Lock-wait timeout tests (the innodb_lock_wait_timeout analogue)."""

import threading

import pytest

from repro import Database, EngineConfig
from repro.errors import LockTimeoutError, LockWaitRequired
from repro.locking.manager import RequestState

from tests.conftest import fill


def test_manager_cancel_request():
    from dataclasses import dataclass

    from repro.locking.manager import LockManager, record_resource
    from repro.locking.modes import LockMode

    @dataclass
    class Owner:
        id: int
        begin_ts: int = 0

    lm = LockManager()
    a, b, c = Owner(1), Owner(2), Owner(3)
    resource = record_resource("t", "k")
    lm.acquire(a, resource, LockMode.EXCLUSIVE)
    blocked_b = lm.acquire(b, resource, LockMode.EXCLUSIVE).request
    blocked_c = lm.acquire(c, resource, LockMode.EXCLUSIVE).request
    error = LockTimeoutError()
    assert lm.cancel_request(blocked_b, error)
    assert blocked_b.state is RequestState.DENIED
    assert blocked_b.error is error
    # Cancelling twice is a no-op; the queue stays coherent.
    assert not lm.cancel_request(blocked_b, error)
    lm.release_all(a)
    assert blocked_c.state is RequestState.GRANTED


def test_engine_timeout_dooms_waiter():
    db = Database(EngineConfig(lock_timeout=1.0))
    fill(db, "t", {1: "a"})
    holder = db.begin("si")
    holder.write("t", 1, "b")
    waiter = db.begin("si")
    with pytest.raises(LockWaitRequired) as wait:
        db.write(waiter, "t", 1, "c")
    assert db.cancel_lock_request(wait.value.request)
    with pytest.raises(LockTimeoutError):
        db.write(waiter, "t", 1, "c")  # doomed: aborts on next op
    assert waiter.is_aborted
    assert db.stats["aborts"]["timeout"] == 1
    holder.commit()


def test_threaded_timeout_fires():
    db = Database(EngineConfig(lock_timeout=0.1))
    fill(db, "t", {1: "a"})
    holder = db.begin("si")
    holder.write("t", 1, "b")  # holds the exclusive lock, never commits

    outcome = {}

    def blocked_client():
        waiter = db.begin("si")
        try:
            waiter.write("t", 1, "c")
            outcome["result"] = "wrote"
        except LockTimeoutError:
            outcome["result"] = "timeout"

    thread = threading.Thread(target=blocked_client)
    thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert outcome["result"] == "timeout"
    holder.abort()


def test_simulated_timeout_counted():
    from repro.sim.ops import ReadForUpdate, Write, Compute
    from repro.sim.scheduler import SimConfig, Simulator
    from repro.sim.workload import Mix, Workload

    def setup(db):
        db.create_table("hot")
        db.load("hot", [(0, 0)])

    def slow_update(rng):
        value = yield ReadForUpdate("hot", 0)
        yield Compute(50_000)  # hold the lock for ~0.1 simulated seconds
        yield Write("hot", 0, value + 1)

    workload = Workload("hot", setup, Mix([("upd", 1.0, slow_update)]))
    db = Database(EngineConfig(lock_timeout=0.01))
    workload.setup(db)
    result = Simulator(db, workload, "si", 4,
                       SimConfig(duration=0.5, warmup=0.0)).run()
    assert result.aborts["timeout"] > 0
    assert result.commits > 0


def test_no_timeout_by_default():
    assert EngineConfig().lock_timeout is None
