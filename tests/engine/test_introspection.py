"""Database.describe() and version GC in long-running simulations."""

from repro import Database, EngineConfig
from repro.sim.scheduler import SimConfig, run_simulation
from repro.workloads.smallbank import make_smallbank

from tests.conftest import fill


def test_describe_snapshot():
    db = Database(EngineConfig())
    fill(db, "t", {1: "a", 2: "b"})
    db.create_index("idx", "t", key_func=lambda pk, row: row)
    txn = db.begin("ssi")
    txn.write("t", 1, "A")
    txn.commit()
    info = db.describe()
    assert info["tables"]["t"]["keys"] == 2
    assert info["tables"]["t"]["versions"] == 3  # two loads + one commit
    assert info["indexes"]["idx"] == {"table": "t", "unique": False}
    assert info["stats"]["commits"] == 1
    assert info["active_transactions"] == 0
    assert info["clock"] > 0


def test_vacuum_bounds_version_growth_in_simulation():
    workload = make_smallbank(customers=20)
    no_gc = run_simulation(
        workload, "ssi", 4,
        sim_config=SimConfig(duration=0.3, warmup=0.0, vacuum_interval=0.0),
    )
    db = Database(EngineConfig())
    workload.setup(db)
    from repro.sim.scheduler import Simulator
    sim = Simulator(db, workload, "ssi", 4,
                    SimConfig(duration=0.3, warmup=0.0, vacuum_interval=0.05))
    result = sim.run()
    assert result.commits > 0
    info = db.describe()
    # With periodic vacuum, chains stay near one version per key.
    checking = info["tables"]["checking"]
    assert checking["versions"] <= checking["keys"] * 3
    del no_gc  # the un-vacuumed run exists to prove both paths execute
