"""Threaded stress tests for the fine-grained latch hierarchy (PR 5).

Real OS threads hammer one database through the blocking client API and
the run is audited afterwards: workload invariants over the final table
contents, the MVSG serializability oracle over the recorded history, and
lock-table cleanliness (a latching race typically *leaks* — a lost
SIREAD sentinel, an orphaned owner entry — rather than crashes).

Also here: the process-parallel experiment runner's bit-identity
guarantee, and unit tests for the debug latch-order checker.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import Database, EngineConfig
from repro.bench.harness import Experiment, run_experiment
from repro.engine import latches
from repro.engine.latches import (
    CheckedLatch,
    LatchOrderError,
    assert_no_latches_held,
    held_latches,
)
from repro.exec import final_rows, run_threaded_stress
from repro.sim.scheduler import SimConfig
from repro.workloads import sibench
from repro.workloads.smallbank import CHECKING, SAVING, make_smallbank

LEVELS = ("si", "ssi", "s2pl")
SEED = 9137


# ------------------------------------------------------------- smallbank


class TestThreadedSmallbank:
    """4 threads x 50 txns per isolation level (600 transactions total,
    the PR's 500+ race-clean requirement)."""

    @pytest.mark.parametrize("level", LEVELS)
    def test_race_clean(self, level):
        customers = 60  # small table -> real contention
        checked = level in ("ssi", "s2pl")

        def structural_invariant(db):
            saving = final_rows(db, SAVING)
            checking = final_rows(db, CHECKING)
            # no lost or phantom rows, no torn (non-numeric) balances
            assert sorted(saving) == list(range(customers))
            assert sorted(checking) == list(range(customers))
            for balance in list(saving.values()) + list(checking.values()):
                assert isinstance(balance, (int, float))

        result = run_threaded_stress(
            make_smallbank(customers=customers),
            level=level,
            threads=4,
            txns_per_thread=50,
            seed=SEED,
            check_serializability=checked,
            invariant=structural_invariant,
        )
        assert result.commits + result.aborts == result.txns == 200
        assert result.commits > 0
        assert result.lock_table_clean, result.describe()
        assert result.residual_suspended == 0
        if checked:
            # serializable levels must produce a serializable history
            assert result.serializable, result.serialization_detail

    def test_no_lost_sireads(self):
        """After an SSI run quiesces, no SIREAD sentinel survives: the
        per-owner SIREAD index and the striped table are both empty."""
        seen = {}

        def audit(db):
            seen["siread_counts"] = dict(db.locks._siread_counts)
            seen["by_owner"] = len(db.locks._by_owner)
            seen["granted"] = db.locks.table_size()

        result = run_threaded_stress(
            make_smallbank(customers=40),
            level="ssi",
            threads=4,
            txns_per_thread=40,
            seed=SEED,
            invariant=audit,
        )
        assert result.lock_table_clean, result.describe()
        assert seen == {"siread_counts": {}, "by_owner": 0, "granted": 0}

    def test_no_lost_sireads_under_escalation(self):
        """Same leak audit with a budget tiny enough that the run lives
        in a permanent escalation storm: promoted coarse sentinels,
        covered re-reads and weighted drops must all settle to zero
        (``residual_siread`` is the weighted count), and the committed
        history must still pass the MVSG oracle — escalation only ever
        adds conservative aborts."""
        result = run_threaded_stress(
            sibench.make_sibench(items=30, queries_per_update=1.0),
            level="ssi",
            threads=4,
            txns_per_thread=30,
            seed=SEED,
            config=EngineConfig(record_history=True, siread_budget=40),
            check_serializability=True,
        )
        assert result.serializable, result.serialization_detail
        assert result.residual_siread == 0
        assert result.lock_table_clean, result.describe()


# --------------------------------------------------------------- sibench


class TestThreadedSibench:
    @pytest.mark.parametrize("level", LEVELS)
    def test_counter_invariant(self, level):
        """Every committed update increments exactly one row by one, so
        the table sum must equal the committed-update count — a lost
        update (or a torn read-modify-write) breaks the equality."""
        outcome = {}

        def conservation(db):
            outcome["total"] = sum(final_rows(db, sibench.TABLE).values())

        result = run_threaded_stress(
            sibench.make_sibench(items=30),
            level=level,
            threads=4,
            txns_per_thread=40,
            seed=SEED,
            invariant=conservation,
        )
        assert result.lock_table_clean, result.describe()
        assert outcome["total"] == result.commits_by_name.get("update", 0)


# ------------------------------------------------------ parallel grid


class TestParallelExperimentGrid:
    def test_parallel_matches_sequential(self):
        """parallel=4 must reproduce the sequential grid bit-for-bit:
        every cell is independently seeded from sim_config.seed."""
        experiment = Experiment(
            exp_id="test-grid",
            title="parallel-runner identity check",
            workload_factory=lambda: make_smallbank(customers=50),
            engine_config_factory=lambda: EngineConfig(),
            sim_config=SimConfig(duration=0.05, warmup=0.01, seed=SEED),
            levels=("si", "ssi"),
            mpls=(2, 5),
        )
        sequential = run_experiment(experiment, parallel=1)
        parallel = run_experiment(experiment, parallel=4)
        assert json.dumps(sequential.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_levels_and_mpls_overrides_respected(self):
        experiment = Experiment(
            exp_id="test-grid-override",
            title="override check",
            workload_factory=lambda: make_smallbank(customers=50),
            engine_config_factory=lambda: EngineConfig(),
            sim_config=SimConfig(duration=0.04, warmup=0.01, seed=SEED),
        )
        result = run_experiment(
            experiment, levels=("ssi",), mpls=(2, 4), parallel=2
        )
        assert list(result.series) == ["ssi"]
        assert [run.mpl for run in result.series["ssi"]] == [2, 4]


# ------------------------------------------------------- latch checker


class TestCheckedLatch:
    def test_ascending_order_allowed(self):
        low = CheckedLatch("txn", 10)
        high = CheckedLatch("obs", 80)
        with low, high:
            assert [latch.name for latch in held_latches()] == ["txn", "obs"]
        assert held_latches() == []

    def test_descending_order_raises(self):
        low = CheckedLatch("txn", 10)
        high = CheckedLatch("obs", 80)
        with pytest.raises(LatchOrderError):
            with high, low:
                pass  # pragma: no cover
        # the failed acquire must not leave the stack dirty
        assert held_latches() == [high] or held_latches() == []

    def test_reentrant(self):
        latch = CheckedLatch("tracker", 20)
        with latch, latch:
            assert held_latches() == [latch]
        assert held_latches() == []

    def test_same_rank_requires_licence(self):
        stripe_a = CheckedLatch("lock-stripe[0]", 60)
        stripe_b = CheckedLatch("lock-stripe[1]", 60)
        with pytest.raises(LatchOrderError):
            with stripe_a, stripe_b:
                pass  # pragma: no cover

    def test_queue_latch_licences_multiple_stripes(self):
        queue = CheckedLatch("lock-queue", 50)
        stripe_a = CheckedLatch("lock-stripe[0]", 60)
        stripe_b = CheckedLatch("lock-stripe[1]", 60)
        with queue, stripe_a, stripe_b:
            assert len(held_latches()) == 3
        assert held_latches() == []

    def test_assert_no_latches_held(self):
        latch = CheckedLatch("commit", 30)
        assert_no_latches_held("outside")  # no-op with nothing held
        with latch:
            with pytest.raises(LatchOrderError):
                assert_no_latches_held("lock wait")


class TestLatchDebugIntegration:
    def test_engine_runs_clean_under_checked_latches(self, monkeypatch):
        """With REPRO_LATCH_DEBUG the whole engine runs on CheckedLatch:
        a threaded stress run doubles as a latch-order proof."""
        monkeypatch.setenv("REPRO_LATCH_DEBUG", "1")
        assert latches.debug_enabled()
        result = run_threaded_stress(
            make_smallbank(customers=40),
            level="ssi",
            threads=3,
            txns_per_thread=20,
            seed=SEED,
        )
        assert result.commits > 0
        assert result.lock_table_clean, result.describe()
        assert held_latches() == []

    def test_make_latch_returns_plain_rlock_in_production(self, monkeypatch):
        monkeypatch.delenv("REPRO_LATCH_DEBUG", raising=False)
        latch = latches.make_latch("txn")
        assert isinstance(latch, type(threading.RLock()))
        monkeypatch.setenv("REPRO_LATCH_DEBUG", "1")
        checked = latches.make_latch("txn")
        assert isinstance(checked, CheckedLatch)
        assert checked.rank == latches.RANKS["txn"]
