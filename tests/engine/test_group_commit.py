"""Group commit (PR 9): batched certification and group WAL flush.

Covers the :class:`~repro.engine.groupcommit.CommitBatcher` contracts:
multi-member batches form under concurrency, intra-batch dangerous
structures abort the later arrival, doomed members abort inside their
group, non-certifying empty-write transactions bypass the batcher,
sessions ride groups while suspended, and the whole pipeline stays
MVSG-serializable with clean lock tables.
"""

import threading

import pytest

from repro import Database, EngineConfig
from repro.errors import (
    TransactionAbortedError,
    TransactionStateError,
    UnsafeError,
)
from repro.sgt.checker import check_serializable
from repro.wal.log import WriteAheadLog


def make_db(wal=None, **overrides):
    defaults = dict(
        group_commit=True,
        group_commit_max=8,
        group_commit_wait_us=0,
        record_history=True,
    )
    defaults.update(overrides)
    db = Database(EngineConfig(**defaults), wal=wal)
    db.create_table("t")
    return db


def group_counters(db):
    return db.metrics.snapshot()["counters"]["group_commit"]


class TestBatching:
    def test_single_committer_runs_in_batch_of_one(self):
        db = make_db()
        txn = db.begin("ssi")
        txn.write("t", "a", 1)
        txn.commit()
        counters = group_counters(db)
        assert counters["batches"] == 1
        assert counters["batched_txns"] == 1
        check = db.begin("si")
        assert check.read("t", "a") == 1
        check.commit()

    def test_concurrent_committers_share_batches(self):
        db = make_db(group_commit_wait_us=20000)
        threads = 8
        barrier = threading.Barrier(threads)
        failures = []

        def worker(i):
            barrier.wait()
            try:
                for k in range(5):
                    txn = db.begin("ssi")
                    txn.write("t", (i, k), k)
                    txn.commit()
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert not failures
        counters = group_counters(db)
        assert counters["batched_txns"] == threads * 5
        # The collect window is 20 ms wide: real multi-member batches
        # must have formed (strictly fewer batches than commits).
        assert counters["batches"] < counters["batched_txns"]
        assert check_serializable(db.history).serializable
        assert db.locks.table_size() == 0

    def test_batch_size_histogram_recorded(self):
        db = make_db()
        for i in range(3):
            txn = db.begin("ssi")
            txn.write("t", i, i)
            txn.commit()
        histogram = db.metrics.snapshot()["histograms"][
            "group_commit_batch_size"
        ]
        assert histogram["count"] == 3

    def test_group_commit_off_means_no_batcher(self):
        db = Database(EngineConfig())
        assert db._batcher is None


class TestGroupWalFlush:
    def test_one_flush_per_batch(self):
        wal = WriteAheadLog()
        db = make_db(wal=wal, group_commit_wait_us=20000)
        threads = 4
        barrier = threading.Barrier(threads)

        def worker(i):
            barrier.wait()
            for k in range(6):
                txn = db.begin("ssi")
                txn.write("t", (i, k), k)
                txn.commit()

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        counters = group_counters(db)
        commits = db.metrics.snapshot()["counters"]["engine"]["commits"]
        assert commits == threads * 6
        # Flush count tracks batches (plus any batch that logged nothing),
        # not commits.
        assert wal.stats["flushes"] <= counters["batches"]
        assert wal.stats["flushes"] < commits

    def test_read_only_members_do_not_flush(self):
        wal = WriteAheadLog()
        db = make_db(wal=wal)
        txn = db.begin("ssi")
        txn.write("t", "a", 1)
        txn.commit()
        flushes = wal.stats["flushes"]
        reader = db.begin("ssi")
        assert reader.read("t", "a") == 1
        reader.commit()
        assert wal.stats["flushes"] == flushes


class TestIntraBatchCertification:
    def test_dangerous_structure_across_batch_members(self):
        """Classic write skew: T1 reads x writes y, T2 reads y writes x,
        both commit concurrently.  Whatever the batch composition, at
        most one may commit; the history stays serializable."""
        outcomes = []
        for _attempt in range(10):
            db = make_db(group_commit_wait_us=20000)
            db.load("t", [("x", 0), ("y", 0)])
            barrier = threading.Barrier(2)
            results = {}

            def worker(name, read_key, write_key):
                txn = db.begin("ssi")
                txn.read("t", read_key)
                txn.write("t", write_key, 1)
                barrier.wait()
                try:
                    txn.commit()
                    results[name] = "committed"
                except TransactionAbortedError:
                    results[name] = "aborted"

            t1 = threading.Thread(target=worker, args=("t1", "x", "y"))
            t2 = threading.Thread(target=worker, args=("t2", "y", "x"))
            t1.start(); t2.start(); t1.join(); t2.join()
            assert check_serializable(db.history).serializable
            db.cleanup_suspended()  # release retained SIREADs
            assert db.locks.table_size() == 0
            outcomes.append(tuple(sorted(results.values())))
        # SSI admits at most one of the pair whenever both pivots formed.
        assert all(
            outcome in (("aborted", "committed"), ("committed", "committed"))
            for outcome in outcomes
        )
        # With a 20 ms collect window the two commits share a batch (or
        # race closely); at least one attempt must show the abort path.
        assert ("aborted", "committed") in outcomes

    def test_doom_before_submit_aborts_without_batching(self):
        """A transaction doomed before its commit call aborts on the
        pre-submission doom check — it never occupies a group slot."""
        db = make_db()
        victim = db.begin("ssi")
        victim.write("t", "v", 1)
        victim.doom_error = UnsafeError("doomed by test", txn_id=victim.id)
        with pytest.raises(UnsafeError):
            victim.commit()
        assert victim.is_aborted
        check = db.begin("si")
        assert check.get("t", "v") is None
        check.commit()
        assert group_counters(db)["batched_txns"] == 0

    def test_doomed_member_aborts_inside_its_group(self):
        """Doom that lands *after* submission but before the leader's
        pass: the leader takes the abort decision inside the batch and
        the ticket carries the doom error out."""
        db = make_db()
        victim = db.begin("ssi")
        victim.write("t", "v", 1)
        ticket, is_leader = db._batcher.submit(victim)
        assert is_leader
        victim.doom_error = UnsafeError("doomed in flight", txn_id=victim.id)
        db._batcher.lead()
        assert ticket.resolved
        assert isinstance(ticket.error, UnsafeError)
        assert victim.is_aborted
        assert group_counters(db)["batch_aborts"] == 1
        check = db.begin("si")
        assert check.get("t", "v") is None
        check.commit()

    def test_already_finished_member_raises_state_error(self):
        db = make_db()
        txn = db.begin("ssi")
        txn.write("t", "a", 1)
        txn.commit()
        with pytest.raises(TransactionStateError):
            db.commit(txn)

    def test_first_committer_wins_still_enforced(self):
        """FCW is checked at write time (exclusive locks), so two
        writers of one key serialize before the batcher ever sees them —
        the batch path must preserve the abort."""
        db = make_db(lock_timeout=0.5)
        db.load("t", [("z", 0)])
        a = db.begin("ssi")
        b = db.begin("ssi")
        b.get("t", "z")  # pin b's (deferred) snapshot before a commits
        a.write("t", "k", "a")
        a.commit()
        with pytest.raises(TransactionAbortedError):
            b.write("t", "k", "b")
            b.commit()
        check = db.begin("si")
        assert check.read("t", "k") == "a"
        check.commit()


class TestBypass:
    def test_si_writers_still_batch(self):
        """SI doesn't certify but does write — its WAL flush amortises
        through the group too."""
        db = make_db()
        txn = db.begin("si")
        txn.write("t", "a", 1)
        txn.commit()
        assert group_counters(db)["batched_txns"] == 1

    def test_read_only_certifying_txn_bypasses_nothing_it_needs(self):
        """A certifying reader goes through the batcher (its SIREADs
        feed later members' certification)."""
        db = make_db()
        seed = db.begin("ssi")
        seed.write("t", "a", 1)
        seed.commit()
        reader = db.begin("ssi")
        assert reader.read("t", "a") == 1
        reader.commit()
        assert reader.is_committed

    def test_non_certifying_empty_write_bypasses_batcher(self):
        """An SI read-only transaction neither certifies nor writes:
        nothing to batch."""
        db = make_db()
        txn = db.begin("si")
        txn.get("t", "missing")
        txn.commit()
        assert group_counters(db)["batched_txns"] == 0


class TestSessionsRideGroups:
    def test_session_commit_suspends_on_group(self):
        """Session committers must not park worker threads: more
        sessions than workers all commit through groups concurrently."""
        from repro.session import SessionScheduler
        from repro.sim.ops import Write

        db = make_db(group_commit_wait_us=5000)
        scheduler = SessionScheduler(db, workers=2)
        sessions = 12
        done = threading.Event()
        state = {"left": sessions, "errors": []}
        lock = threading.Lock()

        def drive(index):
            session = scheduler.session()

            def program():
                yield Write("t", ("s", index), index)

            def on_done(_result, error):
                with lock:
                    if error is not None:
                        state["errors"].append(error)
                    state["left"] -= 1
                    if state["left"] == 0:
                        done.set()
                session.close()

            session.run_program(program(), "ssi", on_done=on_done)

        for index in range(sessions):
            drive(index)
        assert done.wait(timeout=30), "sessions wedged"
        scheduler.shutdown()
        assert not state["errors"], state["errors"]
        commits = db.metrics.snapshot()["counters"]["engine"]["commits"]
        assert commits == sessions
        assert check_serializable(db.history).serializable
        assert db.locks.table_size() == 0


class TestLatchDebugCompat:
    def test_group_commit_under_checked_latches(self, monkeypatch):
        """REPRO_LATCH_DEBUG=1 swaps in rank-checking latches; the
        batcher's hoisted tracker+commit section must satisfy them."""
        monkeypatch.setenv("REPRO_LATCH_DEBUG", "1")
        db = make_db(group_commit_wait_us=10000)
        barrier = threading.Barrier(4)

        def worker(i):
            barrier.wait()
            for k in range(4):
                txn = db.begin("ssi")
                txn.write("t", (i, k), k)
                txn.commit()

        workers = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert db.metrics.snapshot()["counters"]["engine"]["commits"] == 16
        assert check_serializable(db.history).serializable
