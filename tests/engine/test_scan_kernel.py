"""Engine-level behaviour of the chunked scan kernel (PR 10).

Covers what the storage tests cannot: the page-granularity SIREAD
threshold (bounded lock-table cost, phantom detection through coarse
probes), the incremental vacuum's ``vacuum_pause_events`` counter, and
``scan_prefix`` — its first-N semantics and the cut-point guarantee
(inserts at or below the cut raise the rw edge, inserts past the cut
cannot change the answer and raise none).
"""

from __future__ import annotations

import pytest

from repro.engine.config import EngineConfig
from repro.engine.database import Database

from tests.conftest import fill


def make_db(**overrides) -> Database:
    return Database(EngineConfig(record_history=True, **overrides))


def fill_range(db, table, n, step=10):
    fill(db, table, {i * step: f"v{i}" for i in range(n)})


class TestVacuumPauseEvents:
    def test_counter_counts_latch_drops(self):
        db = make_db(vacuum_chunk_size=16)
        fill_range(db, "t", 100, step=1)
        writer = db.begin("si")
        for key in range(100):
            db.write(writer, "t", key, "updated")
        writer.commit()
        removed = db.vacuum()
        assert removed == 100  # every loaded version is below the horizon
        # 100 chains / 16 per hold = 7 holds -> 6 pauses.
        assert db.stats["vacuum_pause_events"] == 6

    def test_single_hold_config_never_pauses(self):
        db = make_db(vacuum_chunk_size=0)
        fill_range(db, "t", 50, step=1)
        writer = db.begin("si")
        for key in range(50):
            db.write(writer, "t", key, "updated")
        writer.commit()
        assert db.vacuum() == 50
        assert db.stats["vacuum_pause_events"] == 0


class TestPageThreshold:
    def test_wide_scan_lock_count_bounded(self):
        """A record-granularity SSI scan crossing the threshold covers
        leaf pages, not rows: lock-table size stays ~rows/page_order
        instead of ~2x rows."""
        db = make_db(scan_page_lock_threshold=8)
        fill_range(db, "t", 200, step=1)
        reader = db.begin("ssi")
        rows = db.scan(reader, "t")
        assert len(rows) == 200
        paged = db.locks.table_size()
        assert paged < 40  # ~200/64-order leaves, not 401 rec+gap locks
        db.abort(reader)
        db.cleanup_suspended()

        record_db = make_db(scan_page_lock_threshold=None)
        fill_range(record_db, "t", 200, step=1)
        reader = record_db.begin("ssi")
        record_db.scan(reader, "t")
        assert record_db.locks.table_size() > 200
        db.abort(reader)

    def test_narrow_scan_stays_record_granular(self):
        db = make_db(scan_page_lock_threshold=50)
        fill_range(db, "t", 10, step=1)
        reader = db.begin("ssi")
        db.scan(reader, "t")
        assert not reader.coarse_sireads
        db.abort(reader)

    def test_insert_after_page_scan_raises_rw_edge(self):
        """Phantom protection survives the coarsening: a writer inserting
        into the scanned range probes the reader's page SIREADs."""
        db = make_db(scan_page_lock_threshold=4)
        fill_range(db, "t", 20, step=10)
        reader = db.begin("ssi")
        db.scan(reader, "t")
        assert reader.coarse_sireads
        writer = db.begin("ssi")
        db.insert(writer, "t", 55, "phantom")
        writer.commit()
        assert reader.out_conflict, "page SIREAD missed the phantom insert"
        assert writer.in_conflict
        db.abort(reader)


class TestScanPrefixSemantics:
    def test_first_n_matches_scan_with_limit(self):
        db = make_db()
        fill_range(db, "t", 12)
        txn = db.begin("ssi")
        assert db.scan_prefix(txn, "t", limit=5) == db.scan(
            txn, "t", limit=5
        )
        db.abort(txn)

    def test_limit_zero_returns_nothing(self):
        db = make_db()
        fill_range(db, "t", 5)
        txn = db.begin("ssi")
        assert db.scan_prefix(txn, "t", limit=0) == []
        db.abort(txn)

    def test_limit_beyond_range_returns_all(self):
        db = make_db()
        fill_range(db, "t", 4)
        txn = db.begin("ssi")
        rows = db.scan_prefix(txn, "t", limit=100)
        assert [key for key, _ in rows] == [0, 10, 20, 30]
        db.abort(txn)

    def test_skips_invisible_rows_when_counting(self):
        """Tombstoned rows are examined (and locked) but do not count
        toward the limit — the result is the first N *visible* rows."""
        db = make_db()
        fill_range(db, "t", 6)
        deleter = db.begin("si")
        db.delete(deleter, "t", 10)
        deleter.commit()
        txn = db.begin("ssi")
        rows = db.scan_prefix(txn, "t", limit=3)
        assert [key for key, _ in rows] == [0, 20, 30]
        db.abort(txn)

    def test_own_write_fallback_sees_pending_insert(self):
        db = make_db()
        fill_range(db, "t", 4)
        txn = db.begin("ssi")
        db.insert(txn, "t", 15, "mine")
        rows = db.scan_prefix(txn, "t", limit=3)
        assert [key for key, _ in rows] == [0, 10, 15]
        db.abort(txn)


class TestScanPrefixCutPoint:
    """The satellite's interleaving guarantee: reader takes the first 3
    of {10,20,30,40,50}; a concurrent insert at or below the cut key (30)
    lands in a locked gap and raises the rw-antidependency, while an
    insert strictly past the cut leaves the reader untouched — it cannot
    change what "the first 3 visible rows" were."""

    def setup_reader(self):
        db = make_db()
        fill(db, "t", {10: "a", 20: "b", 30: "c", 40: "d", 50: "e"})
        reader = db.begin("ssi")
        rows = db.scan_prefix(reader, "t", limit=3)
        assert [key for key, _ in rows] == [10, 20, 30]
        return db, reader

    @pytest.mark.parametrize("phantom_key", [5, 15, 25, 30 - 1])
    def test_insert_at_or_below_cut_is_detected(self, phantom_key):
        db, reader = self.setup_reader()
        writer = db.begin("ssi")
        db.insert(writer, "t", phantom_key, "phantom")
        writer.commit()
        assert reader.out_conflict, (
            f"insert of {phantom_key} below the cut point must raise the "
            "reader->writer rw edge"
        )
        assert writer.in_conflict
        db.abort(reader)

    @pytest.mark.parametrize("phantom_key", [35, 45, 60])
    def test_insert_past_cut_is_admitted(self, phantom_key):
        db, reader = self.setup_reader()
        writer = db.begin("ssi")
        db.insert(writer, "t", phantom_key, "later")
        writer.commit()
        assert not reader.out_conflict, (
            f"insert of {phantom_key} past the cut cannot affect the "
            "prefix and must not raise an edge"
        )
        reader.commit()

    def test_exhausted_prefix_locks_boundary_gap(self):
        """When the range runs out before the limit, the boundary gap is
        locked exactly like a full scan — appends are still phantoms."""
        db, reader = self.setup_reader()
        rows = db.scan_prefix(reader, "t", lo=40, hi=None, limit=10)
        assert [key for key, _ in rows] == [40, 50]
        writer = db.begin("ssi")
        db.insert(writer, "t", 70, "append")
        writer.commit()
        assert reader.out_conflict
        db.abort(reader)
