"""Suspended-transaction lifecycle and cleanup tests (Sections 3.3,
4.3.1, 4.6.1, 4.8)."""

import pytest

from repro import Database, EngineConfig

from tests.conftest import fill


def make_db(eager: bool, threshold: int = 4):
    return Database(
        EngineConfig(eager_cleanup=eager, cleanup_threshold=threshold)
    )


def committed_reader(db, keys=("x",)):
    txn = db.begin("ssi")
    for key in keys:
        txn.read("t", key)
    txn.commit()
    return txn


class TestEagerCleanup:
    def test_no_overlap_means_no_retention(self):
        db = make_db(eager=True)
        fill(db, "t", {"x": 0})
        for _ in range(5):
            committed_reader(db)
        assert db.suspended_count() == 0

    def test_overlapping_txn_pins_suspended_records(self):
        db = make_db(eager=True)
        fill(db, "t", {"x": 0, "y": 0})
        pin = db.begin("ssi")
        pin.read("t", "y")  # allocates the pinning snapshot
        readers = [committed_reader(db) for _ in range(3)]
        assert db.suspended_count() == 3
        assert all(txn.suspended for txn in readers)
        pin.commit()
        assert db.suspended_count() == 0
        assert not any(txn.suspended for txn in readers)

    def test_siread_locks_released_at_cleanup(self):
        db = make_db(eager=True)
        fill(db, "t", {"x": 0, "y": 0})
        pin = db.begin("ssi")
        pin.read("t", "y")
        reader = committed_reader(db)
        assert db.locks.holds_any_siread(reader)
        pin.commit()
        assert not db.locks.holds_any_siread(reader)


class TestLazyCleanup:
    def test_retained_until_threshold(self):
        db = make_db(eager=False, threshold=4)
        fill(db, "t", {"x": 0})
        for _ in range(4):
            committed_reader(db)
        # lazy: still within threshold, nothing cleaned
        assert db.suspended_count() == 4
        committed_reader(db)  # pushes past the threshold
        assert db.suspended_count() <= 1

    def test_manual_cleanup(self):
        db = make_db(eager=False, threshold=100)
        fill(db, "t", {"x": 0})
        for _ in range(5):
            committed_reader(db)
        cleaned = db.cleanup_suspended()
        assert cleaned == 5
        assert db.suspended_count() == 0


class TestRegistryHygiene:
    def test_registry_does_not_leak(self):
        db = make_db(eager=True)
        fill(db, "t", {"x": 0})
        for _ in range(20):
            committed_reader(db)
        assert len(db._registry) == 0
        assert db.locks.table_size() == 0

    def test_aborted_txns_fully_removed(self):
        db = make_db(eager=True)
        fill(db, "t", {"x": 0})
        txn = db.begin("ssi")
        txn.read("t", "x")
        txn.abort()
        assert txn.id not in db._registry
        assert not db.locks.holds_any_siread(txn)

    def test_version_creator_lookup_survives_retention(self):
        """A suspended writer must stay findable for newer-version
        conflict marking (Fig 3.4 lines 8-9)."""
        db = make_db(eager=True)
        fill(db, "t", {"x": 0, "y": 0})
        pin = db.begin("ssi")
        pin.read("t", "y")
        writer = db.begin("ssi")
        writer.read("t", "y")  # gives it a SIREAD so it suspends
        writer.write("t", "x", 1)
        writer.commit()
        assert writer.id in db._registry
        # pin now reads x and must see the rw conflict to writer
        before = db.tracker.stats["marked"]
        pin.read("t", "x")
        assert db.tracker.stats["marked"] > before
        pin.abort()
