"""Pairwise mixed-isolation conflict semantics (Sections 2.6.3 / 3.8).

Every reader-level x writer-level combination over a single record: the
reader reads, the writer writes the same key, and the rw edge must land
in exactly one place — the SSI tracker, the SGT certifier, the
mixed-edges-dropped counter — or nowhere (SI readers take no read lock),
or the writer must block outright (S2PL readers hold shared locks).
"""

import pytest

from repro.errors import LockWaitRequired
from repro.obs.trace import EventType

from tests.conftest import fill

#: (reader_level, writer_level) -> where the rw edge lands:
#:   "tracker"  — SSI conflict slots (both ends share the tracker)
#:   "certifier"— SGT serialization graph (an SGT endpoint wins precedence)
#:   "dropped"  — counted in mixed_edges_dropped (no policy can record it)
#:   "none"     — no edge exists (SI readers take no read lock)
#:   "blocks"   — the write waits (S2PL shared locks block writers)
EXPECTED = {}
for writer in ("s2pl", "si", "ssi", "ssi-ro", "sgt"):
    EXPECTED[("si", writer)] = "none"
    EXPECTED[("s2pl", writer)] = "blocks"
for reader in ("ssi", "ssi-ro"):
    EXPECTED[(reader, "ssi")] = "tracker"
    EXPECTED[(reader, "ssi-ro")] = "tracker"
    EXPECTED[(reader, "sgt")] = "certifier"
    EXPECTED[(reader, "si")] = "dropped"
    EXPECTED[(reader, "s2pl")] = "dropped"
EXPECTED[("sgt", "ssi")] = "certifier"
EXPECTED[("sgt", "ssi-ro")] = "certifier"
EXPECTED[("sgt", "sgt")] = "certifier"
EXPECTED[("sgt", "si")] = "dropped"
EXPECTED[("sgt", "s2pl")] = "dropped"


@pytest.mark.parametrize("reader_level,writer_level", sorted(EXPECTED))
def test_pairwise_edge_routing(db, reader_level, writer_level):
    expected = EXPECTED[(reader_level, writer_level)]
    fill(db, "t", {1: "a"})
    reader = db.begin(reader_level)
    assert reader.read("t", 1) == "a"
    writer = db.begin(writer_level)

    marked_before = db.tracker.stats["marked"]
    edges_before = db.certifier.stats["edges"]
    dropped_before = db.stats["mixed_edges_dropped"]

    if expected == "blocks":
        with pytest.raises(LockWaitRequired):
            db.write(writer, "t", 1, "b")
        writer.abort()
        reader.abort()
        return

    writer.write("t", 1, "b")

    deltas = {
        "tracker": db.tracker.stats["marked"] - marked_before,
        "certifier": db.certifier.stats["edges"] - edges_before,
        "dropped": db.stats["mixed_edges_dropped"] - dropped_before,
    }
    expected_deltas = {
        bucket: (1 if bucket == expected else 0) for bucket in deltas
    }
    assert deltas == expected_deltas
    reader.abort()
    writer.abort()


class TestMixedEdgeTelemetry:
    def test_counter_and_trace_event(self, db):
        """A dropped cross-level edge is counted and, with tracing on,
        emits a mixed_edge_dropped event naming both levels."""
        trace = db.enable_tracing()
        fill(db, "t", {1: "a"})
        reader = db.begin("ssi")
        reader.read("t", 1)
        writer = db.begin("si")
        writer.write("t", 1, "b")

        assert db.stats["mixed_edges_dropped"] == 1
        events = trace.events(etype=EventType.MIXED_EDGE)
        assert len(events) == 1
        event = events[0]
        assert event.txn_id == reader.id
        assert event.data["peer"] == writer.id
        assert event.data["reader_level"] == "ssi"
        assert event.data["writer_level"] == "si"
        reader.abort()
        writer.abort()

    def test_no_trace_no_crash(self, db):
        """Without tracing the counter still increments (guarded emit)."""
        fill(db, "t", {1: "a"})
        reader = db.begin("sgt")
        reader.read("t", 1)
        writer = db.begin("si")
        writer.write("t", 1, "b")
        assert db.stats["mixed_edges_dropped"] == 1
        reader.abort()
        writer.abort()

    def test_recorded_edges_are_not_counted_as_dropped(self, db):
        fill(db, "t", {1: "a"})
        reader = db.begin("ssi")
        reader.read("t", 1)
        writer = db.begin("ssi")
        writer.write("t", 1, "b")
        assert db.stats["mixed_edges_dropped"] == 0
        reader.abort()
        writer.abort()
