"""Snapshot isolation semantics (paper Section 2.5).

Interleavings are driven single-threaded through the engine primitives;
lock waits surface as LockWaitRequired and are resolved explicitly, which
keeps the tests deterministic.
"""

import pytest

from repro import Database, EngineConfig, IsolationLevel, UpdateConflictError
from repro.errors import LockWaitRequired
from repro.locking.manager import RequestState

from tests.conftest import fill


class TestSnapshotReads:
    def test_reader_does_not_see_later_commits(self, db):
        fill(db, "t", {1: "old"})
        reader = db.begin("si")
        assert reader.read("t", 1) == "old"
        writer = db.begin("si")
        writer.write("t", 1, "new")
        writer.commit()
        assert reader.read("t", 1) == "old"  # snapshot stability
        reader.commit()
        assert db.begin("si").read("t", 1) == "new"

    def test_no_inconsistent_reads_across_items(self, db):
        """A snapshot never sees half of another transaction's update."""
        fill(db, "t", {"x": 0, "y": 0})
        writer = db.begin("si")
        writer.write("t", "x", 1)
        reader = db.begin("si")
        assert reader.read("t", "x") == 0  # uncommitted write invisible
        writer.write("t", "y", 1)
        writer.commit()
        # reader's snapshot predates the commit: both still 0.
        assert reader.read("t", "x") == 0
        assert reader.read("t", "y") == 0
        reader.commit()

    def test_snapshot_fixed_at_first_read_with_deferred_allocation(self, db):
        fill(db, "t", {1: "v0"})
        txn = db.begin("si")  # deferred: no snapshot yet
        other = db.begin("si")
        other.write("t", 1, "v1")
        other.commit()
        # First read allocates the snapshot *now*, so v1 is visible.
        assert txn.read("t", 1) == "v1"
        txn.commit()

    def test_eager_snapshot_allocation(self):
        db = Database(EngineConfig(deferred_snapshot=False))
        fill(db, "t", {1: "v0"})
        txn = db.begin("si")  # snapshot taken here
        other = db.begin("si")
        other.write("t", 1, "v1")
        other.commit()
        assert txn.read("t", 1) == "v0"
        txn.commit()

    def test_readers_never_block_on_writers(self, db):
        fill(db, "t", {1: "a"})
        writer = db.begin("si")
        writer.write("t", 1, "b")  # holds the exclusive lock
        reader = db.begin("si")
        assert reader.read("t", 1) == "a"  # no LockWaitRequired surfaced
        reader.commit()
        writer.commit()


class TestFirstCommitterWins:
    def test_concurrent_update_conflict(self):
        db = Database(EngineConfig(deferred_snapshot=False))
        fill(db, "t", {1: 0})
        t1 = db.begin("si")
        t2 = db.begin("si")
        t1.read("t", 1)
        t2.read("t", 1)
        t1.write("t", 1, 1)
        t1.commit()
        with pytest.raises(UpdateConflictError):
            t2.write("t", 1, 2)
        assert t2.is_aborted

    def test_first_updater_blocks_then_aborts_loser(self, db):
        fill(db, "t", {1: 0})
        t1 = db.begin("si")
        t2 = db.begin("si")
        t1.read("t", 1)
        t2.read("t", 1)  # snapshots now fixed
        t1.write("t", 1, 1)
        # t2 must wait for t1's exclusive lock.
        with pytest.raises(LockWaitRequired) as wait:
            db.write(t2, "t", 1, 2)
        t1.commit()
        assert wait.value.request.state is RequestState.GRANTED
        # Retry after the grant: a newer version now exists -> conflict.
        with pytest.raises(UpdateConflictError):
            db.write(t2, "t", 1, 2)
        assert t2.is_aborted

    def test_winner_abort_lets_waiter_proceed(self, db):
        fill(db, "t", {1: 0})
        t1 = db.begin("si")
        t2 = db.begin("si")
        t1.read("t", 1)
        t2.read("t", 1)
        t1.write("t", 1, 1)
        with pytest.raises(LockWaitRequired):
            db.write(t2, "t", 1, 2)
        t1.abort()  # no version installed
        db.write(t2, "t", 1, 2)  # retry succeeds
        t2.commit()
        assert db.begin("si").read("t", 1) == 2

    def test_deferred_snapshot_spares_single_statement_updates(self, db):
        """Section 4.5: two concurrent increment transactions never abort
        when the snapshot is chosen after the first lock."""
        fill(db, "t", {1: 0})
        t1 = db.begin("si")
        t2 = db.begin("si")
        value = t1.read_for_update("t", 1)
        t1.write("t", 1, value + 1)
        with pytest.raises(LockWaitRequired):
            db.read_for_update(t2, "t", 1)
        t1.commit()
        # t2's snapshot is allocated only now -> sees t1's result, no FCW.
        value2 = t2.read_for_update("t", 1)
        assert value2 == 1
        t2.write("t", 1, value2 + 1)
        t2.commit()
        assert db.begin("si").read("t", 1) == 2

    def test_fcw_applies_to_inserts_over_tombstones(self):
        db = Database(EngineConfig(deferred_snapshot=False))
        fill(db, "t", {1: "a"})
        t1 = db.begin("si")
        t2 = db.begin("si")
        t1.read("t", 1), t2.read("t", 1)
        t1.delete("t", 1)
        t1.commit()
        with pytest.raises(UpdateConflictError):
            t2.write("t", 1, "clobber")


class TestWriteSkewAllowedAtSI:
    def test_write_skew_commits_and_corrupts(self, db):
        """Example 2: SI permits the anomaly — this is the behaviour the
        paper's algorithm exists to remove."""
        fill(db, "acct", {"x": 50, "y": 50})
        t1 = db.begin("si")
        t2 = db.begin("si")
        assert t1.read("acct", "x") + t1.read("acct", "y") == 100
        assert t2.read("acct", "x") + t2.read("acct", "y") == 100
        t1.write("acct", "x", t1.read("acct", "x") - 70)
        t2.write("acct", "y", t2.read("acct", "y") - 80)
        t1.commit()
        t2.commit()
        check = db.begin("si")
        assert check.read("acct", "x") + check.read("acct", "y") == -50

    def test_phantom_skew_commits_at_si(self, db):
        """Both transactions scan, see the other's row absent, and insert."""
        db.create_table("oncall")
        fill(db, "oncall", {("s1", "alice"): "on"})
        t1 = db.begin("si")
        t2 = db.begin("si")
        assert len(t1.scan("oncall")) == 1
        assert len(t2.scan("oncall")) == 1
        t1.insert("oncall", ("s1", "bob"), "off")
        t2.insert("oncall", ("s1", "carol"), "off")
        t1.commit()
        t2.commit()  # SI: no gap locking, both commit
