"""Interleaving-driver unit tests."""

import math

import pytest

from repro.sim.interleave import all_interleavings, run_interleaving
from repro.sim.ops import Read, Write


def test_all_interleavings_count():
    # multinomial(2+2; 2,2) = 6
    assert len(list(all_interleavings([2, 2]))) == 6
    # 7!/(2!2!3!) = 210 — the kind of size the paper's harness explores
    assert len(list(all_interleavings([2, 2, 3]))) == 210


def test_interleavings_preserve_per_txn_order():
    for order in all_interleavings([3, 2]):
        assert [i for i in order if i == 0] == [0, 0, 0]
        assert order.count(1) == 2


def setup(db):
    db.create_table("t")
    db.load("t", [("x", 0), ("y", 0)])


def t_read_then_write():
    value = yield Read("t", "x")
    yield Write("t", "y", value + 1)


def t_write_x():
    yield Write("t", "x", 42)


def test_run_interleaving_all_commit_when_serial():
    # All of T0's steps before T1's: a serial execution.
    outcome = run_interleaving(
        setup, [t_read_then_write, t_write_x], order=[0, 0, 0, 1, 1], isolation="ssi"
    )
    assert outcome.all_committed
    txn = outcome.db.begin("si")
    assert txn.read("t", "y") == 1
    assert txn.read("t", "x") == 42


def test_run_interleaving_with_lock_wait_defers_step():
    # T1 writes x first; T0 then reads x (SIREAD, no block) — then a
    # second writer would block; use s2pl to force a wait instead.
    outcome = run_interleaving(
        setup, [t_read_then_write, t_write_x], order=[1, 0, 0, 0, 1], isolation="s2pl"
    )
    # Every transaction still reaches a terminal state.
    assert set(outcome.statuses.values()) <= {"committed", "deadlock", "conflict", "unsafe"}


def test_statuses_reported_per_transaction():
    outcome = run_interleaving(
        setup, [t_read_then_write, t_write_x], order=[0, 1, 0, 1, 0], isolation="ssi"
    )
    assert set(outcome.statuses) == {0, 1}
    assert outcome.committed or outcome.aborted
