"""Direct program executor tests."""

import pytest

from repro import Database, EngineConfig
from repro.errors import ConstraintError, DuplicateKeyError
from repro.sim.direct import run_program
from repro.sim.ops import Get, Insert, Read, Rollback, Scan, Write


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t")
    database.load("t", [(1, "a"), (2, "b")])
    return database


def test_returns_program_value(db):
    def program():
        value = yield Read("t", 1)
        return value.upper()

    assert run_program(db, program()) == "A"


def test_commits_writes(db):
    def program():
        yield Write("t", 1, "z")

    run_program(db, program())
    assert db.begin().read("t", 1) == "z"


def test_rollback_propagates_and_aborts(db):
    def program():
        yield Write("t", 1, "lost")
        yield Rollback("never mind")

    with pytest.raises(ConstraintError):
        run_program(db, program())
    assert db.begin().read("t", 1) == "a"


def test_application_error_aborts_txn(db):
    def program():
        yield Write("t", 2, "lost-too")
        yield Insert("t", 1, "dup")

    with pytest.raises(DuplicateKeyError):
        run_program(db, program())
    check = db.begin()
    assert check.read("t", 2) == "b"
    check.commit()
    assert db.active_count() == 0  # nothing leaked


def test_runs_inside_existing_txn(db):
    def program():
        rows = yield Scan("t")
        return len(rows)

    txn = db.begin("ssi")
    assert run_program(db, program(), txn=txn) == 2
    assert txn.is_active  # caller keeps control of commit
    txn.commit()


def test_generator_receives_values(db):
    def program():
        a = yield Get("t", 1)
        b = yield Get("t", 99, default="?")
        return (a, b)

    assert run_program(db, program()) == ("a", "?")
