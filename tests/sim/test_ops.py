"""Op descriptor / apply_op tests."""

import pytest

from repro import Database, EngineConfig
from repro.errors import ConstraintError
from repro.sim.ops import (
    Compute,
    Delete,
    Get,
    Insert,
    Read,
    ReadForUpdate,
    Rollback,
    Scan,
    Write,
    apply_op,
)

from tests.conftest import fill


@pytest.fixture
def db():
    database = Database(EngineConfig())
    fill(database, "t", {1: "a", 2: "b"})
    return database


def test_read_and_get(db):
    txn = db.begin()
    assert apply_op(db, txn, Read("t", 1)) == "a"
    assert apply_op(db, txn, Get("t", 99, default="dflt")) == "dflt"
    txn.commit()


def test_write_insert_delete(db):
    txn = db.begin()
    apply_op(db, txn, Write("t", 1, "A"))
    apply_op(db, txn, Insert("t", 3, "c"))
    apply_op(db, txn, Delete("t", 2))
    txn.commit()
    check = db.begin()
    assert apply_op(db, check, Scan("t")) == [(1, "A"), (3, "c")]
    check.commit()


def test_read_for_update_locks(db):
    txn = db.begin()
    assert apply_op(db, txn, ReadForUpdate("t", 1)) == "a"
    from repro.locking.manager import record_resource
    from repro.locking.modes import LockMode
    assert db.locks.holds(txn, record_resource("t", 1), LockMode.EXCLUSIVE)
    txn.commit()


def test_compute_is_noop(db):
    txn = db.begin()
    assert apply_op(db, txn, Compute(10)) is None
    txn.commit()


def test_rollback_aborts_with_constraint(db):
    txn = db.begin()
    with pytest.raises(ConstraintError):
        apply_op(db, txn, Rollback("nope"))
    assert txn.is_aborted
    assert db.stats["aborts"]["constraint"] == 1


def test_unknown_op_rejected(db):
    txn = db.begin()
    with pytest.raises(TypeError):
        apply_op(db, txn, object())
