"""Discrete-event simulator tests."""

import random

import pytest

from repro.engine.config import DeadlockMode, EngineConfig
from repro.engine.database import Database
from repro.sim.ops import Compute, Read, ReadForUpdate, Write
from repro.sim.scheduler import SimConfig, Simulator, run_simulation
from repro.sim.workload import Mix, Workload


def counter_workload(keys=1):
    """Clients increment one of ``keys`` counters."""

    def setup(db):
        db.create_table("c")
        db.load("c", ((i, 0) for i in range(keys)))

    def program(rng):
        key = rng.randrange(keys)
        value = yield ReadForUpdate("c", key)
        yield Write("c", key, value + 1)

    return Workload("counter", setup, Mix([("inc", 1.0, program)]))


def reader_workload():
    def setup(db):
        db.create_table("c")
        db.load("c", [(0, 0)])

    def program(rng):
        yield Read("c", 0)
        yield Compute(5)

    return Workload("reader", setup, Mix([("read", 1.0, program)]))


class TestThroughputAccounting:
    def test_commits_counted_and_consistent(self):
        workload = counter_workload(keys=4)
        db = Database(EngineConfig())
        workload.setup(db)
        result = Simulator(db, workload, "si", 4, SimConfig(duration=0.2, warmup=0.0)).run()
        assert result.commits > 0
        total = sum(
            db.table("c").chain(i).latest().value for i in range(4)
        )
        # Every increment committed during *and after* warmup is in the
        # table; with warmup=0 the counter total equals commit count.
        assert total == result.commits

    def test_warmup_excluded(self):
        workload = reader_workload()
        full = run_simulation(workload, "si", 2,
                              sim_config=SimConfig(duration=0.2, warmup=0.0))
        trimmed = run_simulation(workload, "si", 2,
                                 sim_config=SimConfig(duration=0.1, warmup=0.1))
        assert trimmed.commits < full.commits

    def test_throughput_property(self):
        workload = reader_workload()
        result = run_simulation(workload, "si", 1,
                                sim_config=SimConfig(duration=0.5, warmup=0.0))
        assert result.throughput == pytest.approx(result.commits / 0.5)

    def test_cpu_bound_saturation(self):
        """With one core and no I/O, MPL growth cannot scale throughput."""
        workload = reader_workload()
        t1 = run_simulation(workload, "si", 1,
                            sim_config=SimConfig(duration=0.3, warmup=0.0))
        t8 = run_simulation(workload, "si", 8,
                            sim_config=SimConfig(duration=0.3, warmup=0.0))
        assert t8.throughput <= t1.throughput * 1.1

    def test_more_cores_scale_reader_throughput(self):
        workload = reader_workload()
        one = run_simulation(workload, "si", 8,
                             sim_config=SimConfig(duration=0.3, warmup=0.0, cores=1))
        four = run_simulation(workload, "si", 8,
                              sim_config=SimConfig(duration=0.3, warmup=0.0, cores=4))
        assert four.throughput > one.throughput * 2


class TestLogFlushModelling:
    def test_flush_caps_single_client(self):
        """One client, 10 ms flush per commit -> at most ~100 commits/s."""
        workload = counter_workload()
        result = run_simulation(
            workload, "si", 1,
            sim_config=SimConfig(duration=1.0, warmup=0.0,
                                 commit_flush=True, flush_time=0.010),
        )
        assert 50 <= result.throughput <= 101

    def test_group_commit_scales_with_mpl(self):
        workload = counter_workload(keys=64)
        results = {}
        for mpl in (1, 8):
            results[mpl] = run_simulation(
                workload, "si", mpl,
                sim_config=SimConfig(duration=1.0, warmup=0.0,
                                     commit_flush=True, flush_time=0.010),
            )
        assert results[8].throughput > results[1].throughput * 3

    def test_readonly_transactions_skip_flush(self):
        workload = reader_workload()
        result = run_simulation(
            workload, "si", 1,
            sim_config=SimConfig(duration=0.3, warmup=0.0,
                                 commit_flush=True, flush_time=0.010),
        )
        # far more than the 30 commits a flush-bound client could do
        assert result.commits > 1000


class TestAbortAccounting:
    def test_conflict_aborts_recorded(self):
        workload = counter_workload(keys=1)  # maximal write contention

        def setup(db):
            workload.setup(db)

        # Non-deferred snapshots so FCW conflicts actually occur.
        result = run_simulation(
            Workload("hot", setup, workload.mix), "si", 8,
            engine_config=EngineConfig(deferred_snapshot=False),
            sim_config=SimConfig(duration=0.2, warmup=0.0),
        )
        assert result.aborts["conflict"] > 0
        assert result.cc_aborts == result.aborts["conflict"] + result.aborts["deadlock"] + result.aborts["unsafe"]

    def test_deferred_snapshot_eliminates_counter_conflicts(self):
        """Section 4.5's headline effect, measured in the simulator."""
        workload = counter_workload(keys=1)
        result = run_simulation(
            workload, "si", 8,
            engine_config=EngineConfig(deferred_snapshot=True),
            sim_config=SimConfig(duration=0.2, warmup=0.0),
        )
        assert result.aborts["conflict"] == 0
        assert result.commits > 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        workload = counter_workload(keys=4)
        runs = [
            run_simulation(workload, "ssi", 4,
                           sim_config=SimConfig(duration=0.2, warmup=0.0, seed=7))
            for _ in range(2)
        ]
        assert runs[0].commits == runs[1].commits
        assert runs[0].aborts == runs[1].aborts

    def test_different_seeds_differ(self):
        workload = counter_workload(keys=4)
        a = run_simulation(workload, "ssi", 4,
                           sim_config=SimConfig(duration=0.2, warmup=0.0, seed=1))
        b = run_simulation(workload, "ssi", 4,
                           sim_config=SimConfig(duration=0.2, warmup=0.0, seed=2))
        # Not a hard guarantee, but with continuous activity the commit
        # mix essentially never matches exactly.
        assert (a.commits, tuple(sorted(a.commits_by_type.items()))) != (
            b.commits, tuple(sorted(b.commits_by_type.items()))
        ) or a.commits > 0


class TestEngineStatsSnapshot:
    def test_engine_stats_do_not_alias_live_counters(self):
        """The exported snapshot must be a deep copy: the shallow
        ``dict(...)`` copies used previously shared the nested ``aborts``
        dict with the live engine, so post-run activity (or a second
        simulation on the same database) silently rewrote old results."""
        workload = counter_workload(keys=1)
        db = Database(EngineConfig())
        workload.setup(db)
        result = Simulator(db, workload, "si", 4,
                           SimConfig(duration=0.2, warmup=0.0)).run()
        frozen = {
            "aborts": dict(result.engine_stats["engine"]["aborts"]),
            "acquires": result.engine_stats["locks"]["acquires"],
        }
        # Keep using the same engine after the run.
        txn = db.begin("si")
        txn.read("c", 0)
        txn.abort()
        db.stats["aborts"]["aborted"] += 100
        db.locks.stats["acquires"] += 100
        assert result.engine_stats["engine"]["aborts"] == frozen["aborts"]
        assert result.engine_stats["locks"]["acquires"] == frozen["acquires"]

    def test_engine_stats_include_histograms(self):
        workload = counter_workload(keys=1)
        result = run_simulation(workload, "s2pl", 4,
                                sim_config=SimConfig(duration=0.2, warmup=0.0))
        histograms = result.engine_stats["histograms"]
        assert "lock_wait_time" in histograms
        assert "version_chain_length" in histograms
        # Single-key S2PL counters queue constantly: waits were measured.
        assert histograms["lock_wait_time"]["count"] > 0
        assert histograms["version_chain_length"]["count"] > 0


class TestPeriodicCadence:
    def drain(self, sim):
        import heapq

        while sim._events:
            when, _seq, fn = heapq.heappop(sim._events)
            if when > sim._horizon:
                break
            sim.now = when
            fn()

    def make_sim(self, duration, warmup=0.0):
        workload = reader_workload()
        db = Database(EngineConfig())
        workload.setup(db)
        return Simulator(db, workload, "si", 1,
                         SimConfig(duration=duration, warmup=warmup))

    def test_tick_on_horizon_edge_still_fires(self):
        """0.05 accumulated six times lands exactly on 0.3; a cadence
        computed as ``start + k * interval`` rounds up past the horizon
        and silently drops the final tick (the last vacuum of a run)."""
        sim = self.make_sim(duration=0.3)
        fired = []
        sim._schedule_periodic(0.0, 0.05, lambda: fired.append(sim.now))
        self.drain(sim)
        assert len(fired) == 6
        assert fired[-1] == pytest.approx(0.3)

    def test_cadence_does_not_drift(self):
        """Successive fire times stay interval-spaced even when the
        callback burns simulated CPU (schedules work at later times)."""
        sim = self.make_sim(duration=1.0)
        fired = []

        def tick():
            fired.append(sim.now)
            # Schedule unrelated later events, like a busy engine would.
            sim.schedule_at(sim.now + 0.003, lambda: None)

        interval = 1 / 128  # exactly representable: spacing must be exact
        sim._schedule_periodic(0.0, interval, tick)
        self.drain(sim)
        assert len(fired) == 128
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert all(gap == interval for gap in gaps)
