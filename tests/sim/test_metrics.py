"""SimResult metric computations."""

import pytest

from repro.sim.metrics import SimResult


def make_result(**overrides):
    result = SimResult(isolation="ssi", mpl=10, duration=2.0)
    for key, value in overrides.items():
        setattr(result, key, value)
    return result


def test_throughput():
    result = make_result(commits=500)
    assert result.throughput == 250.0


def test_throughput_zero_duration():
    result = SimResult(isolation="si", mpl=1, duration=0.0)
    assert result.throughput == 0.0


def test_abort_classification():
    result = make_result(commits=100)
    result.aborts.update({"conflict": 5, "unsafe": 3, "deadlock": 2,
                          "constraint": 10})
    assert result.total_aborts == 20
    assert result.cc_aborts == 10  # constraint rollbacks excluded
    assert result.error_rate == pytest.approx(0.10)
    assert result.abort_rate("unsafe") == pytest.approx(0.03)


def test_error_rate_with_no_commits_is_zero():
    # A zero-commit run must not report float("inf") — json.dumps turns
    # that into the non-standard Infinity literal and corrupts exports.
    result = make_result(commits=0)
    result.aborts["conflict"] = 1
    assert result.error_rate == 0.0


def _reject(value):
    raise ValueError(f"non-standard JSON constant: {value!r}")


def test_to_dict_round_trips_under_strict_json():
    import json

    result = make_result(commits=0)
    result.aborts["conflict"] = 3
    result.engine_stats = {"locks": {"acquires": 17}}
    text = json.dumps(result.to_dict(), allow_nan=False)
    restored = json.loads(text, parse_constant=_reject)
    assert restored["error_rate"] == 0.0
    assert restored["aborts"]["conflict"] == 3
    assert restored["engine_stats"]["locks"]["acquires"] == 17


def test_to_dict_scrubs_non_finite_floats():
    import json

    result = make_result(commits=2, response_time_sum=float("nan"))
    text = json.dumps(result.to_dict(), allow_nan=False)
    restored = json.loads(text, parse_constant=_reject)
    assert restored["response_time_sum"] is None
    assert restored["mean_response_time"] is None


def test_mean_response_time():
    result = make_result(commits=4, response_time_sum=2.0)
    assert result.mean_response_time == 0.5
    empty = make_result(commits=0)
    assert empty.mean_response_time == 0.0


def test_summary_text():
    result = make_result(commits=100)
    result.aborts["unsafe"] = 7
    text = result.summary()
    assert "ssi" in text and "MPL=10" in text and "unsafe=7" in text


def test_summary_without_aborts():
    assert "none" in make_result(commits=1).summary()
