"""Workload/Mix abstraction tests."""

import random

from repro.sim.ops import Read
from repro.sim.workload import Mix, Workload


def make_factory(label):
    def factory(rng):
        def program():
            yield Read("t", label)
        return program()
    return factory


def test_mix_sampling_respects_weights():
    mix = Mix([
        ("a", 9.0, make_factory("a")),
        ("b", 1.0, make_factory("b")),
    ])
    rng = random.Random(0)
    names = [mix.sample(rng)[0] for _ in range(2000)]
    ratio = names.count("a") / names.count("b")
    assert 6 < ratio < 14


def test_mix_returns_fresh_generators():
    mix = Mix([("a", 1.0, make_factory("a"))])
    rng = random.Random(0)
    _name1, gen1 = mix.sample(rng)
    _name2, gen2 = mix.sample(rng)
    assert gen1 is not gen2


def test_mix_names():
    mix = Mix([("x", 1, make_factory("x")), ("y", 2, make_factory("y"))])
    assert mix.names() == ["x", "y"]


def test_workload_wiring():
    called = []
    workload = Workload(
        "demo", setup=lambda db: called.append(db),
        mix=Mix([("x", 1, make_factory("x"))]),
    )
    workload.setup("DB")
    assert called == ["DB"]
    name, gen = workload.next_transaction(random.Random(1))
    assert name == "x"
    assert "demo" in repr(workload)
