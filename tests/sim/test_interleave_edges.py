"""Interleaving-driver edge cases."""

import pytest

from repro.engine.config import EngineConfig
from repro.sim.interleave import all_interleavings, run_interleaving
from repro.sim.ops import Insert, Read, Rollback, Write


def test_single_transaction_order():
    assert list(all_interleavings([3])) == [(0, 0, 0)]


def test_empty_input():
    assert list(all_interleavings([])) == [()]


def test_counts_multinomial():
    # (3+1)! / (3! 1!) = 4
    assert len(list(all_interleavings([3, 1]))) == 4


def setup(db):
    db.create_table("t")
    db.load("t", [("k", 0)])


def test_constraint_rollback_status():
    def gives_up():
        yield Read("t", "k")
        yield Rollback("nah")

    outcome = run_interleaving(setup, [gives_up], [0, 0, 0], isolation="si")
    assert outcome.statuses[0] == "constraint"
    assert not outcome.all_committed
    assert outcome.aborted == {0: "constraint"}


def test_application_error_rolls_back():
    def duplicate():
        yield Insert("t", "k", "again")  # key exists

    outcome = run_interleaving(setup, [duplicate], [0, 0], isolation="si")
    assert outcome.statuses[0] == "constraint"


def test_surplus_schedule_slots_tolerated():
    def one_write():
        yield Write("t", "k", 1)

    # more slots than steps: extras are skipped once the txn finished
    outcome = run_interleaving(setup, [one_write], [0, 0, 0, 0, 0], isolation="si")
    assert outcome.statuses[0] == "committed"


def test_deficient_schedule_leaves_transaction_running():
    def two_writes():
        yield Write("t", "k", 1)
        yield Write("t", "k", 2)

    outcome = run_interleaving(setup, [two_writes], [0], isolation="si")
    assert outcome.statuses[0] == "running"
    check = outcome.db.begin("si")
    assert check.read("t", "k") == 0  # nothing committed
    check.commit()


def test_blocked_steps_defer_and_complete():
    """A lock wait defers the blocked step; the holder's commit lets it
    run on a later slot."""
    def writer_a():
        yield Write("t", "k", "a")

    def writer_b():
        yield Write("t", "k", "b")

    # a writes (locks), b tries (defers), a commits, b retries, b commits
    outcome = run_interleaving(setup, [writer_a, writer_b],
                               [0, 1, 0, 1, 1], isolation="s2pl")
    assert outcome.statuses[0] == "committed"
    assert outcome.statuses[1] == "committed"
    check = outcome.db.begin("si")
    assert check.read("t", "k") == "b"  # b serialised after a
    check.commit()
