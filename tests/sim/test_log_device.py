"""Log-device modelling tests: group commit on/off, flush serialisation."""

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.sim.ops import ReadForUpdate, Write
from repro.sim.scheduler import SimConfig, Simulator
from repro.sim.workload import Mix, Workload


def writers_workload(keys=32):
    def setup(db):
        db.create_table("t")
        db.load("t", ((i, 0) for i in range(keys)))

    def update(rng):
        key = rng.randrange(keys)
        value = yield ReadForUpdate("t", key)
        yield Write("t", key, value + 1)

    return Workload("writers", setup, Mix([("u", 1.0, update)]))


def run(mpl, group_commit):
    workload = writers_workload()
    db = Database(EngineConfig())
    workload.setup(db)
    return Simulator(
        db, workload, "si", mpl,
        SimConfig(duration=1.0, warmup=0.0, commit_flush=True,
                  flush_time=0.010, group_commit=group_commit),
    ).run()


def test_without_group_commit_flushes_serialise():
    """One flush per commit: throughput pinned near 1/flush_time
    regardless of MPL."""
    result = run(mpl=8, group_commit=False)
    assert result.throughput <= 110


def test_group_commit_batches():
    grouped = run(mpl=8, group_commit=True)
    serial = run(mpl=8, group_commit=False)
    assert grouped.throughput > serial.throughput * 3


def test_single_client_unaffected_by_grouping():
    a = run(mpl=1, group_commit=True)
    b = run(mpl=1, group_commit=False)
    assert abs(a.throughput - b.throughput) < 10
