"""Sanity checks on the figure-experiment definitions: each experiment's
engine/simulation configuration matches the paper's setup it claims."""

import pytest

from repro.bench.experiments import FIGURES
from repro.engine.config import DeadlockMode, LockGranularity


def experiment(exp_id):
    return FIGURES[exp_id]()


@pytest.mark.parametrize("exp_id", [f"fig6.{n}" for n in range(1, 6)])
def test_berkeleydb_figures_use_page_engine(exp_id):
    config = experiment(exp_id).engine_config_factory()
    assert config.granularity is LockGranularity.PAGE
    assert not config.precise_conflicts  # the BDB prototype's tracker
    assert config.deadlock_mode is DeadlockMode.PERIODIC


@pytest.mark.parametrize("exp_id", [f"fig6.{n}" for n in range(6, 19)])
def test_innodb_figures_use_record_engine(exp_id):
    config = experiment(exp_id).engine_config_factory()
    assert config.granularity is LockGranularity.RECORD
    assert config.precise_conflicts
    assert config.deadlock_mode is DeadlockMode.IMMEDIATE


def test_fig6_1_has_no_commit_io():
    assert not experiment("fig6.1").sim_config.commit_flush


@pytest.mark.parametrize("exp_id", ["fig6.2", "fig6.3", "fig6.4", "fig6.5"])
def test_durable_smallbank_figures_flush_10ms(exp_id):
    sim = experiment(exp_id).sim_config
    assert sim.commit_flush
    assert sim.flush_time == pytest.approx(0.010)


def test_low_contention_figures_scale_data_up():
    # Fig 6.4 uses 10x the customers of Fig 6.1's workload.
    short = experiment("fig6.1").workload_factory()
    low = experiment("fig6.4").workload_factory()
    assert "c=800" in short.name
    assert "c=8000" in low.name


def test_complex_figures_use_ten_ops():
    assert "n=10" in experiment("fig6.3").workload_factory().name
    assert "n=10" in experiment("fig6.5").workload_factory().name


def test_sibench_figures_cover_the_size_sweep():
    sizes = []
    for exp_id in ("fig6.6", "fig6.7", "fig6.8"):
        workload = experiment(exp_id).workload_factory()
        sizes.append(workload.name)
    assert any("I=10," in name for name in sizes)
    assert any("I=100," in name for name in sizes)
    assert any("I=1000," in name for name in sizes)


def test_querymostly_figures_use_ten_to_one():
    for exp_id in ("fig6.9", "fig6.10", "fig6.11"):
        assert "q:u=10" in experiment(exp_id).workload_factory().name


def test_tpccpp_scaling_configurations():
    assert "W=1" in experiment("fig6.12").workload_factory().name
    assert "noytd" in experiment("fig6.12").workload_factory().name
    for exp_id in ("fig6.13", "fig6.14"):
        assert "W=10" in experiment(exp_id).workload_factory().name
    for exp_id in ("fig6.15", "fig6.16"):
        assert "tiny" in experiment(exp_id).workload_factory().name
    assert "noytd" not in experiment("fig6.13").workload_factory().name
    assert "noytd" in experiment("fig6.14").workload_factory().name


def test_stock_level_figures_use_the_slev_mix():
    for exp_id in ("fig6.17", "fig6.18"):
        workload = experiment(exp_id).workload_factory()
        assert "slev" in workload.name
        assert set(workload.mix.names()) == {"NEWO", "SLEV"}
