"""Bench harness tests: experiment grid execution and reporting."""

import pytest

from repro.bench.experiments import FIGURES, fig6_1
from repro.bench.harness import Experiment, run_experiment
from repro.bench.report import format_error_table, format_throughput_table, summarize
from repro.engine.config import EngineConfig
from repro.sim.scheduler import SimConfig
from repro.workloads.smallbank import make_smallbank


@pytest.fixture(scope="module")
def small_outcome():
    experiment = Experiment(
        exp_id="test.exp",
        title="tiny smallbank grid",
        workload_factory=lambda: make_smallbank(customers=50),
        engine_config_factory=EngineConfig,
        sim_config=SimConfig(duration=0.05, warmup=0.0),
        expectation="n/a",
    )
    return run_experiment(experiment, mpls=[1, 4], levels=["si", "ssi"])


def test_grid_shape(small_outcome):
    assert set(small_outcome.series) == {"si", "ssi"}
    assert [r.mpl for r in small_outcome.series["si"]] == [1, 4]


def test_result_lookup(small_outcome):
    result = small_outcome.result("si", 4)
    assert result.mpl == 4 and result.isolation == "si"
    with pytest.raises(KeyError):
        small_outcome.result("si", 99)


def test_throughput_positive(small_outcome):
    assert small_outcome.throughput("si", 1) > 0
    assert small_outcome.peak_throughput("ssi") > 0
    assert small_outcome.best_mpl("si") in (1, 4)


def test_report_rendering(small_outcome):
    table = format_throughput_table(small_outcome)
    assert "test.exp" in table
    assert "MPL" in table
    errors = format_error_table(small_outcome)
    assert "errors per commit" in errors
    assert "test.exp" in summarize(small_outcome)


def test_figure_catalogue_complete():
    expected = {f"fig6.{n}" for n in range(1, 19)}
    assert set(FIGURES) == expected


def test_every_figure_definition_instantiates():
    for exp_id, factory in FIGURES.items():
        experiment = factory()
        assert experiment.exp_id == exp_id
        assert experiment.title
        assert experiment.expectation
        workload = experiment.workload_factory()
        assert workload.mix.names()


def test_fig6_1_uses_bdb_configuration():
    experiment = fig6_1()
    config = experiment.engine_config_factory()
    from repro.engine.config import DeadlockMode, LockGranularity
    assert config.granularity is LockGranularity.PAGE
    assert config.deadlock_mode is DeadlockMode.PERIODIC
    assert not config.precise_conflicts
    assert not experiment.sim_config.commit_flush
