"""Property-based engine tests.

Two families of invariants:

* a **sequential** transaction stream must behave exactly like a plain
  dict, at every isolation level;
* **randomly interleaved** transaction programs must never produce a
  non-serializable committed history under SSI / S2PL / SGT (checked with
  the MVSG oracle), while committed SI histories must still satisfy the
  per-transaction snapshot rules the engine promises.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import (
    ConstraintError,
    KeyNotFoundError,
    DuplicateKeyError,
    LockWaitRequired,
    TransactionAbortedError,
)
from repro.sgt.checker import check_serializable
from repro.sim.interleave import run_interleaving
from repro.sim.ops import Delete, Get, Insert, Read, Scan, Write

KEYS = st.integers(min_value=0, max_value=6)
LEVELS = st.sampled_from(["si", "ssi", "s2pl", "sgt"])

seq_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), KEYS, st.integers(0, 99)),
        st.tuples(st.just("insert"), KEYS, st.integers(0, 99)),
        st.tuples(st.just("delete"), KEYS, st.just(0)),
        st.tuples(st.just("read"), KEYS, st.just(0)),
        st.tuples(st.just("commit_point"), st.just(0), st.just(0)),
    ),
    max_size=40,
)


@given(ops=seq_ops, level=LEVELS)
@settings(max_examples=80, deadline=None)
def test_sequential_stream_matches_dict_model(ops, level):
    db = Database(EngineConfig())
    db.create_table("t")
    model: dict[int, int] = {}
    pending: dict[int, int | None] = {}
    txn = db.begin(level)

    def rollforward():
        for key, value in pending.items():
            if value is None:
                model.pop(key, None)
            else:
                model[key] = value
        pending.clear()

    for kind, key, value in ops:
        if kind == "commit_point":
            txn.commit()
            rollforward()
            txn = db.begin(level)
        elif kind == "write":
            txn.write("t", key, value)
            pending[key] = value
        elif kind == "insert":
            visible = {**model, **{k: v for k, v in pending.items()}}
            exists = visible.get(key) is not None
            try:
                txn.insert("t", key, value)
                assert not exists
                pending[key] = value
            except DuplicateKeyError:
                assert exists
        elif kind == "delete":
            visible = {**model, **{k: v for k, v in pending.items()}}
            exists = visible.get(key) is not None
            try:
                txn.delete("t", key)
                assert exists
                pending[key] = None
            except KeyNotFoundError:
                assert not exists
        else:
            visible = {**model, **{k: v for k, v in pending.items()}}
            expected = visible.get(key)
            assert txn.get("t", key) == expected
    txn.commit()
    rollforward()
    check = db.begin(level)
    assert dict(check.scan("t")) == {
        key: value for key, value in model.items() if value is not None
    }
    check.commit()


program_ops = st.lists(
    st.one_of(
        st.tuples(st.just("read"), KEYS),
        st.tuples(st.just("write"), KEYS),
        st.tuples(st.just("scan"), KEYS),
        st.tuples(st.just("insert"), st.integers(min_value=10, max_value=14)),
        st.tuples(st.just("delete"), KEYS),
    ),
    min_size=1,
    max_size=5,
)


def build_program(spec, tag):
    """Insert/delete may hit application errors (duplicate key, missing
    key); the interleaving driver rolls such transactions back with the
    'constraint' status."""

    def program():
        for step, (kind, key) in enumerate(spec):
            if kind == "read":
                yield Get("t", key)
            elif kind == "write":
                yield Write("t", key, f"{tag}.{step}")
            elif kind == "scan":
                yield Scan("t", key, key + 3)
            elif kind == "insert":
                yield Insert("t", key, tag)
            else:
                yield Delete("t", key)

    return program


def setup(db):
    db.create_table("t")
    db.load("t", ((i, f"init{i}") for i in range(7)))


@given(
    specs=st.lists(program_ops, min_size=2, max_size=3),
    seed=st.integers(0, 2**16),
    level=st.sampled_from(["ssi", "s2pl", "sgt"]),
    precise=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_random_interleavings_serializable(specs, seed, level, precise):
    rng = random.Random(seed)
    programs = [build_program(spec, f"T{i}") for i, spec in enumerate(specs)]
    steps = [len(spec) + 1 for spec in specs]
    slots = [i for i, count in enumerate(steps) for _ in range(count)]
    rng.shuffle(slots)
    outcome = run_interleaving(
        setup,
        programs,
        slots,
        isolation=level,
        engine_config=EngineConfig(record_history=True, precise_conflicts=precise),
    )
    report = check_serializable(outcome.db.history)
    assert report.serializable, report.describe()


@given(
    specs=st.lists(program_ops, min_size=2, max_size=3),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_random_interleavings_si_no_unsafe_errors(specs, seed):
    """SI never raises the new unsafe error, whatever happens."""
    rng = random.Random(seed)
    programs = [build_program(spec, f"T{i}") for i, spec in enumerate(specs)]
    steps = [len(spec) + 1 for spec in specs]
    slots = [i for i, count in enumerate(steps) for _ in range(count)]
    rng.shuffle(slots)
    outcome = run_interleaving(setup, programs, slots, isolation="si")
    assert "unsafe" not in outcome.statuses.values()
