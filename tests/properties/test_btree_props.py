"""Property-based tests: the B+-tree behaves like a sorted dict."""

from hypothesis import given, settings, strategies as st

from repro.storage.btree import SUPREMUM, BPlusTree

keys = st.integers(min_value=-1000, max_value=1000)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, st.integers()),
        st.tuples(st.just("delete"), keys, st.just(0)),
    ),
    max_size=200,
)


@given(ops=ops, order=st.integers(min_value=4, max_value=9))
@settings(max_examples=150, deadline=None)
def test_matches_reference_dict(ops, order):
    tree = BPlusTree(order=order)
    model: dict[int, int] = {}
    for kind, key, value in ops:
        if kind == "insert":
            tree.insert(key, value)
            model[key] = value
        else:
            tree.delete(key)
            model.pop(key, None)
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    for key in model:
        assert tree.get(key) == model[key]
    tree.check_invariants()


@given(data=st.lists(keys, unique=True, min_size=1, max_size=120))
@settings(max_examples=150, deadline=None)
def test_successor_matches_sorted_order(data):
    tree = BPlusTree(order=5)
    for key in data:
        tree.insert(key, None)
    ordered = sorted(data)
    for probe in range(-1001, 1002, 13):
        expected = next((k for k in ordered if k > probe), SUPREMUM)
        assert tree.successor(probe) == expected
    assert tree.first_key() == ordered[0]


@given(
    data=st.lists(keys, unique=True, min_size=1, max_size=80),
    lo=keys,
    hi=keys,
)
@settings(max_examples=150, deadline=None)
def test_range_matches_filter(data, lo, hi):
    tree = BPlusTree(order=5)
    for key in data:
        tree.insert(key, key)
    got = [k for k, _v in tree.range(lo, hi)]
    assert got == [k for k in sorted(data) if lo <= k <= hi]
