"""Property-based WAL/recovery tests: crash consistency against a model.

Random sequences of transactions (each committing or aborting), with
crashes at random points; after recovery the database must equal the
model built from exactly the committed-and-flushed transactions.
"""

from hypothesis import given, settings, strategies as st

from repro import Database, EngineConfig
from repro.wal.log import WriteAheadLog
from repro.wal.recovery import recover_database

txn_strategy = st.tuples(
    st.lists(  # writes: (key, value)
        st.tuples(st.integers(0, 5), st.integers(0, 99)),
        min_size=1,
        max_size=4,
    ),
    st.sampled_from(["commit", "abort"]),
)

script_strategy = st.lists(
    st.one_of(txn_strategy, st.just("crash"), st.just("flush")),
    max_size=25,
)


@given(script=script_strategy, flush_on_commit=st.booleans())
@settings(max_examples=120, deadline=None)
def test_recovery_matches_model(script, flush_on_commit):
    wal = WriteAheadLog()
    db = Database(EngineConfig(wal_flush_on_commit=flush_on_commit), wal=wal)
    db.create_table("t")

    model: dict[int, int] = {}          # state from flushed commits
    pending: dict[int, int] = {}        # committed but maybe unflushed

    for step in script:
        if step == "crash":
            wal.crash()
            pending.clear()
            continue
        if step == "flush":
            wal.flush()
            model.update(pending)
            pending.clear()
            continue
        writes, outcome = step
        txn = db.begin("si")
        staged = {}
        for key, value in writes:
            txn.write("t", key, value)
            staged[key] = value
        if outcome == "commit":
            txn.commit()
            if flush_on_commit:
                model.update(pending)
                model.update(staged)
                pending.clear()
            else:
                pending.update(staged)
        else:
            txn.abort()

    recovered = recover_database(wal)
    state = {}
    for key in range(6):
        chain = None
        try:
            chain = recovered.table("t").chain(key)
        except Exception:
            pass
        if chain is not None and chain.latest() is not None:
            latest = chain.latest()
            if not latest.is_tombstone:
                state[key] = latest.value
    assert state == model
