"""Property-based tests for the chunked scan kernel.

The kernel drops the table latch between chunks, so the load-bearing
property is **snapshot stability under interference**: a scan whose
materialisation is interleaved with complete writer transactions
(insert / overwrite / delete, each fully committed between chunks) must
return exactly what a single-latch-hold scan of the same snapshot
returns — the pre-scan state, because every interfering write commits
after the reader's read timestamp.

A second family checks the kernel against the per-row path directly on
quiescent data, across bounds, reverse and limit.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.engine.config import EngineConfig
from repro.engine.database import Database
from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    TransactionAbortedError,
)

KEYS = st.integers(min_value=0, max_value=40)
VALUES = st.integers(min_value=0, max_value=99)

initial_rows = st.dictionaries(KEYS, VALUES, max_size=25)
write_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # injection point (chunk #)
        st.sampled_from(["write", "insert", "delete"]),
        KEYS,
        VALUES,
    ),
    max_size=8,
)


def build_db(initial, chunk_size, level_config=None):
    db = Database(
        EngineConfig(
            scan_kernel=True,
            scan_chunk_size=chunk_size,
            **(level_config or {}),
        )
    )
    db.create_table("t")
    db.load("t", initial.items())
    return db


def fire_writer(db, kind, key, value):
    """One complete interfering transaction: begin, mutate, commit —
    application errors (duplicate insert, missing delete) roll back."""
    writer = db.begin("si")
    try:
        if kind == "write":
            db.write(writer, "t", key, value)
        elif kind == "insert":
            db.insert(writer, "t", key, value)
        else:
            db.delete(writer, "t", key)
        writer.commit()
    except (DuplicateKeyError, KeyNotFoundError):
        db.abort(writer)
    except TransactionAbortedError:
        pass


@given(
    initial=initial_rows,
    writes=write_ops,
    lo=st.one_of(st.none(), KEYS),
    hi=st.one_of(st.none(), KEYS),
    chunk_size=st.integers(min_value=1, max_value=6),
    level=st.sampled_from(["si", "ssi"]),
)
@settings(max_examples=120, deadline=None)
def test_interfered_chunked_scan_equals_snapshot(
    initial, writes, lo, hi, chunk_size, level
):
    db = build_db(initial, chunk_size)
    table = db.table("t")
    reader = db.begin(level)
    db.get(reader, "t", -1)  # pin the snapshot before any writer runs

    by_point: dict[int, list] = {}
    for point, kind, key, value in writes:
        by_point.setdefault(point, []).append((kind, key, value))
    fired: set[int] = set()
    real_chunks = table.scan_chunks

    def patched(c_lo, c_hi, c_size=None):
        for number, chunk in enumerate(real_chunks(c_lo, c_hi, c_size)):
            yield chunk
            # Table latch is dropped here: run this point's writers as
            # full transactions (acquire, commit, release).
            if number not in fired:
                fired.add(number)
                for kind, key, value in by_point.get(number, ()):
                    fire_writer(db, kind, key, value)

    table.scan_chunks = patched
    got = db.scan(reader, "t", lo, hi)
    expected = [
        (key, value)
        for key, value in sorted(initial.items())
        if (lo is None or key >= lo) and (hi is None or key <= hi)
    ]
    assert got == expected, (
        "chunked scan with interleaved writers diverged from the "
        "single-latch-hold snapshot result"
    )
    db.abort(reader)


@given(
    initial=initial_rows,
    lo=st.one_of(st.none(), KEYS),
    hi=st.one_of(st.none(), KEYS),
    chunk_size=st.integers(min_value=1, max_value=6),
    reverse=st.booleans(),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
    level=st.sampled_from(["si", "ssi", "s2pl"]),
)
@settings(max_examples=120, deadline=None)
def test_kernel_matches_per_row_path(
    initial, lo, hi, chunk_size, reverse, limit, level
):
    results = []
    for kernel in (True, False):
        db = build_db(initial, chunk_size)
        db.config.scan_kernel = kernel
        txn = db.begin(level)
        results.append(
            db.scan(txn, "t", lo, hi, reverse=reverse, limit=limit)
        )
        db.abort(txn)
    assert results[0] == results[1]


@given(
    initial=initial_rows,
    lo=st.one_of(st.none(), KEYS),
    hi=st.one_of(st.none(), KEYS),
    limit=st.integers(min_value=0, max_value=10),
    level=st.sampled_from(["si", "ssi", "s2pl"]),
)
@settings(max_examples=100, deadline=None)
def test_scan_prefix_matches_scan_limit(initial, lo, hi, limit, level):
    db = build_db(initial, chunk_size=3)
    txn = db.begin(level)
    prefix = db.scan_prefix(txn, "t", lo, hi, limit=limit)
    full = db.scan(txn, "t", lo, hi, limit=limit)
    assert prefix == full
    db.abort(txn)
