"""Golden-outcome equivalence for the CC-policy extraction.

``data/cc_equivalence.json`` was generated (by
``scripts/gen_cc_equivalence.py``) from the pre-refactor monolithic
engine: 60 seeded interleavings of conflict-prone scenarios, each run at
every isolation level, recording exactly who committed and who aborted
with which reason.  Replaying them against the policy-dispatch engine
proves the refactor is behaviour-preserving — same commits, same aborts,
same abort reasons, on every interleaving.
"""

import json
from pathlib import Path

import pytest

from repro.engine.config import EngineConfig
from repro.sim.interleave import run_interleaving

from scripts.gen_cc_equivalence import LEVELS, SCENARIOS

DATA = Path(__file__).parent / "data" / "cc_equivalence.json"
FACTORIES = dict(SCENARIOS)

with DATA.open() as handle:
    CASES = json.load(handle)["cases"]


def test_fixture_has_enough_coverage():
    assert len(CASES) >= 50
    assert {case["scenario"] for case in CASES} == set(FACTORIES)


@pytest.mark.parametrize(
    "case",
    CASES,
    ids=[f"{case['scenario']}-{case['seed']}" for case in CASES],
)
def test_outcomes_match_pre_refactor_engine(case):
    factory = FACTORIES[case["scenario"]]
    for level in LEVELS:
        setup, programs, _step_counts = factory()
        outcome = run_interleaving(
            setup,
            programs,
            case["order"],
            isolation=level,
            engine_config=EngineConfig(record_history=True),
        )
        got = {str(index): status for index, status in outcome.statuses.items()}
        assert got == case["outcomes"][level], (
            f"{case['scenario']} seed={case['seed']} diverged at {level}"
        )


@pytest.mark.parametrize(
    "case",
    CASES,
    ids=[f"{case['scenario']}-{case['seed']}" for case in CASES],
)
def test_outcomes_match_with_group_commit_forced_on(case):
    """Group certification must admit exactly the histories the serial
    certifier does: with group commit forced on (single-stepped
    interleavings commit one at a time, so every batch has one member
    and arrival-order certification degenerates to the serial check),
    every golden outcome is unchanged."""
    factory = FACTORIES[case["scenario"]]
    for level in LEVELS:
        setup, programs, _step_counts = factory()
        outcome = run_interleaving(
            setup,
            programs,
            case["order"],
            isolation=level,
            engine_config=EngineConfig(
                record_history=True,
                group_commit=True,
                group_commit_max=8,
                group_commit_wait_us=0,
            ),
        )
        got = {str(index): status for index, status in outcome.statuses.items()}
        assert got == case["outcomes"][level], (
            f"{case['scenario']} seed={case['seed']} diverged at {level} "
            f"with group commit on"
        )


@pytest.mark.parametrize(
    "case",
    CASES,
    ids=[f"{case['scenario']}-{case['seed']}" for case in CASES],
)
def test_outcomes_match_with_scan_kernel_forced_on(case):
    """The chunked scan kernel must admit exactly the histories the
    per-row scan path admits: with the kernel forced into its most
    aggressive shape (2-row chunks, so every scan drops the table latch
    mid-range, and page-granularity SIREADs from the first row), every
    golden outcome — who committed, who aborted, with which reason —
    is unchanged at every isolation level."""
    factory = FACTORIES[case["scenario"]]
    for level in LEVELS:
        setup, programs, _step_counts = factory()
        outcome = run_interleaving(
            setup,
            programs,
            case["order"],
            isolation=level,
            engine_config=EngineConfig(
                record_history=True,
                scan_kernel=True,
                scan_chunk_size=2,
                scan_page_lock_threshold=1,
            ),
        )
        got = {str(index): status for index, status in outcome.statuses.items()}
        assert got == case["outcomes"][level], (
            f"{case['scenario']} seed={case['seed']} diverged at {level} "
            f"with the scan kernel forced on"
        )
