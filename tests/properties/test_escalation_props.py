"""Escalation soundness properties (PR 6).

``siread_budget`` replaces record SIREADs with page/table sentinels
whenever the lock table outgrows the budget.  The escalation contract is
one-sided: a coarse sentinel covers a *superset* of the fine ones it
replaced, so escalation may add false-positive rw-antidependency edges
but can never lose one.  Two consequences, checked here:

* with a budget tiny enough that nearly every read escalates, every
  committed interleaving must still satisfy the MVSG oracle — false
  positives abort transactions, they never admit anomalies;
* with a budget the workload can never reach, outcomes must be
  *identical* to the unbounded engine — replayed against the golden
  cc_equivalence fixture, the strictest behavioural diff we have.
"""

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.config import EngineConfig
from repro.sgt.checker import check_serializable
from repro.sim.interleave import run_interleaving

from scripts.gen_cc_equivalence import SCENARIOS

from tests.properties.test_engine_props import build_program, program_ops, setup

DATA = Path(__file__).parent / "data" / "cc_equivalence.json"

with DATA.open() as handle:
    CASES = json.load(handle)["cases"]

FACTORIES = dict(SCENARIOS)


@given(
    specs=st.lists(program_ops, min_size=2, max_size=3),
    seed=st.integers(0, 2**16),
    level=st.sampled_from(["ssi", "sgt"]),
)
@settings(max_examples=60, deadline=None)
def test_tiny_budget_interleavings_stay_serializable(specs, seed, level):
    """Budget 2 forces escalation on almost every multi-read program;
    the committed subset must stay serializable regardless."""
    rng = random.Random(seed)
    programs = [build_program(spec, f"T{i}") for i, spec in enumerate(specs)]
    steps = [len(spec) + 1 for spec in specs]
    slots = [i for i, count in enumerate(steps) for _ in range(count)]
    rng.shuffle(slots)
    outcome = run_interleaving(
        setup,
        programs,
        slots,
        isolation=level,
        engine_config=EngineConfig(
            record_history=True,
            siread_budget=2,
            siread_escalation_min_group=2,
        ),
    )
    report = check_serializable(outcome.db.history)
    assert report.serializable, report.describe()


@pytest.mark.parametrize(
    "case",
    CASES,
    ids=[f"{case['scenario']}-{case['seed']}" for case in CASES],
)
def test_untripped_budget_matches_golden_fixture(case):
    """A budget far above any scenario's footprint must reproduce the
    golden ssi outcomes exactly — the budget knob is free until it
    actually trips."""
    factory = FACTORIES[case["scenario"]]
    setup_case, programs, _counts = factory()
    outcome = run_interleaving(
        setup_case,
        programs,
        case["order"],
        isolation="ssi",
        engine_config=EngineConfig(record_history=True, siread_budget=10**6),
    )
    got = {str(index): status for index, status in outcome.statuses.items()}
    assert got == case["outcomes"]["ssi"], (
        f"{case['scenario']} seed={case['seed']} diverged under huge budget"
    )
    assert outcome.db.locks.escalated_lock_count() == 0
