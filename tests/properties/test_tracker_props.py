"""Property-based conflict-tracker tests.

The enhanced tracker (Figs 3.9/3.10) is a strict refinement of the basic
one (Fig 3.3): every danger it flags, the basic tracker flags at the
same event or earlier.  Random sequences of conflict-mark and commit
events over a pool of transactions check that ordering, plus basic
sanity invariants of both trackers.
"""

from hypothesis import given, settings, strategies as st

from repro.core.conflicts import BasicConflictTracker, EnhancedConflictTracker


class FakeTxn:
    def __init__(self, txn_id):
        self.id = txn_id
        self.begin_ts = txn_id
        self.begin_seq = txn_id
        self.commit_ts = None
        self.status = "active"
        self.in_conflict = None
        self.out_conflict = None

    @property
    def is_active(self):
        return self.status == "active"

    @property
    def is_committed(self):
        return self.status == "committed"


N_TXNS = 4

events = st.lists(
    st.one_of(
        st.tuples(st.just("mark"), st.integers(0, N_TXNS - 1),
                  st.integers(0, N_TXNS - 1)),
        st.tuples(st.just("commit"), st.integers(0, N_TXNS - 1),
                  st.just(0)),
    ),
    max_size=24,
)


def drive(tracker_cls, script):
    """Apply a script; return the index of the first unsafe event
    (mark-victim or commit-check failure), or None."""
    tracker = tracker_cls()
    txns = [FakeTxn(i + 1) for i in range(N_TXNS)]
    for txn in txns:
        tracker.init_transaction(txn)
    clock = 100
    for step, (kind, a, b) in enumerate(script):
        if kind == "mark":
            reader, writer = txns[a], txns[b]
            if reader is writer:
                continue
            if not (reader.is_active or reader.is_committed):
                continue
            victim = tracker.mark_conflict(reader, writer)
            if victim is not None:
                return step
        else:
            txn = txns[a]
            if not txn.is_active:
                continue
            if tracker.check_commit(txn):
                return step
            clock += 1
            txn.commit_ts = clock
            txn.status = "committed"
            tracker.after_commit(txn)
    return None


@given(script=events)
@settings(max_examples=300, deadline=None)
def test_enhanced_never_fires_before_basic(script):
    basic_step = drive(BasicConflictTracker, script)
    enhanced_step = drive(EnhancedConflictTracker, script)
    if enhanced_step is not None:
        assert basic_step is not None
        assert basic_step <= enhanced_step


@given(script=events)
@settings(max_examples=200, deadline=None)
def test_no_unsafe_without_both_directions(script):
    """A transaction that only ever accumulated conflicts in one
    direction is never aborted by either tracker."""
    for tracker_cls in (BasicConflictTracker, EnhancedConflictTracker):
        tracker = tracker_cls()
        txns = [FakeTxn(i + 1) for i in range(N_TXNS)]
        for txn in txns:
            tracker.init_transaction(txn)
        # only edges 0 -> 1 (reader 0, writer 1): no pivot can form
        for _ in range(5):
            assert tracker.mark_conflict(txns[0], txns[1]) is None
        assert tracker.check_commit(txns[0]) is False
        assert tracker.check_commit(txns[1]) is False
