"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.engine.config import EngineConfig, LockGranularity, DeadlockMode
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel


@pytest.fixture
def db() -> Database:
    """A record-granularity database with history recording on."""
    return Database(EngineConfig(record_history=True))


@pytest.fixture
def db_basic() -> Database:
    """A database using the basic boolean conflict tracker (Fig 3.3)."""
    return Database(
        EngineConfig(record_history=True, precise_conflicts=False)
    )


@pytest.fixture
def page_db() -> Database:
    """A Berkeley DB-style page-granularity database."""
    return Database(
        EngineConfig.berkeleydb_style(page_size=4, record_history=True)
    )


def fill(database: Database, table: str, rows: dict) -> None:
    """Create (if needed) and load a table."""
    try:
        database.create_table(table)
    except Exception:
        pass
    database.load(table, rows.items())


def commit_outcomes(*txns) -> list[str]:
    """Commit each transaction, collecting 'commit' or the abort reason."""
    from repro.errors import TransactionAbortedError

    outcomes = []
    for txn in txns:
        if not txn.is_active:
            outcomes.append("already-finished")
            continue
        try:
            txn.commit()
            outcomes.append("commit")
        except TransactionAbortedError as error:
            outcomes.append(error.reason)
    return outcomes
