"""Conflict-tracker unit tests (Figs 3.2-3.5, 3.9-3.10).

A lightweight FakeTxn stands in for engine transactions so the tracker
logic is tested in isolation.
"""

import pytest

from repro.core.conflicts import (
    BasicConflictTracker,
    EnhancedConflictTracker,
    make_tracker,
)


class FakeTxn:
    _next_id = iter(range(1, 10_000))

    def __init__(self, begin_ts=0):
        self.id = next(FakeTxn._next_id)
        self.begin_ts = begin_ts
        self.commit_ts = None
        self.status = "active"
        self.in_conflict = None
        self.out_conflict = None

    @property
    def is_active(self):
        return self.status == "active"

    @property
    def is_committed(self):
        return self.status == "committed"

    def commit(self, ts):
        self.commit_ts = ts
        self.status = "committed"

    def __repr__(self):
        return f"FakeTxn({self.id}, {self.status})"


def fresh(tracker, n, begin=0):
    txns = [FakeTxn(begin_ts=begin + i) for i in range(n)]
    for txn in txns:
        tracker.init_transaction(txn)
    return txns


class TestBasicTracker:
    def test_init_clears_flags(self):
        tracker = BasicConflictTracker()
        (txn,) = fresh(tracker, 1)
        assert txn.in_conflict is False and txn.out_conflict is False

    def test_single_edge_no_victim(self):
        tracker = BasicConflictTracker()
        reader, writer = fresh(tracker, 2)
        assert tracker.mark_conflict(reader, writer) is None
        assert reader.out_conflict and writer.in_conflict
        assert not reader.in_conflict and not writer.out_conflict

    def test_pivot_aborted_early(self):
        tracker = BasicConflictTracker(abort_early=True)
        t_in, pivot, t_out = fresh(tracker, 3)
        tracker.mark_conflict(pivot, t_out)
        victim = tracker.mark_conflict(t_in, pivot)
        assert victim is pivot  # both flags set while active

    def test_no_abort_early_defers_to_commit(self):
        tracker = BasicConflictTracker(abort_early=False)
        t_in, pivot, t_out = fresh(tracker, 3)
        tracker.mark_conflict(pivot, t_out)
        assert tracker.mark_conflict(t_in, pivot) is None
        assert tracker.check_commit(pivot) is True
        assert tracker.check_commit(t_in) is False

    def test_committed_writer_with_out_conflict_kills_reader(self):
        # Fig 3.3 lines 3-5.
        tracker = BasicConflictTracker()
        reader, writer, other = fresh(tracker, 3)
        tracker.mark_conflict(writer, other)  # writer.out = True
        writer.commit(ts=10)
        victim = tracker.mark_conflict(reader, writer)
        assert victim is reader

    def test_committed_reader_with_in_conflict_kills_writer(self):
        # Fig 3.3 lines 6-8.
        tracker = BasicConflictTracker()
        reader, writer, other = fresh(tracker, 3)
        tracker.mark_conflict(other, reader)  # reader.in = True
        reader.commit(ts=10)
        victim = tracker.mark_conflict(reader, writer)
        assert victim is writer

    def test_self_conflict_ignored(self):
        tracker = BasicConflictTracker()
        (txn,) = fresh(tracker, 1)
        assert tracker.mark_conflict(txn, txn) is None
        assert not txn.in_conflict and not txn.out_conflict

    def test_write_skew_scenario(self):
        """Two transactions, mutual rw edges: the second mark aborts one."""
        tracker = BasicConflictTracker()
        t1, t2 = fresh(tracker, 2)
        assert tracker.mark_conflict(t1, t2) is None
        victim = tracker.mark_conflict(t2, t1)
        assert victim in (t1, t2)


class TestEnhancedTracker:
    def test_init_clears_refs(self):
        tracker = EnhancedConflictTracker()
        (txn,) = fresh(tracker, 1)
        assert txn.in_conflict is None and txn.out_conflict is None

    def test_references_recorded(self):
        tracker = EnhancedConflictTracker()
        reader, writer = fresh(tracker, 2)
        tracker.mark_conflict(reader, writer)
        assert reader.out_conflict is writer
        assert writer.in_conflict is reader

    def test_second_conflict_becomes_self_reference(self):
        tracker = EnhancedConflictTracker()
        reader, w1, w2 = fresh(tracker, 3)
        tracker.mark_conflict(reader, w1)
        tracker.mark_conflict(reader, w2)
        assert reader.out_conflict is reader  # self-loop = "many"

    def test_false_positive_of_fig_3_8_avoided(self):
        """Fig 3.8: Tin -> Tpivot -> Tout where Tin commits BEFORE Tout.
        The basic tracker aborts the pivot; the enhanced one must not."""
        tracker = EnhancedConflictTracker()
        t_in, pivot, t_out = fresh(tracker, 3)
        tracker.mark_conflict(t_in, pivot)   # Tin reads, pivot writes
        t_in.commit(ts=10)
        tracker.mark_conflict(pivot, t_out)  # pivot reads, Tout writes
        t_out.commit(ts=20)
        # commit-time(out)=20 > commit-time(in)=10: Tout did not commit
        # first, equivalent to serial {Tin, Tpivot, Tout}.
        assert tracker.check_commit(pivot) is False

    def test_dangerous_when_out_commits_first(self):
        tracker = EnhancedConflictTracker()
        t_in, pivot, t_out = fresh(tracker, 3)
        tracker.mark_conflict(pivot, t_out)
        t_out.commit(ts=10)
        tracker.mark_conflict(t_in, pivot)  # Tin still active
        assert tracker.check_commit(pivot) is True

    def test_uncommitted_single_out_is_safe(self):
        """An uncommitted outgoing reference will commit after the pivot,
        so it cannot be the first committer of a cycle."""
        tracker = EnhancedConflictTracker()
        t_in, pivot, t_out = fresh(tracker, 3)
        tracker.mark_conflict(t_in, pivot)
        tracker.mark_conflict(pivot, t_out)  # t_out still active
        assert tracker.check_commit(pivot) is False

    def test_self_out_reference_is_conservative(self):
        tracker = EnhancedConflictTracker()
        t_in, pivot, o1, o2 = fresh(tracker, 4)
        tracker.mark_conflict(pivot, o1)
        tracker.mark_conflict(pivot, o2)  # out := self
        tracker.mark_conflict(t_in, pivot)
        assert tracker.check_commit(pivot) is True

    def test_after_commit_replaces_committed_refs_with_self(self):
        # Fig 3.10 lines 9-12.
        tracker = EnhancedConflictTracker()
        t_in, pivot, t_out = fresh(tracker, 3)
        tracker.mark_conflict(t_in, pivot)
        t_in.commit(ts=5)
        tracker.mark_conflict(pivot, t_out)
        pivot.commit(ts=10)
        tracker.after_commit(pivot)
        assert pivot.in_conflict is pivot      # t_in committed -> self
        assert pivot.out_conflict is t_out     # t_out active -> kept

    def test_committed_pivot_with_dangerous_out_kills_new_reader(self):
        # Fig 3.9 lines 3-7.
        tracker = EnhancedConflictTracker()
        reader, pivot, t_out = fresh(tracker, 3)
        tracker.mark_conflict(pivot, t_out)
        t_out.commit(ts=5)
        pivot.commit(ts=10)
        victim = tracker.mark_conflict(reader, pivot)
        assert victim is reader

    def test_committed_pivot_with_later_out_spares_reader(self):
        tracker = EnhancedConflictTracker()
        reader, pivot, t_out = fresh(tracker, 3)
        tracker.mark_conflict(pivot, t_out)
        pivot.commit(ts=10)
        tracker.after_commit(pivot)
        t_out.commit(ts=20)  # out commits after the pivot
        victim = tracker.mark_conflict(reader, pivot)
        assert victim is None

    def test_stats_counted(self):
        tracker = EnhancedConflictTracker()
        t1, t2 = fresh(tracker, 2)
        tracker.mark_conflict(t1, t2)
        assert tracker.stats["marked"] == 1


class TestFactory:
    def test_make_tracker_selects_implementation(self):
        assert isinstance(make_tracker(precise=True), EnhancedConflictTracker)
        assert isinstance(make_tracker(precise=False), BasicConflictTracker)

    def test_victim_policy_by_name(self):
        tracker = make_tracker(precise=False, victim_policy="youngest")
        young, old = FakeTxn(begin_ts=100), FakeTxn(begin_ts=1)
        for txn in (young, old):
            tracker.init_transaction(txn)
        # Make both pivots with mutual conflicts: youngest must die.
        tracker.mark_conflict(young, old)
        victim = tracker.mark_conflict(old, young)
        assert victim is young
