"""Victim-selection policy tests (Section 3.7.2)."""

from dataclasses import dataclass

from repro.core.victim import POLICIES, oldest_first, pivot_first, youngest_first


@dataclass
class Txn:
    id: int
    begin_ts: int


def test_pivot_first_returns_first_candidate():
    a, b = Txn(1, 10), Txn(2, 20)
    assert pivot_first([a, b], a, b) is a
    assert pivot_first([b], a, b) is b


def test_youngest_first():
    a, b = Txn(1, 10), Txn(2, 20)
    assert youngest_first([a, b], a, b) is b


def test_oldest_first():
    a, b = Txn(1, 10), Txn(2, 20)
    assert oldest_first([a, b], a, b) is a


def test_policy_registry():
    assert set(POLICIES) == {"pivot", "youngest", "oldest"}
