"""Metrics registry: counter groups, histograms, deep snapshots."""

import json

import pytest

from repro.obs.registry import (
    CounterGroup,
    Histogram,
    MetricsRegistry,
    json_safe,
)


def reject_constant(value):
    raise ValueError(f"non-standard JSON constant: {value!r}")


class TestCounterGroup:
    def test_native_dict_increments(self):
        group = CounterGroup({"reads": 0})
        group["reads"] += 1
        group["reads"] += 1
        assert group["reads"] == 2
        assert isinstance(group, dict)

    def test_snapshot_is_deep(self):
        group = CounterGroup({"aborts": CounterGroup({"unsafe": 1}), "begins": 3})
        snap = group.snapshot()
        group["aborts"]["unsafe"] = 99
        group["begins"] = 99
        assert snap == {"aborts": {"unsafe": 1}, "begins": 3}
        assert type(snap["aborts"]) is dict

    def test_reset_zeroes_recursively(self):
        group = CounterGroup({"aborts": CounterGroup({"unsafe": 4}), "begins": 7})
        group.reset()
        assert group == {"aborts": {"unsafe": 0}, "begins": 0}


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        h = Histogram("h")
        for value in (0.5, 1.5, 2.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == pytest.approx(4.0)
        assert h.min == 0.5
        assert h.max == 2.0
        assert h.mean == pytest.approx(4.0 / 3)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_bucketing_and_overflow(self):
        h = Histogram("h", edges=(1, 10))
        for value in (0.5, 1.0, 5.0, 100.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["buckets"] == {"le_1": 2, "le_10": 1, "overflow": 1}

    def test_reset(self):
        h = Histogram("h", edges=(1,))
        h.observe(0.5)
        h.reset()
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["min"] is None
        assert snap["buckets"] == {"le_1": 0, "overflow": 0}


class TestJsonSafe:
    def test_non_finite_floats_become_none(self):
        data = {"a": float("inf"), "b": float("nan"), "c": 1.5}
        assert json_safe(data) == {"a": None, "b": None, "c": 1.5}

    def test_nested_containers_copied(self):
        inner = {"x": 1}
        out = json_safe({"inner": inner, "seq": (1, 2)})
        assert out == {"inner": {"x": 1}, "seq": [1, 2]}
        assert out["inner"] is not inner

    def test_arbitrary_objects_render_as_strings(self):
        class Weird:
            def __repr__(self):
                return "weird"

        assert json_safe({"w": Weird()}) == {"w": "weird"}


class TestMetricsRegistry:
    def test_group_is_created_once(self):
        registry = MetricsRegistry()
        a = registry.group("engine", {"reads": 0})
        b = registry.group("engine")
        assert a is b

    def test_register_group_adopts_by_reference(self):
        registry = MetricsRegistry()
        stats = CounterGroup({"acquires": 0})
        adopted = registry.register_group("locks", stats)
        assert adopted is stats
        stats["acquires"] += 5
        assert registry.snapshot()["counters"]["locks"]["acquires"] == 5

    def test_snapshot_never_aliases_live_state(self):
        registry = MetricsRegistry()
        engine = registry.group("engine", {"aborts": {"unsafe": 0}})
        snap = registry.snapshot()
        engine["aborts"]["unsafe"] += 1
        assert snap["counters"]["engine"]["aborts"]["unsafe"] == 0

    def test_snapshot_round_trips_strict_json(self):
        registry = MetricsRegistry()
        registry.group("engine", {"reads": 3})
        registry.histogram("waits", edges=(0.1, 1.0)).observe(0.05)
        text = json.dumps(registry.snapshot(), allow_nan=False)
        restored = json.loads(text, parse_constant=reject_constant)
        assert restored["counters"]["engine"]["reads"] == 3
        assert restored["histograms"]["waits"]["count"] == 1

    def test_histogram_is_created_once(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        group = registry.group("engine", {"reads": 9})
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        registry.reset()
        assert group["reads"] == 0
        assert histogram.count == 0


class TestGauge:
    def test_register_and_read(self):
        registry = MetricsRegistry()
        box = {"value": 3}
        gauge = registry.register_gauge("depth", lambda: box["value"])
        assert gauge.read() == 3
        box["value"] = 11
        assert gauge.read() == 11
        assert registry.gauges()["depth"] is gauge

    def test_snapshot_samples_gauges_fresh(self):
        """Gauges are sampled at snapshot time (outside the registry
        latch: probes may take engine latches of their own), so each
        snapshot reflects the instantaneous value."""
        registry = MetricsRegistry()
        box = {"value": 0}
        registry.register_gauge("lock_table_size", lambda: box["value"])
        assert registry.snapshot()["gauges"]["lock_table_size"] == 0
        box["value"] = 42
        snap = registry.snapshot()
        assert snap["gauges"]["lock_table_size"] == 42
        text = json.dumps(snap, allow_nan=False)
        assert json.loads(text)["gauges"]["lock_table_size"] == 42

    def test_database_exports_lock_gauges(self):
        from repro import Database, EngineConfig

        db = Database(EngineConfig())
        db.create_table("t")
        db.load("t", [(1, "a"), (2, "b")])
        txn = db.begin("ssi")
        txn.read("t", 1)
        gauges = db.metrics.snapshot()["gauges"]
        assert gauges["lock_table_size"] >= 1
        assert gauges["siread_locks"] >= 1
        assert gauges["escalated_locks"] == 0
        txn.commit()
